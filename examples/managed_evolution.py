#!/usr/bin/env python
"""Managed software evolution: remote deployment and fleet-wide upgrade.

The paper's conclusions promise "a uniform environment for the
development, deployment, (re)configuration, and evolution of programmable
networking software".  This example plays a network operator:

1. deploy a packet-marking component to three remote routers by *name*
   (the component registry plays the code-distribution channel);
2. drive traffic through one of them;
3. publish version 2.0 network-wide and roll it out — each node hot-swaps
   the running instance, keeping its bindings and declared state;
4. query a node's inventory remotely through the interface meta-model.

Run:  python examples/managed_evolution.py
"""

from repro.coordination import DeploymentManager, attach_agents, deploy_agents
from repro.netsim import Topology, make_udp_v4
from repro.opencom import Component, ComponentRegistry, Provided, Required
from repro.router import CollectorSink, IPacketPush


class DscpMarkerV1(Component):
    """Marks every packet with DSCP 0 (best effort)."""

    PROVIDES = (Provided("in0", IPacketPush),)
    RECEPTACLES = (Required("out", IPacketPush, min_connections=0),)
    STATE_ATTRS = ("marked",)
    DSCP = 0

    def __init__(self):
        super().__init__()
        self.marked = 0

    def push(self, packet):
        packet.net.dscp = self.DSCP
        packet.net.refresh_checksum()
        self.marked += 1
        if self.out.bound:
            self.out.push(packet)


class DscpMarkerV2(DscpMarkerV1):
    """Version 2: marks expedited forwarding (DSCP 46)."""

    DSCP = 46


def main() -> None:
    topo = Topology.star(3, latency_s=0.002)
    registry = ComponentRegistry()
    registry.register("dscp-marker", DscpMarkerV1, version="1.0",
                      description="marks DSCP on transit packets")
    registry.register("sink", CollectorSink, version="1.0")
    agents = attach_agents(topo)
    deployment = deploy_agents(agents, registry)
    operator = DeploymentManager(agents["hub"])
    fleet = ["leaf0", "leaf1", "leaf2"]

    # 1. Deploy v1 everywhere, by type name, over the network.
    for node in fleet:
        operator.instantiate(node, "dscp-marker", "marker")
        operator.instantiate(node, "sink", "observer", start=False)
    topo.engine.run()
    print("deployed dscp-marker 1.0 to:", ", ".join(fleet))

    # 2. Wire and drive traffic on leaf0.
    leaf0 = topo.node("leaf0").capsule
    marker = leaf0.component("marker")
    observer = leaf0.component("observer")
    leaf0.bind(marker.receptacle("out"), observer.interface("in0"))
    for i in range(5):
        marker.interface("in0").vtable.invoke(
            "push", make_udp_v4("10.0.0.1", "10.0.0.2", dport=i)
        )
    print(
        f"leaf0 marked {marker.marked} packets with DSCP "
        f"{observer.packets[-1].dscp}"
    )

    # 3. Evolution: publish 2.0 and roll it out; state + bindings survive.
    registry.register("dscp-marker", DscpMarkerV2, version="2.0",
                      description="EF marking")
    requests = operator.rollout(fleet, "marker", "dscp-marker")
    topo.engine.run()
    for node, request in requests.items():
        reply = operator.reply_for(request)
        print(f"  {node}: upgrade -> {reply['version']} ok={reply['ok']}")
    upgraded = leaf0.component("marker")
    print(
        f"leaf0 marker is now {type(upgraded).__name__}, carried state: "
        f"marked={upgraded.marked}"
    )
    upgraded.interface("in0").vtable.invoke(
        "push", make_udp_v4("10.0.0.1", "10.0.0.2")
    )
    print(f"next packet marked DSCP {observer.packets[-1].dscp} (EF)")

    # 4. Remote introspection via the interface meta-model.
    request = operator.query("leaf1", name="marker")
    topo.engine.run()
    description = operator.reply_for(request)["description"]
    print(
        f"\nremote introspection of leaf1/marker: type={description['type']} "
        f"state={description['state']} interfaces="
        f"{[i['interface'] for i in description['interfaces']]}"
    )


if __name__ == "__main__":
    main()
