#!/usr/bin/env python
"""Quickstart: build, inspect and reconfigure a component router.

Walks the core NETKIT/OpenCOM workflow in seven steps:

1. host components in a capsule and bind them into a data path;
2. push packets through it;
3. inspect the running architecture through the meta-models;
4. intercept a binding (reflective instrumentation);
5. hot-swap a component under traffic without losing a packet;
6. shard the datapath across two cooperative workers (flow-hash
   steering, per-shard buffer pools — see docs/concurrency.md);
7. replicate the whole datapath across a capsule fleet behind an
   edge steering tier with admission control (see the fleet section
   of docs/architecture.md).

Run:  python examples/quickstart.py
"""

from repro.netsim import make_udp_v4
from repro.opencom import Capsule, CallCounter
from repro.osbase import (
    RoundRobinScheduler,
    ThreadManagerCF,
    VirtualClock,
    carve_shard_pools,
    shard_pool_audit,
)
from repro.router import (
    Classifier,
    CollectorSink,
    FifoQueue,
    IPv4HeaderProcessor,
    RouterCF,
    build_capsule_fleet,
    build_sharded_forwarding_datapath,
)


def main() -> None:
    # 1. A capsule is an address space; components are instantiated into
    #    it and composed with the bind primitive.
    capsule = Capsule("quickstart-node")
    cf = RouterCF()
    capsule.adopt(cf, "router-cf")

    v4 = capsule.instantiate(IPv4HeaderProcessor, "v4")
    classifier = capsule.instantiate(
        lambda: Classifier(default_output="best-effort"), "classifier"
    )
    fast_sink = capsule.instantiate(CollectorSink, "fast")
    slow_sink = capsule.instantiate(CollectorSink, "slow")

    capsule.bind(v4.receptacle("out"), classifier.interface("in0"))
    capsule.bind(
        classifier.receptacle("out"), fast_sink.interface("in0"),
        connection_name="fast",
    )
    capsule.bind(
        classifier.receptacle("out"), slow_sink.interface("in0"),
        connection_name="best-effort",
    )

    # The Router CF checks its plug-in rules at accept time (Figure 2).
    for component in (v4, classifier, fast_sink, slow_sink):
        cf.accept(component)
    cf.install_filter(classifier, "dport=5000-5999 -> fast priority=10")

    # 2. Drive the data path.
    for dport in (80, 5500, 5501, 443):
        v4.interface("in0").vtable.invoke(
            "push", make_udp_v4("10.0.0.1", "10.9.9.9", dport=dport)
        )
    print(f"fast sink:  {fast_sink.collected_count()} packets")
    print(f"slow sink:  {slow_sink.collected_count()} packets")

    # 3. Structural reflection: the architecture meta-model.
    view = capsule.architecture.snapshot()
    print(f"\narchitecture: {len(view.nodes)} components, {len(view.edges)} bindings")
    print("classifier fans out to:", view.successors("classifier"))
    print("consistency problems:", capsule.architecture.check_consistency())

    # 4. Behavioural reflection: intercept the classifier's input.
    counter = CallCounter()
    counter.attach_to(classifier.interface("in0"))
    v4.interface("in0").vtable.invoke(
        "push", make_udp_v4("10.0.0.1", "10.9.9.9", dport=5999)
    )
    print(f"\nintercepted {counter.total()} call(s) at the vtable level")

    # 5. Hot swap: replace the classifier with a fresh instance that
    #    routes everything fast; bindings are preserved automatically.
    def transfer(old, new):
        pass  # a real swap could migrate the filter table here

    replacement = capsule.architecture.replace_component(
        classifier, lambda: Classifier(default_output="fast"),
        transfer_state=transfer,
    )
    v4.interface("in0").vtable.invoke(
        "push", make_udp_v4("10.0.0.1", "10.9.9.9", dport=80)
    )
    print(f"after hot swap: fast sink has {fast_sink.collected_count()} packets")
    print("still consistent:", capsule.architecture.check_consistency() == [])

    # 6. Shard the datapath: two share-nothing forwarding workers as
    #    cooperative threads under the thread-management CF, behind an
    #    RSS-style flow-hash steering stage, each with its own carved
    #    buffer-pool slice and TX drain.
    threads = ThreadManagerCF(VirtualClock(), scheduler=RoundRobinScheduler())
    pools = carve_shard_pools(256, 32, 2, exhaustion_policy="drop-newest")
    datapath = build_sharded_forwarding_datapath(
        routes={"10.0.0.0/8": "east", "0.0.0.0/0": "west"},
        shards=2,
        threads=threads,
        pools=pools,
        batch=4,
    )
    frames = [
        make_udp_v4(f"10.0.{i}.1", "10.9.9.9", sport=1000 + i, dport=80).to_bytes()
        for i in range(8)
    ]
    datapath.steer_batch(frames)
    datapath.pump()
    per_shard = [s["processed_packets"] for s in datapath.stats()["shards"]]
    print(
        f"\nsharded: {sum(per_shard)} packets over 2 workers {per_shard}, "
        f"pools balanced: {shard_pool_audit(pools)['balanced']}"
    )
    datapath.shutdown()

    # 7. Scale out: replicate that sharded datapath across a fleet of
    #    capsule nodes behind an edge steering tier.  Two-level
    #    consistent hashing (fleet hash ring -> capsule, then the RSS
    #    bucket table -> shard) sends each flow over a real simulated
    #    link, and admission control reserves against the fleet's
    #    aggregate capacity before the first frame is steered.
    fleet = build_capsule_fleet(
        2, routes={"10.0.0.0/8": "east", "0.0.0.0/0": "west"}, shards=2
    )
    probe = make_udp_v4("10.0.7.1", "10.9.9.9", sport=4000, dport=80)
    print(f"\nfleet: flow 10.0.7.1:4000 lives on {fleet.home_of(probe)}")
    print("admission verdict:", fleet.open_flow(probe, rate=500.0))
    for i in range(16):
        fleet.ingest(
            make_udp_v4(f"10.0.{i}.1", "10.9.9.9", sport=1000 + i, dport=80)
        )
    fleet.pump()
    steered = {s["capsule"]: s["steered"] for s in fleet.stats()["capsules"]}
    print(
        f"fleet forwarded {fleet.counters['forwarded']} frames "
        f"over 2 capsules: {steered}"
    )
    fleet.close_flow(probe)


if __name__ == "__main__":
    main()
