#!/usr/bin/env python
"""Adaptive wireless transfer: layer-violating reflection in action.

The paper argues vertically integrated componentisation "facilitates
ad-hoc interaction — e.g. application or transport layer components can
... obtain 'layer-violating' information from the link layer", which is
"indispensable in mobile environments".

This example streams media across a link whose loss rate degrades
mid-transfer (a mobile node walking away from its base station).  An
adaptation manager polls the *link-layer* loss statistics and, when loss
crosses a threshold, splices an FEC encoder into the sender's data path —
a live reconfiguration through the architecture meta-model, no restart.

Run:  python examples/adaptive_wireless.py
"""

from repro.appservices import FecDecoder, FecEncoder
from repro.netsim import Topology, make_udp_v4
from repro.opencom import Capsule
from repro.router import CollectorSink, NicEgress, PacketCounterTap

PACKETS = 600
GROUP = 4


def main() -> None:
    topo = Topology()
    topo.add_node("mobile")
    topo.add_node("base")
    link = topo.connect(
        "mobile", "base", bandwidth_bps=54e6, latency_s=0.002, seed=11
    )

    # Receiver stack: decoder in front of the application sink.
    receiver = Capsule("receiver-stack")
    decoder = receiver.instantiate(lambda: FecDecoder(group_size=GROUP), "fec-dec")
    app = receiver.instantiate(CollectorSink, "app")
    receiver.bind(decoder.receptacle("out"), app.interface("in0"))
    topo.node("base").set_packet_handler(
        lambda packet, port: decoder.interface("in0").vtable.invoke("push", packet)
    )

    # Sender stack: tap -> egress (FEC spliced in later).
    sender = Capsule("sender-stack")
    tap = sender.instantiate(PacketCounterTap, "tap")
    egress = sender.instantiate(
        lambda: NicEgress(lambda p: topo.node("mobile").send("eth0", p)), "egress"
    )
    binding = sender.bind(tap.receptacle("out"), egress.interface("in0"))

    state = {"fec": False}

    def adapt() -> None:
        stats = link.direction_from(topo.node("mobile")).stats
        if stats.sent < 30 or state["fec"]:
            return
        loss = stats.lost / stats.sent
        if loss > 0.04:
            print(
                f"  [adapt] observed link loss {loss:.1%} at packet "
                f"{stats.sent}: splicing FEC encoder into the path"
            )
            sender.unbind(binding)
            encoder = sender.instantiate(
                lambda: FecEncoder(group_size=GROUP), "fec-enc"
            )
            sender.bind(tap.receptacle("out"), encoder.interface("in0"))
            sender.bind(encoder.receptacle("out"), egress.interface("in0"))
            state["fec"] = True

    print(f"streaming {PACKETS} packets; loss degrades at packet 150")
    for i in range(PACKETS):
        if i == 150:
            link.set_loss_rate(0.12)  # the radio environment worsens
        tap.interface("in0").vtable.invoke(
            "push",
            make_udp_v4(
                "10.0.0.1", "10.0.0.2", sport=7, dport=9,
                payload=bytes([i % 251]) * 48,
            ),
        )
        if i % 10 == 0:
            adapt()
        topo.engine.run()

    data = [p for p in app.packets if not p.metadata.get("fec-parity")]
    recovered = sum(1 for p in data if p.metadata.get("fec-recovered"))
    print(f"\ndelivered {len(data)}/{PACKETS} data packets")
    print(f"of which {recovered} were reconstructed by FEC")
    print(f"sender stack now: {sorted(sender.components())}")
    print(f"architecture consistent: {sender.architecture.check_consistency() == []}")


if __name__ == "__main__":
    main()
