#!/usr/bin/env python
"""The Figure-3 composite router, driven with a mixed v4/v6 trace.

Reconstructs the exact composite of the paper's Figure 3 — protocol
recogniser, IPv4/IPv6 header processors, per-class queueing gateways, link
scheduler, controller, exported IClassifier — pushes 5,000 packets through
it, and prints per-stage accounting plus the composite's introspective
description (including the controller's constraints and ACL behaviour).

Run:  python examples/figure3_router.py
"""

from repro.netsim import mixed_v4_v6_trace
from repro.opencom import AccessDenied, Capsule, ConstraintViolation
from repro.router import build_figure3_composite


def main() -> None:
    capsule = Capsule("figure3-node")
    composite, pipeline = build_figure3_composite(capsule, queue_capacity=8192)

    # "Access to IClassifier interfaces" (Figure 3): install a filter
    # through the composite's exported classifier interface.
    composite.interface("classifier").vtable.invoke(
        "register_filter", "dport=2000-2002 -> expedited priority=10"
    )

    trace = mixed_v4_v6_trace(count=5000, seed=3)
    for packet in trace:
        pipeline.push(packet)
    pipeline.drain()

    print("per-stage accounting:")
    for stage, stats in pipeline.stage_stats().items():
        interesting = {
            k: v for k, v in stats.items()
            if k in ("rx", "tx", "v4", "v6", "forwarded")
            or k.startswith(("class:", "served:", "drop:"))
        }
        print(f"  {stage:22s} {interesting}")

    print("\ncomposite internals:")
    info = composite.describe_internals()
    for member, details in info["members"].items():
        marker = " (controller)" if details["controller"] else ""
        print(f"  {member:32s} {details['type']}{marker}")
    print("  constraints:", info["constraints"])
    print("  exports:", dict(info["exports"]))

    # The controller polices its constraints with an ACL.
    print("\nmanagement behaviour:")
    try:
        composite.bind_internal(
            "classifier", "out", "protocol-recogniser", "in0",
            connection_name="loop",
        )
    except ConstraintViolation as exc:
        print(f"  cycle vetoed: {exc.reason}")
    try:
        composite.controller.remove_constraint("acyclic", principal="tenant")
    except AccessDenied as exc:
        print(f"  ACL: {exc}")

    print("\nGraphviz view of the node (paste into dot):")
    print(capsule.architecture.export_dot()[:400], "...")


if __name__ == "__main__":
    main()
