#!/usr/bin/env python
"""Active networking: signed capsule programs hopping across a network.

Builds a 5-node chain where every node runs an execution environment
(stratum 3).  A network operator signs a survey capsule that visits each
node, counts its visits in the node's soft store, collects the node names
in its own trace, and delivers its findings at the far end.  An unsigned
capsule from an untrusted principal is rejected at the first hop.

Run:  python examples/active_network.py
"""

from repro.appservices import CodeAdmission, ExecutionEnvironment, make_capsule_packet
from repro.netsim import PROTO_ACTIVE, Topology
from repro.router import NicEgress

OPERATOR_KEY = b"operator-secret"
NODES = 5


def deploy_execution_environments(topo, admission):
    environments = {}
    for name, node in topo.nodes.items():
        ee = node.capsule.instantiate(
            lambda n=name: ExecutionEnvironment(n, admission), "ee"
        )
        for port in node.ports():
            peer = node.neighbor(port).name
            egress = node.capsule.instantiate(
                lambda p=port, n=node: NicEgress(lambda pkt, p=p, n=n: n.send(p, pkt)),
                f"egress:{port}",
            )
            node.capsule.bind(
                ee.receptacle("out"), egress.interface("in0"), connection_name=peer
            )
        node.register_protocol(
            PROTO_ACTIVE,
            lambda packet, port, e=ee: e.interface("in0").vtable.invoke("push", packet),
        )
        environments[name] = ee
    return environments


def survey_program():
    """Visit-counting capsule: bump the soft store, record the node, then
    hop east until the last node, where it delivers.

    Jump offsets are computed from explicit instruction indices — capsule
    programs are data, so building them programmatically is the norm.
    """
    header = [
        # visits = (visits or 0) + 1
        ("load", "n", "visits"),
        ("cmp", "fresh", "n", "==", None),
        ("jif", "fresh", 1),
        ("jmp", 1),
        ("set", "n", 0),
        ("add", "n", "n", 1),
        ("store", "visits", "n"),
        ("env", "here", "node"),
        ("trace", "here"),
    ]
    base = len(header)
    decision_count = NODES - 1
    deliver_index = base + 2 * decision_count
    # Forwarding stubs live after (deliver, halt); stub for node i sits at
    # stub_index(i) and forwards to node i+1.
    first_stub = deliver_index + 2

    def stub_index(i):
        return first_stub + 2 * i

    decisions = []
    for i in range(decision_count):
        jif_index = base + 2 * i + 1
        offset = stub_index(i) - (jif_index + 1)
        decisions += [
            ("cmp", f"at{i}", "here", "==", f"n{i}"),
            ("jif", f"at{i}", offset),
        ]
    tail = [("deliver",), ("halt",)]
    stubs = []
    for i in range(decision_count):
        stubs += [("forward", f"n{i + 1}"), ("halt",)]
    return header + decisions + tail + stubs


def main() -> None:
    topo = Topology.chain(NODES, latency_s=0.002)
    admission = CodeAdmission()
    admission.trust("operator", OPERATOR_KEY, step_budget=256)
    environments = deploy_execution_environments(topo, admission)

    findings = []
    environments[f"n{NODES - 1}"].deliver_handler = (
        lambda packet, data: findings.append(data)
    )

    # A simpler, explicitly-branching program is easier to show than the
    # generated one; use generation but print it for the curious.
    program = survey_program()
    print(f"survey program: {len(program)} instructions")

    packet = make_capsule_packet(
        "10.0.0.1", "10.0.0.250", "operator", OPERATOR_KEY, program,
        data={"mission": "node-survey"}, ttl=NODES + 2,
    )
    print(f"capsule size on the wire: {packet.size_bytes} bytes")
    environments["n0"].interface("in0").vtable.invoke("push", packet)
    topo.engine.run()

    print(f"\ndelivered findings: {findings}")
    for name in sorted(environments):
        ee = environments[name]
        store = ee.soft_store("operator")
        print(
            f"  {name}: executed={ee.execution_count()} "
            f"soft-store visits={store.get('visits')}"
        )

    # The security half: an untrusted capsule dies at the first hop.
    n1_rx_before = environments["n1"].counters.get("rx", 0)
    evil = make_capsule_packet(
        "10.66.0.1", "10.0.0.250", "mallory", b"forged-key",
        [("broadcast",)],
    )
    environments["n0"].interface("in0").vtable.invoke("push", evil)
    topo.engine.run()
    dropped = environments["n0"].counters.get("drop:untrusted-principal", 0)
    n1_rx_after = environments["n1"].counters.get("rx", 0)
    print(
        f"\nuntrusted capsule dropped at n0 ({dropped} rejection); "
        f"n1 saw {n1_rx_after - n1_rx_before} further packets"
    )


if __name__ == "__main__":
    main()
