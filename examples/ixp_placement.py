#!/usr/bin/env python
"""Component placement on the IXP1200 via the placement meta-model.

The paper's planned IXP port raises "the issue of component placement":
which components run on the StrongARM control processor and which on the
six micro-engines, with "the CF itself [containing] the 'intelligence' to
transparently manage this placement, but with the possibility to
control/override this via a 'placement' meta-model".

This example places the Figure-3 data path on the board under three
strategies, shows the operator override path (pin + migrate), and
cross-checks the analytic cost model against simulation.

Run:  python examples/ixp_placement.py
"""

from repro.ixp import BoardSimulator, IxpBoard, PlacementMetaModel, StageVisit

GRAPH = [
    ("nic-in", "NicIngress", 1.0),
    ("recogniser", "ProtocolRecognizer", 1.0),
    ("v4", "IPv4HeaderProcessor", 0.7),
    ("v6", "IPv6HeaderProcessor", 0.3),
    ("classifier", "Classifier", 1.0),
    ("q-exp", "FifoQueue", 0.3),
    ("q-be", "FifoQueue", 0.7),
    ("sched", "PriorityLinkScheduler", 1.0),
    ("forwarder", "Forwarder", 1.0),
    ("nic-out", "NicEgress", 1.0),
    ("controller", "Controller", 0.01),
]


def main() -> None:
    board = IxpBoard()
    print("board:", ", ".join(sorted(board.pes)))
    placement = PlacementMetaModel(board)
    for name, ctype, fraction in GRAPH:
        placement.register(name, component_type=ctype, traffic_fraction=fraction)

    print("\nstrategy comparison:")
    for strategy in ("control", "greedy", "balanced"):
        result = placement.auto_place(strategy)
        print(
            f"  {strategy:9s}: {result.throughput_pps / 1e3:7.0f} kpps, "
            f"bottleneck {result.bottleneck}, spread {result.utilisation_spread:.2f}"
        )

    balanced = placement.auto_place("balanced")
    print("\nbalanced assignment:")
    for component, pe in balanced.assignment.items():
        memory = placement.components()[component].memory_level
        print(f"  {component:12s} -> {pe:4s} (state in {memory})")

    # The override path: the operator knows better for the forwarder.
    placement.pin("forwarder", "ue5")
    pinned = placement.auto_place("balanced")
    print(
        f"\nafter pinning forwarder->ue5: {pinned.throughput_pps / 1e3:.0f} kpps "
        f"(forwarder on {pinned.assignment['forwarder']})"
    )

    # Run-time migration with history.
    current = placement.components()["classifier"].pe
    target = "ue4" if current != "ue4" else "ue3"
    placement.migrate("classifier", target)
    print(f"migrated classifier {current} -> {target}")
    print(f"migration log: {placement.migrations}")

    # Cross-check by simulation.
    simulator = BoardSimulator(board, placement)
    stages = [StageVisit(name, fraction) for name, _, fraction in GRAPH]
    result = simulator.run(stages, packets=50_000)
    print(
        f"\nsimulated 50k packets: {result.throughput_pps / 1e3:.0f} kpps, "
        f"bottleneck {result.bottleneck} "
        f"(busy {result.per_pe_busy[result.bottleneck] * 1e3:.1f} ms)"
    )
    print("per-PE busy time (ms):")
    for pe, busy in sorted(result.per_pe_busy.items()):
        bar = "#" * int(busy / max(result.per_pe_busy.values()) * 40)
        print(f"  {pe:4s} {busy * 1e3:8.2f} {bar}")


if __name__ == "__main__":
    main()
