#!/usr/bin/env python
"""Genesis-style spawning networks (the paper's stratum-4 exemplar).

An ISP operates a 7-node physical tree.  Two customers spawn private
virtual networks over (overlapping) subsets of it — each with its own
addressing, its own routing confined to its members, and a bandwidth
share carved out of every member node.  One customer nests a child
network inside its own.  Traffic flows, isolation and containment are
verified, then one network is released and its resources return.

Run:  python examples/spawning_network.py
"""

from repro.coordination import GenesisError, GenesisFramework
from repro.netsim import Topology


def main() -> None:
    topo = Topology.binary_tree(2, latency_s=0.001)  # t0 (root) .. t6
    genesis = GenesisFramework(topo)
    print("physical network:", ", ".join(sorted(topo.nodes)))

    video = genesis.spawn(
        "customer-video", ["t0", "t1", "t3", "t4"], bandwidth_share=40e6
    )
    bulk = genesis.spawn(
        "customer-bulk", ["t0", "t2", "t5", "t6"], bandwidth_share=25e6
    )
    print("\nspawned networks:")
    for network in (video, bulk):
        info = network.describe()
        print(f"  {info['name']}: prefix {info['prefix']}")
        for member, details in info["members"].items():
            print(f"    {member} -> {details['virtual_address']}")

    # Traffic inside each network; routing stays within the member set.
    video.send("t3", "t4", b"video-frame-0001")
    bulk.send("t5", "t6", b"bulk-chunk-0001")
    topo.engine.run()
    for network in (video, bulk):
        delivery = network.deliveries[0]
        print(
            f"\n{network.name}: {delivery.src} -> {delivery.dst} via "
            f"{' -> '.join(delivery.hops)} ({len(delivery.payload)} bytes)"
        )

    # Isolation: video cannot address bulk's members.
    try:
        video.send("t0", "t6", b"cross-network")
    except GenesisError as exc:
        print(f"\nisolation enforced: {exc}")

    # Containment at the shared root.
    root_pool = topo.node("t0").capsule.resources.pool("bandwidth")
    print(
        f"t0 bandwidth committed: {root_pool.allocated / 1e6:.0f} / "
        f"{root_pool.capacity / 1e6:.0f} Mbps"
    )

    # Nested spawning: video carves a conferencing sub-network.
    conference = video.spawn_child(
        "video-conf", ["t0", "t1"], bandwidth_share=10e6
    )
    conference.send("t1", "t0", b"conf-hello")
    topo.engine.run()
    print(
        f"\nnested network {conference.name} delivered "
        f"{len(conference.deliveries)} message(s)"
    )
    print(f"t0 committed now: {root_pool.allocated / 1e6:.0f} Mbps")

    # Release the video network (children first, automatically).
    video.release()
    print(
        f"\nafter releasing {video.name} (and its child): "
        f"t0 committed {root_pool.allocated / 1e6:.0f} Mbps, "
        f"{genesis.total_spawned()} network(s) remain"
    )


if __name__ == "__main__":
    main()
