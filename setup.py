"""Setup shim enabling legacy editable installs in offline environments
that lack the ``wheel`` package (``pip install -e . --no-build-isolation``)."""

from setuptools import setup

setup()
