"""C19 — closed-loop self-adaptation under an adversarial trace.

Every reconfiguration benchmarked so far (C10b swaps, C15/C16 elastic
resizes, batch retunes) was *scripted*: the bench decided when.  C19
closes the loop: a monitor thread on the shared engine samples the
running system through its meta-models (pool watermarks, backlog
divergence, drop counters, admission depth), a policy engine maps the
context window to adaptation actions, and a typed rule set vetoes the
unsafe ones — then an adversarial multi-phase trace is replayed against
the adaptive system *and* a sweep of static configurations.

The trace is built so that no static configuration is good everywhere:

- **burst** — one elephant bulk flow arriving in per-tick spikes.  Wide
  fleets lose: the spike lands on a single shard whose pool slice is
  ``POOL_TOTAL / 8`` deep, so most of each spike is refused at the NIC
  no matter how fast the fleet drains.  A lean fleet's deep slice
  absorbs the spike; drop-tail tiers leak a queue-overflow trickle that
  the RED swap stops.
- **starve** — interactive (dport 53) demand above its byte-fair DRR
  share while bulk stays backlogged: DRR configurations pin the
  interactive queue at depth and drop; strict priority drains it.
- **flash** — a uniform flash crowd above the lean fleet's drain rate:
  two-shard configurations saturate and refuse; the adaptive system
  resizes to the placement model's recommendation.
- **quiet** — no arrivals: backlogs drain, and the adaptive system
  shrinks back once the placement policy sees a quiet window.

Mid-flash the bench also *requests* a deliberately unsafe swap
(``quiesce=False`` on a live admission port): the rule engine must veto
it with a typed (rule, reason) pair while the system keeps serving.

Scoring is delivered frames over identical virtual time (every
configuration steps the same tick schedule), so the ordering is
deterministic — no wall-clock noise.  A second cell re-checks the paper
ordering (monolithic >= Click >= CF fused >= CF vtable) on a fault-free
steady trace under the C16 wall-clock idiom.
"""

import time

import pytest

from benchmarks.bench_c6_datapath import routes_with_default
from benchmarks.conftest import SMOKE, once, report, scaled
from repro.appservices import (
    AdmissionQueueProbe,
    BacklogProbe,
    DropCounterProbe,
    MonitorCF,
    PoolWatermarkProbe,
)
from repro.baselines import (
    ClickRouter,
    monolithic_shard_fleet,
    standard_click_config,
)
from repro.coordination import (
    AdaptationAction,
    AdaptationManager,
    ClassStarvationPolicy,
    MonitorThread,
    PlacementResizePolicy,
    SustainedBurstPolicy,
    SystemView,
)
from repro.ixp import IxpBoard, ShardPlacement
from repro.netsim import flow_hash_of, make_udp_v4
from repro.opencom.capsule import Capsule
from repro.osbase import (
    Nic,
    RoundRobinScheduler,
    Shard,
    ShardedDatapath,
    ThreadManagerCF,
    VirtualClock,
    carve_shard_pools,
    release_dropped,
    shard_pool_audit,
)
from repro.router import (
    AdmissionTier,
    FifoQueue,
    PriorityLinkScheduler,
    RedQueue,
    build_sharded_forwarding_datapath,
)

pytestmark = pytest.mark.bench

# -- fleet shapes ------------------------------------------------------------
LEAN = 2
WIDE = 8
BATCH_SMALL = 8
BATCH_BIG = 32
BUCKETS = 32
RX_RING = 4096
BUFFER_SIZE = 128
#: One fixed buffer budget carved across the fleet: a wide fleet pays
#: with shallow per-shard slices — the trade the burst phase exploits.
POOL_TOTAL = 768

# -- admission tier ----------------------------------------------------------
INTERACTIVE_CAP = 512
BULK_CAP = 384
RED_CAP = 4096
#: Scheduled packets injected into the datapath per tick, in one NAPI-
#: style poll burst (the per-tick spike the pool slices must absorb).
PUMP_BUDGET = 512
#: Thread quanta per trace tick.
STEPS_PER_TICK = 4

# -- the adversarial trace (arrivals per tick) -------------------------------
BURST_TICKS = scaled(14, 6)
STARVE_TICKS = scaled(12, 6)
FLASH_TICKS = scaled(12, 6)
QUIET_TICKS = scaled(20, 12)
BURST_RATE = 448          # one elephant bulk flow, one spike per tick
STARVE_INTERACTIVE = 384  # > the byte-fair half of PUMP_BUDGET
STARVE_BULK = 256
FLASH_BULK = 512          # uniform, > the lean fleet's drain rate
FLASH_INTERACTIVE = 64
PAYLOAD = b"\x00" * 64    # equal sizes: byte-fair DRR == packet-fair


def red_factory():
    """The burst policy's swap target (and the static RED cells' bulk
    queue): deep, late-dropping RED — burst absorption, not policing."""
    return RedQueue(
        RED_CAP,
        min_threshold=RED_CAP * 3 // 4,
        max_threshold=RED_CAP,
        max_drop_probability=0.05,
    )


def droptail_factory():
    return FifoQueue(BULK_CAP)


def priority_factory():
    return PriorityLinkScheduler(["interactive", "bulk"])


def new_threads():
    return ThreadManagerCF(VirtualClock(), scheduler=RoundRobinScheduler())


def new_placement():
    return ShardPlacement(IxpBoard(), max_shards=WIDE)


def make_trace(routes):
    """The whole trace as per-tick packet-spec waves (src, dst, sport,
    dport); every configuration replays the identical schedule."""
    bases = [prefix.split("/")[0] for prefix in routes]
    elephant = ("10.40.0.9", bases[0], 40001, 80)
    interactive = [
        ("10.41.0.%d" % (i % 100), bases[i % len(bases)], 2000 + i, 53)
        for i in range(16)
    ]
    bulk = [
        ("10.42.%d.9" % (i % 100), bases[i % len(bases)], 3000 + i, 80)
        for i in range(64)
    ]

    def spread(flows, count):
        return [flows[i % len(flows)] for i in range(count)]

    waves = []
    for _ in range(BURST_TICKS):
        waves.append([elephant] * BURST_RATE)
    for _ in range(STARVE_TICKS):
        waves.append(
            spread(interactive, STARVE_INTERACTIVE) + spread(bulk[:16], STARVE_BULK)
        )
    for _ in range(FLASH_TICKS):
        waves.append(
            spread(bulk, FLASH_BULK) + spread(interactive, FLASH_INTERACTIVE)
        )
    for _ in range(QUIET_TICKS):
        waves.append([])
    return waves


def materialise(wave):
    return [
        make_udp_v4(src, dst, sport=sport, dport=dport, payload=PAYLOAD)
        for src, dst, sport, dport in wave
    ]


class EgressCounter:
    def __init__(self):
        self.total = 0

    def handler(self, shard_index):
        def on_frame(frame):
            self.total += 1
            release_dropped(frame)

        return on_frame


#: Static cells: each is the right fixed answer for *some* phase of the
#: trace and the wrong one for another.  The sweep deliberately spans
#: both fleet shapes, both batch sizes, both schedulers and both bulk
#: disciplines; the adaptive run starts from the weakest cell.
STATIC_CONFIGS = {
    "lean/drr/drop-tail/b8": (LEAN, BATCH_SMALL, None, droptail_factory),
    "lean/drr/drop-tail/b32": (LEAN, BATCH_BIG, None, droptail_factory),
    "wide/drr/drop-tail/b8": (WIDE, BATCH_SMALL, None, droptail_factory),
    "lean/prio/red/b32": (LEAN, BATCH_BIG, priority_factory, red_factory),
    "wide/prio/red/b32": (WIDE, BATCH_BIG, priority_factory, red_factory),
}


def build_cell(routes, *, shards, batch, scheduler_factory, bulk_factory, name):
    threads = new_threads()
    placement = new_placement()
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, shards, exhaustion_policy="drop-newest"
    )
    counter = EgressCounter()
    datapath = build_sharded_forwarding_datapath(
        routes=routes,
        shards=shards,
        threads=threads,
        pools=pools,
        batch=batch,
        rx_ring_size=RX_RING,
        tx_handler=counter.handler,
        buckets=BUCKETS,
        locality=placement.locality_penalty,
        name=name,
    )
    tier = AdmissionTier(
        Capsule(f"edge-{name}"),
        datapath.steer_batch,
        classes={
            "interactive": lambda: FifoQueue(INTERACTIVE_CAP),
            "bulk": bulk_factory,
        },
        filters=("dport=53 -> interactive",),
        scheduler_factory=scheduler_factory,
        name=f"admission-{name}",
    )
    stop = {"pump": False}

    def pump_body():
        # NAPI-style poll: one scheduling burst per tick, so the whole
        # injected batch hits the pool slices as a spike.
        while not stop["pump"]:
            tier.service(PUMP_BUDGET)
            for _ in range(STEPS_PER_TICK):
                yield
                if stop["pump"]:
                    return

    threads.spawn(f"{name}-pump", pump_body())
    return {
        "threads": threads,
        "placement": placement,
        "datapath": datapath,
        "tier": tier,
        "counter": counter,
        "stop": stop,
        "manager": None,
        "monitor_thread": None,
    }


def attach_adaptation(cell):
    """Wire the closed loop onto a freshly built (lean, small-batch,
    DRR, drop-tail) cell: monitor CF -> context window -> policies ->
    rule-checked actuation, all as a thread on the shared engine."""
    datapath, tier, placement = cell["datapath"], cell["tier"], cell["placement"]
    monitor = MonitorCF()
    monitor.accept(PoolWatermarkProbe(lambda: [s.pool for s in datapath.shards]))
    monitor.accept(BacklogProbe(datapath))
    monitor.accept(AdmissionQueueProbe(tier))
    monitor.accept(
        DropCounterProbe(
            {
                "inject_refused": lambda: tier.pipeline.stages["sink"]
                .counters.get("inject:refused", 0)
            }
        )
    )
    capacity = placement.fleet_capacity_pps(WIDE)
    policies = [
        SustainedBurstPolicy(
            queue_class="bulk",
            red_factory=red_factory,
            drop_signal="admission_drops",
            ticks=2,
            batch=BATCH_BIG,
            steal_watermark=8,
        ),
        ClassStarvationPolicy(
            klass="interactive",
            scheduler_factory=priority_factory,
            min_depth=48,
            ticks=3,
        ),
        PlacementResizePolicy(
            placement=placement,
            # Any loaded phase overshoots the modelled board capacity, so
            # recommend() deploys the full fleet; the divergence gate is
            # what keeps the elephant phase (skewed backlog) lean.
            rate_scale=capacity / 40.0,
            max_divergence=64.0,
            quiet_rate=capacity / 100.0,
            ticks=3,
            min_shards=LEAN,
            max_shards=WIDE,
        ),
    ]
    view = SystemView(datapath=datapath, admission=tier, placement=placement)
    manager = AdaptationManager(view, monitor, policies=policies, window_size=16)
    monitor_thread = MonitorThread(manager, period=STEPS_PER_TICK)
    monitor_thread.spawn(cell["threads"])
    cell["manager"] = manager
    cell["monitor_thread"] = monitor_thread
    return cell


def run_trace(cell, waves, *, unsafe_at=None):
    """Replay the trace tick schedule; every cell steps the identical
    virtual time.  ``unsafe_at`` injects the deliberately unsafe swap
    request mid-run (adaptive cell only)."""
    threads, tier, datapath = cell["threads"], cell["tier"], cell["datapath"]
    manager = cell["manager"]
    offered = 0
    for tick, wave in enumerate(waves):
        if wave:
            packets = materialise(wave)
            offered += len(packets)
            tier.push_batch(packets)
        if unsafe_at is not None and tick == unsafe_at:
            unsafe = AdaptationAction(
                "swap-queue",
                {
                    "class": "bulk",
                    "factory": red_factory,
                    "quiesce": False,
                    "label": "unsafe live-port swap",
                },
                reason="bench-injected unsafe request",
            )
            assert manager.request(unsafe) is False
            veto = manager.vetoes[-1]
            assert veto.rule == "no-swap-on-live-port", veto
            assert "live" in veto.reason, veto
        for _ in range(STEPS_PER_TICK):
            threads.step_parallel(datapath.cores + 2)
    delivered = cell["counter"].total
    virtual_elapsed = threads.clock.now
    # Retire the auxiliary threads, then drain what is still in flight —
    # the zero-leak audit, not the score.
    cell["stop"]["pump"] = True
    if cell["monitor_thread"] is not None:
        cell["monitor_thread"].stop()
    for _ in range(2 * STEPS_PER_TICK):
        threads.step_parallel(datapath.cores + 2)
    datapath.shutdown(drain=True)
    audit = shard_pool_audit([shard.pool for shard in datapath.shards])
    result = {
        "offered": offered,
        "delivered": delivered,
        "virtual_elapsed": virtual_elapsed,
        "tier_drops": tier.drop_total(),
        "inject_refused": tier.pipeline.stages["sink"].counters.get(
            "inject:refused", 0
        ),
        "audit": audit,
        "shape": tier.describe(),
        "fleet": len(datapath.shards),
    }
    if manager is not None:
        result["applied"] = list(manager.applied)
        result["vetoes"] = list(manager.vetoes)
        result["cf_audit"] = manager.audit()
    return result


def test_c19_adaptation_beats_static_sweep(benchmark):
    def experiment():
        routes = routes_with_default()
        waves = make_trace(routes)
        results = {}
        for name, (shards, batch, sched, bulk) in STATIC_CONFIGS.items():
            cell = build_cell(
                routes,
                shards=shards,
                batch=batch,
                scheduler_factory=sched,
                bulk_factory=bulk,
                name=name.replace("/", "-"),
            )
            results[name] = run_trace(cell, waves)
        adaptive = attach_adaptation(
            build_cell(
                routes,
                shards=LEAN,
                batch=BATCH_SMALL,
                scheduler_factory=None,
                bulk_factory=droptail_factory,
                name="adaptive",
            )
        )
        results["adaptive"] = run_trace(
            adaptive, waves, unsafe_at=BURST_TICKS + STARVE_TICKS + 2
        )
        return results

    results = once(benchmark, experiment)

    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                res["delivered"],
                res["offered"],
                f"{res['delivered'] / res['virtual_elapsed']:.1f}",
                res["tier_drops"],
                res["inject_refused"],
                res["fleet"],
                "yes" if res["audit"]["balanced"] else "NO",
            ]
        )
    report(
        f"C19: adversarial trace burst({BURST_TICKS})->starve({STARVE_TICKS})"
        f"->flash({FLASH_TICKS})->quiet({QUIET_TICKS}), "
        f"{POOL_TOTAL}-buffer budget, pump {PUMP_BUDGET}/tick",
        [
            "config",
            "delivered",
            "offered",
            "pps(virtual)",
            "tier drops",
            "inject refused",
            "fleet",
            "pools balanced",
        ],
        rows,
    )

    statics = {k: v for k, v in results.items() if k != "adaptive"}
    adaptive = results["adaptive"]
    print(
        "[bench-meta] static_sweep="
        + ",".join(f"{k}:{v['delivered']}" for k, v in statics.items())
    )
    print(f"[bench-meta] adaptive_delivered={adaptive['delivered']}")
    print(f"[bench-meta] vetoes={len(adaptive['vetoes'])}")
    print(
        "[bench-meta] actions="
        + ",".join(action.kind for action in adaptive["applied"])
    )
    print("[bench-meta] phases=burst-starve-flash-quiet")

    def vpps(res):
        return res["delivered"] / res["virtual_elapsed"]

    # Identical tick schedule => identical virtual time, adaptive
    # included (structural rounds run inline, off the thread clock).
    elapsed = {res["virtual_elapsed"] for res in results.values()}
    assert len(elapsed) == 1, elapsed

    # The tentpole claim: the closed loop beats every static cell on the
    # full trace (smoke keeps the weaker worst-cell gate: short phases
    # amortise the adaptation latency less).
    worst = min(statics.values(), key=vpps)
    best = max(statics.values(), key=vpps)
    assert vpps(adaptive) > vpps(worst), (vpps(adaptive), vpps(worst))
    if not SMOKE:
        assert vpps(adaptive) > vpps(best), (vpps(adaptive), vpps(best))

    # The deliberately unsafe swap was vetoed, typed, mid-run — and the
    # loop still applied a real adaptation of every kind in the catalog.
    assert len(adaptive["vetoes"]) >= 1
    assert adaptive["vetoes"][-1].rule == "no-swap-on-live-port"
    kinds = {action.kind for action in adaptive["applied"]}
    assert {"swap-queue", "swap-scheduler", "set-batch"} <= kinds, kinds
    if not SMOKE:
        assert kinds == {
            "swap-queue",
            "swap-scheduler",
            "set-batch",
            "set-steal-watermark",
            "resize",
        }, kinds
    # The loop ends rule-valid (admission + monitor CFs) and adapted:
    # RED bulk, strict priority, and the fleet shrunk back to lean.
    assert adaptive["cf_audit"] == []
    assert adaptive["shape"]["queues"]["bulk"] == "RedQueue"
    assert adaptive["shape"]["scheduler"] == "PriorityLinkScheduler"

    # Zero pool leaks everywhere.
    for name, res in results.items():
        assert res["audit"]["balanced"], (name, res["audit"])


# ---------------------------------------------------------------------------
# Control cells: paper ordering on a fault-free steady trace
# ---------------------------------------------------------------------------

CC_FLOWS = scaled(64, 32)
#: The C15 lesson: the ordering assertion needs a timed region of
#: thousands of frames per run, or scheduler noise swamps the ~5%
#: monolithic/Click/CF gaps.  Best-of-5 interleaved repeats on top.
CC_WAVES = scaled(240, 96)
CC_REPEATS = 5
CC_BATCH = 32
CC_SHARDS = 2


def cc_waves(routes):
    bases = [prefix.split("/")[0] for prefix in routes]
    flows = [
        (f"10.50.{i % 200}.9", bases[i % len(bases)], 1024 + 7 * i, 53)
        for i in range(CC_FLOWS)
    ]
    return [
        [
            make_udp_v4(src, dst, sport=sport, dport=dport, payload=PAYLOAD)
            .to_bytes()
            for src, dst, sport, dport in flows
        ]
        for _ in range(CC_WAVES)
    ]


def cc_build_cf(routes, *, fused):
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, CC_SHARDS, exhaustion_policy="drop-newest"
    )
    counter = EgressCounter()
    datapath = build_sharded_forwarding_datapath(
        routes=routes,
        shards=CC_SHARDS,
        threads=new_threads(),
        pools=pools,
        batch=CC_BATCH,
        rx_ring_size=RX_RING,
        fused=fused,
        tx_handler=counter.handler,
        buckets=BUCKETS,
    )
    return datapath, lambda: counter.total


def cc_build_baseline(routes, *, click):
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, CC_SHARDS, exhaustion_policy="drop-newest"
    )
    engines = []

    def new_engine():
        if click:
            engine = ClickRouter(
                standard_click_config(
                    routes=routes, queue_capacity=4 * CC_BATCH, recycle_sinks=True
                )
            )
        else:
            engine = monolithic_shard_fleet(routes, 1, queue_capacity=4 * CC_BATCH)[0]
        engines.append(engine)
        return engine

    def make_shard(index, pool):
        engine = new_engine()
        return Shard(
            index,
            nic=Nic(rx_ring_size=RX_RING, pool=pool),
            pool=pool,
            push_batch=engine.push_batch,
            flush=lambda e=engine: e.service(budget=CC_BATCH),
            engine=engine,
        )

    built = [make_shard(index, pools[index]) for index in range(CC_SHARDS)]
    datapath = ShardedDatapath(
        built,
        threads=new_threads(),
        hash_fn=flow_hash_of,
        batch=CC_BATCH,
        buckets=BUCKETS,
        shard_factory=make_shard,
    )

    def forwarded():
        if click:
            return sum(
                element.counters.get("rx", 0)
                for router in engines
                for name, element in router.elements.items()
                if name.startswith("sink-")
            )
        return sum(router.counters["tx"] for router in engines)

    return datapath, forwarded


def cc_run(builder, waves):
    datapath, forwarded = builder()
    fed = 0
    tick = time.perf_counter()
    for wave in waves:
        fed += datapath.steer_batch(wave)
        datapath.pump()
    datapath.pump()
    elapsed = time.perf_counter() - tick
    audit = shard_pool_audit([shard.pool for shard in datapath.shards])
    outcome = {
        "elapsed": elapsed,
        "fed": fed,
        "forwarded": forwarded(),
        "audit": audit,
    }
    datapath.shutdown()
    return outcome


def test_c19_control_cells_paper_ordering(benchmark):
    def experiment():
        routes = routes_with_default()
        waves = cc_waves(routes)
        runners = {
            "CF vtable": lambda: cc_run(
                lambda: cc_build_cf(routes, fused=False), waves
            ),
            "CF fused": lambda: cc_run(
                lambda: cc_build_cf(routes, fused=True), waves
            ),
            "Click-style": lambda: cc_run(
                lambda: cc_build_baseline(routes, click=True), waves
            ),
            "monolithic": lambda: cc_run(
                lambda: cc_build_baseline(routes, click=False), waves
            ),
        }
        results = {}
        for runner in runners.values():
            runner()  # warm-up: caches, imports, allocator — untimed
        for _ in range(CC_REPEATS):
            for name, runner in runners.items():
                outcome = runner()
                if name not in results:
                    results[name] = outcome
                else:
                    kept = results[name]
                    assert outcome["forwarded"] == kept["forwarded"], name
                    kept["elapsed"] = min(kept["elapsed"], outcome["elapsed"])
        return results

    results = once(benchmark, experiment)
    expected = CC_WAVES * CC_FLOWS
    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                f"{res['forwarded'] / res['elapsed'] / 1e3:.0f}",
                res["forwarded"],
                "yes" if res["audit"]["balanced"] else "NO",
            ]
        )
    report(
        f"C19 control cells: fault-free steady trace, {CC_FLOWS} flows x "
        f"{CC_WAVES} waves, {CC_SHARDS} shards",
        ["system", "kpps(wall)", "forwarded", "pools balanced"],
        rows,
    )
    for name, res in results.items():
        assert res["fed"] == expected, (name, res["fed"])
        assert res["forwarded"] == expected, (name, res["forwarded"])
        assert res["audit"]["balanced"], name

    def pps(name):
        return results[name]["forwarded"] / results[name]["elapsed"]

    # The C6/C16 paper ordering, same slacks: single-cell wall-clock
    # noise gets 0.9, and the fused/vtable pair (a ~1-2% effect once
    # batching amortises dispatch) takes 0.75 under smoke.
    assert pps("monolithic") >= pps("Click-style") * 0.9
    assert pps("Click-style") >= pps("CF fused") * 0.9
    assert pps("CF fused") >= pps("CF vtable") * (0.75 if SMOKE else 0.9)
