"""C8 — the coordination stratum: RSVP reservation and Genesis spawning.

Paper (section 3): stratum 4 "comprises out-of-band signaling protocols
that perform distributed coordination and (re)configuration of the lower
strata.  Examples are RSVP, or protocols that coordinate resource
allocation on a set of routers participating in a dynamic private virtual
network, as employed by systems like Genesis".

Reproduced: admission-controlled end-to-end reservation over a 6-node
chain (including the over-subscription crossover), and the spawning of two
isolated virtual networks over an 8-node tree with verified resource
containment.
"""

import pytest

from benchmarks.conftest import once, report
from repro.coordination import GenesisFramework, attach_agents, deploy_rsvp
from repro.netsim import Topology

pytestmark = pytest.mark.bench


def test_c8_rsvp_admission_sweep(benchmark):
    """Reserve increasing bandwidths until admission control bites; the
    crossover must land exactly where capacity runs out on the path."""

    def experiment():
        topo = Topology.chain(6, latency_s=0.001)
        agents = attach_agents(topo)
        rsvp = deploy_rsvp(topo, agents, bandwidth_capacity=100e6)
        rows = []
        outcomes = []
        for i, bandwidth in enumerate([30e6, 30e6, 30e6, 30e6]):
            session = rsvp["n0"].reserve("n5", bandwidth)
            topo.engine.run()
            rows.append(
                [
                    f"session {i + 1}",
                    f"{bandwidth / 1e6:.0f} Mbps",
                    session.status,
                    f"{rsvp['n2'].reserved_bandwidth() / 1e6:.0f} Mbps",
                ]
            )
            outcomes.append(session.status)
        report(
            "C8: RSVP admission over a 6-node chain (100 Mbps pools)",
            ["request", "bandwidth", "outcome", "reserved at n2"],
            rows,
        )
        return outcomes, rsvp, topo

    outcomes, rsvp, topo = once(benchmark, experiment)
    # 3 x 30 Mbps fit; the 4th (90+30 > 100) must be rejected.
    assert outcomes == ["established"] * 3 + ["rejected"]
    # Containment: rejected session left nothing behind anywhere.
    assert all(
        agent.reserved_bandwidth() == 90e6 for agent in rsvp.values()
    )


def test_c8_rsvp_signaling_cost(benchmark):
    """Messages per reservation grows linearly with path length."""

    def experiment():
        rows = []
        counts = []
        for hops in (2, 4, 8):
            topo = Topology.chain(hops + 1, latency_s=0.001)
            agents = attach_agents(topo)
            rsvp = deploy_rsvp(topo, agents)
            before = sum(a.counters["sent"] for a in agents.values())
            session = rsvp["n0"].reserve(f"n{hops}", 1e6)
            topo.engine.run()
            after = sum(a.counters["sent"] for a in agents.values())
            assert session.status == "established"
            rows.append([f"{hops} hops", after - before])
            counts.append(after - before)
        report("C8b: signaling messages per reservation", ["path", "messages"], rows)
        return counts

    counts = once(benchmark, experiment)
    # Linear growth: doubling the path roughly doubles the messages.
    assert counts[1] / counts[0] < 3.0
    assert counts[2] / counts[1] < 3.0


def test_c8_genesis_spawn_and_isolation(benchmark):
    def experiment():
        topo = Topology.binary_tree(2, latency_s=0.0005)  # 7 nodes
        genesis = GenesisFramework(topo)
        video_net = genesis.spawn(
            "video", ["t0", "t1", "t3", "t4"], bandwidth_share=30e6
        )
        bulk_net = genesis.spawn(
            "bulk", ["t0", "t2", "t5", "t6"], bandwidth_share=20e6
        )
        video_net.send("t3", "t4", b"frame-1")
        bulk_net.send("t5", "t6", b"chunk-1")
        topo.engine.run()
        t0_pool = topo.node("t0").capsule.resources.pool("bandwidth")
        rows = [
            [
                "video",
                "t0,t1,t3,t4",
                "30 Mbps",
                len(video_net.deliveries),
                " -> ".join(video_net.deliveries[0].hops),
            ],
            [
                "bulk",
                "t0,t2,t5,t6",
                "20 Mbps",
                len(bulk_net.deliveries),
                " -> ".join(bulk_net.deliveries[0].hops),
            ],
        ]
        report(
            "C8c: Genesis spawning over an 8-node tree",
            ["virtual net", "members", "share", "delivered", "path"],
            rows,
        )
        print(f"    t0 bandwidth allocated to virtual nets: {t0_pool.allocated / 1e6:.0f} Mbps")
        return video_net, bulk_net, genesis, topo

    video_net, bulk_net, genesis, topo = once(benchmark, experiment)
    # Each network delivered its own traffic, nothing leaked across.
    assert [d.payload for d in video_net.deliveries] == [b"frame-1"]
    assert [d.payload for d in bulk_net.deliveries] == [b"chunk-1"]
    # Routing stayed inside the member set.
    assert set(video_net.deliveries[0].hops) <= set(video_net.members)
    # Containment: t0 carries both allocations; release returns them.
    t0_pool = topo.node("t0").capsule.resources.pool("bandwidth")
    assert t0_pool.allocated == 50e6
    video_net.release()
    bulk_net.release()
    assert t0_pool.allocated == 0
