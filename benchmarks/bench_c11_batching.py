"""C11 — batched in-band datapath: amortising per-invocation dispatch.

The paper's in-band stratum is "a highly performance-critical area in
which machine instructions must be counted with care" (section 3).  The
seed repo forwarded one packet at a time through a string-keyed vtable
``invoke`` per hop, so per-call overhead — not forwarding work —
dominated C6.  This experiment measures what end-to-end batching buys:
every layer (vtable ``invoke_batch``, port batch handles, component
``push_batch``, baseline elements) moves whole packet lists per crossing.

Shape asserted:

- fused batch-32 throughput >= 2x the seed-style per-packet vtable path
  on the C6 trace (the headline claim of the batching refactor);
- throughput is monotone-ish in batch size for the fused CF path;
- the paper's C6 ordering survives batching:
  monolithic >= Click-style >= Router CF (fused) >= Router CF (vtable).
"""

import gc
import time

import pytest

from benchmarks.bench_c6_datapath import HOPS, PACKETS, routes_with_default
from benchmarks.conftest import SMOKE, make_route_trace, once, report
from repro.baselines import ClickRouter, MonolithicRouter, standard_click_config
from repro.netsim import batched
from repro.opencom import Capsule, fuse_pipeline
from repro.router import build_forwarding_pipeline

pytestmark = pytest.mark.bench

BATCH_SIZES = (1, 8, 32, 128)
HEADLINE_BATCH = 32
#: Each configuration is measured this many times (fresh router, fresh
#: trace) and the best elapsed wins.  Repeats are *interleaved* across
#: configurations — a CPU-contention burst then degrades one repeat of
#: every configuration instead of every repeat of one, which would skew
#: the ~10% gaps the shape asserts care about.
REPEATS = 3


def sweep(runners, routes):
    """Measure every runner REPEATS times (interleaved); return
    name -> (best pps, delivered), asserting deterministic delivery."""
    best: dict[str, float] = {}
    delivered: dict[str, int] = {}
    for _ in range(REPEATS):
        for name, runner in runners.items():
            gc.collect()
            elapsed, got = runner(routes, make_route_trace(routes, PACKETS))
            if name in delivered:
                assert got == delivered[name], name
            delivered[name] = got
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    return {name: (PACKETS / best[name], delivered[name]) for name in runners}


def _build_cf(routes, *, fused):
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes)
    plan = None
    if fused:
        plan = fuse_pipeline(list(capsule.components().values()))
    return pipeline, plan


def _delivered(pipeline):
    return sum(
        sink.collected_count()
        for name, sink in pipeline.stages.items()
        if name.startswith("sink:")
    )


def run_cf_per_packet(routes, trace, *, fused):
    """The seed data path: one vtable invoke per packet per hop."""
    pipeline, _ = _build_cf(routes, fused=fused)
    start = time.perf_counter()
    for packet in trace:
        pipeline.push(packet)
    elapsed = time.perf_counter() - start
    return elapsed, _delivered(pipeline)


def run_cf_batch(routes, trace, *, batch_size, fused):
    """The batched data path: whole lists per crossing."""
    pipeline, _ = _build_cf(routes, fused=fused)
    batches = list(batched(trace, batch_size))
    start = time.perf_counter()
    for batch in batches:
        pipeline.push_batch(batch)
    elapsed = time.perf_counter() - start
    return elapsed, _delivered(pipeline)


def run_monolithic_batch(routes, trace, *, batch_size):
    router = MonolithicRouter(routes, queue_capacity=PACKETS + 1)
    batches = list(batched(trace, batch_size))
    start = time.perf_counter()
    for batch in batches:
        router.push_batch(batch)
    router.service(budget=PACKETS)
    elapsed = time.perf_counter() - start
    return elapsed, router.counters["tx"]


def run_click_batch(routes, trace, *, batch_size):
    router = ClickRouter(standard_click_config(routes=routes, queue_capacity=PACKETS + 1))
    batches = list(batched(trace, batch_size))
    start = time.perf_counter()
    for batch in batches:
        router.push_batch(batch)
    router.service(budget=PACKETS)
    elapsed = time.perf_counter() - start
    delivered = sum(
        element.counters.get("rx", 0)
        for name, element in router.elements.items()
        if name.startswith("sink-")
    )
    return elapsed, delivered


def test_c11_batching_throughput(benchmark):
    def experiment():
        routes = routes_with_default()
        runners = {
            "CF vtable, per-packet": lambda r, t: run_cf_per_packet(r, t, fused=False),
            "CF fused, per-packet": lambda r, t: run_cf_per_packet(r, t, fused=True),
            **{
                f"CF fused, batch-{size}": (
                    lambda r, t, s=size: run_cf_batch(r, t, batch_size=s, fused=True)
                )
                for size in BATCH_SIZES
            },
            f"CF vtable, batch-{HEADLINE_BATCH}": lambda r, t: run_cf_batch(
                r, t, batch_size=HEADLINE_BATCH, fused=False
            ),
            f"monolithic, batch-{HEADLINE_BATCH}": lambda r, t: run_monolithic_batch(
                r, t, batch_size=HEADLINE_BATCH
            ),
            f"Click-style, batch-{HEADLINE_BATCH}": lambda r, t: run_click_batch(
                r, t, batch_size=HEADLINE_BATCH
            ),
        }
        results = sweep(runners, routes)

        base = results["CF vtable, per-packet"][0]
        rows = [
            [name, f"{pps / 1e3:.0f}", f"{pps / base:.2f}x", delivered]
            for name, (pps, delivered) in results.items()
        ]
        report(
            "C11: batched forwarding throughput, 1k-route IPv4 trace "
            f"({PACKETS} packets)",
            ["system", "kpps", "vs per-packet vtable", "delivered"],
            rows,
        )
        return {name: pps for name, (pps, _) in results.items()}, results

    throughput, results = once(benchmark, experiment)
    for name, (_, delivered) in results.items():
        assert delivered == PACKETS, name

    # Magnitude claims are noise-dominated on the smoke trace; smoke mode
    # asserts the paper ordering only (below).
    if not SMOKE:
        # Headline: batching + fusion buys >= 2x over the seed per-packet
        # vtable path on the same trace.
        headline = throughput[f"CF fused, batch-{HEADLINE_BATCH}"]
        assert headline >= 2.0 * throughput["CF vtable, per-packet"]

        # Batching helps even without fusion, and bigger batches don't
        # hurt (generous slack: only a gross regression fails).
        assert throughput[f"CF vtable, batch-{HEADLINE_BATCH}"] >= throughput[
            "CF vtable, per-packet"
        ]
        assert (
            throughput["CF fused, batch-128"]
            >= throughput["CF fused, batch-8"] * 0.7
        )

    # Paper ordering preserved under batching (same slack style as C6).
    mono = throughput[f"monolithic, batch-{HEADLINE_BATCH}"]
    click = throughput[f"Click-style, batch-{HEADLINE_BATCH}"]
    fused = throughput[f"CF fused, batch-{HEADLINE_BATCH}"]
    vtable = throughput[f"CF vtable, batch-{HEADLINE_BATCH}"]
    assert mono >= click * 0.9
    assert click >= fused * 0.9
    # Same 0.9 slack as the other pairs: the fused/vtable gap is ~1-2%
    # once batching amortises dispatch, inside back-to-back wall-clock noise.
    assert fused >= vtable * 0.9


def test_c11_fused_batch_pps(benchmark):
    """pytest-benchmark timing for one fused batch-32 crossing."""
    routes = routes_with_default()
    pipeline, _ = _build_cf(routes, fused=True)
    trace = make_route_trace(routes, PACKETS)
    batches = list(batched(trace, HEADLINE_BATCH))
    index = {"i": 0}

    def push_one_batch():
        pipeline.push_batch(batches[index["i"] % len(batches)])
        index["i"] += 1

    benchmark(push_one_batch)


def test_c11_fusion_plan_summary():
    """The fusion plan summary is exposed for benchmark logs."""
    routes = routes_with_default()
    capsule = Capsule("dut")
    build_forwarding_pipeline(capsule, routes=routes)
    plan = fuse_pipeline(list(capsule.components().values()))
    summary = plan.summary()
    assert summary.startswith("fused ")
    assert str(plan.fused_count) in summary
    print(f"\nC11 fusion: {summary} (hops: {', '.join(HOPS)})")
