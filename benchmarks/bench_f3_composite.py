"""F3 — Figure 3: the composite Router CF component, end to end.

Figure 3 shows a composite accepted by the Router CF: protocol recogniser
fanning out to IPv4/IPv6 header processors, a queueing gateway instance
per class, a link scheduler, a controller, exported IClassifier access,
and controller-managed constraints.  This experiment drives the exact
composite with a 10k-packet mixed trace and regenerates the figure as
tables: per-stage packet accounting, the internal topology, and the
constraint/ACL behaviour.
"""

import pytest

from benchmarks.conftest import once, report
from repro.netsim import mixed_v4_v6_trace
from repro.opencom import AccessDenied, Capsule, ConstraintViolation
from repro.router import build_figure3_composite

pytestmark = pytest.mark.bench

TRACE = 10_000


def test_f3_composite_data_path(benchmark):
    def experiment():
        capsule = Capsule("figure3")
        composite, pipeline = build_figure3_composite(
            capsule, queue_capacity=TRACE
        )
        composite.interface("classifier").vtable.invoke(
            "register_filter", "dport=2000-2003 -> expedited priority=10"
        )
        trace = mixed_v4_v6_trace(count=TRACE, seed=41)
        for packet in trace:
            pipeline.push(packet)
        pipeline.drain()
        stats = pipeline.stage_stats()
        rows = [
            ["protocol recogniser", stats["recogniser"]["rx"],
             f"v4={stats['recogniser']['v4']} v6={stats['recogniser']['v6']}"],
            ["IPv4 hdr processor", stats["ipv4"]["rx"],
             f"forwarded={stats['ipv4']['forwarded']}"],
            ["IPv6 hdr processor", stats["ipv6"]["rx"],
             f"forwarded={stats['ipv6']['forwarded']}"],
            ["classifier", stats["classifier"]["rx"],
             f"expedited={stats['classifier'].get('class:expedited', 0)} "
             f"best-effort={stats['classifier'].get('class:best-effort', 0)}"],
            ["queue (expedited)", stats["queue:expedited"]["rx"],
             f"tx={stats['queue:expedited'].get('tx', 0)}"],
            ["queue (best-effort)", stats["queue:best-effort"]["rx"],
             f"tx={stats['queue:best-effort'].get('tx', 0)}"],
            ["link scheduler", stats["scheduler"].get("tx", 0),
             f"exp-served={stats['scheduler'].get('served:expedited', 0)}"],
            ["forward sink", stats["sink"]["rx"], ""],
        ]
        report(
            f"F3: Figure-3 composite over a {TRACE}-packet mixed trace",
            ["stage ('Gw CF instance')", "packets", "detail"],
            rows,
        )
        return capsule, composite, pipeline, stats

    capsule, composite, pipeline, stats = once(benchmark, experiment)
    sink_count = stats["sink"]["rx"]
    recognised = stats["recogniser"]["rx"]
    assert recognised == TRACE
    assert stats["recogniser"]["v4"] + stats["recogniser"]["v6"] == TRACE
    # Conservation through the pipeline (queues sized to the trace).
    assert sink_count == TRACE
    # Expedited class got strict priority: its queue fully served.
    assert stats["queue:expedited"].get("tx", 0) == stats["queue:expedited"]["rx"]
    assert capsule.architecture.check_consistency() == []


def test_f3_constraints_and_acl(benchmark):
    def experiment():
        capsule = Capsule("figure3-mgmt")
        composite, _ = build_figure3_composite(capsule)
        controller = composite.controller
        events = []
        # The composite's topology is policed: closing a cycle is vetoed.
        try:
            composite.bind_internal(
                "classifier", "out", "protocol-recogniser", "in0",
                connection_name="loop",
            )
            events.append(["bind classifier->recogniser", "BUG: accepted"])
        except ConstraintViolation as exc:
            events.append(["bind classifier->recogniser", f"vetoed: {exc.reason[:40]}"])
        # Constraint add/remove is policed by the controller's ACL.
        try:
            controller.remove_constraint("acyclic", principal="tenant")
            events.append(["tenant removes acyclic", "BUG: allowed"])
        except AccessDenied:
            events.append(["tenant removes acyclic", "denied by ACL"])
        controller.acl.grant("net-admin", "constraint.*")
        controller.remove_constraint("acyclic", principal="net-admin")
        events.append(["net-admin removes acyclic", "allowed"])
        composite.bind_internal(
            "classifier", "out", "protocol-recogniser", "in0",
            connection_name="loop",
        )
        events.append(["bind classifier->recogniser (no constraint)", "accepted"])
        report(
            "F3b: controller-managed constraints policed by ACL",
            ["management action", "outcome"],
            [list(e) for e in events],
        )
        return events

    events = once(benchmark, experiment)
    assert events[0][1].startswith("vetoed")
    assert events[1][1] == "denied by ACL"
    assert events[-1][1] == "accepted"


def test_f3_pipeline_throughput(benchmark):
    """pytest-benchmark timing of one packet through the whole composite."""
    capsule = Capsule("figure3-speed")
    composite, pipeline = build_figure3_composite(capsule, queue_capacity=10)
    trace = mixed_v4_v6_trace(count=256, seed=42)
    state = {"i": 0}

    def push_and_serve():
        pipeline.push(trace[state["i"] % 256])
        pipeline.service(budget=1)
        state["i"] += 1

    benchmark(push_and_serve)
