"""C1 — the cross-component call-overhead ladder.

Paper claim (section 5): "temporarily bypassing vtables, using partial
evaluation techniques, to reduce the overhead of a cross-component call to
that of a C function call".

Regimes measured, slowest to fastest:
``intercepted`` (vtable + 1 pre-interceptor) > ``vtable`` (indirect
dispatch) > ``fused`` (revocable direct handle) ≈ ``direct`` (plain bound
method — the "C function call" of our substrate).

Shape assertions: fused is within a small factor of direct, and
interception costs more than indirect dispatch.
"""

import pytest

from benchmarks.conftest import report
from repro.opencom import Capsule, Component, Interface, Provided, Required

pytestmark = pytest.mark.bench

CALLS = 20_000


class IWork(Interface):
    def work(self, x):
        ...


class Worker(Component):
    PROVIDES = (Provided("main", IWork),)

    def work(self, x):
        return x + 1


class Caller(Component):
    RECEPTACLES = (Required("target", IWork),)


@pytest.fixture
def wired():
    capsule = Capsule("bench")
    worker = capsule.instantiate(Worker, "worker")
    caller = capsule.instantiate(Caller, "caller")
    capsule.bind(caller.receptacle("target"), worker.interface("main"))
    return capsule, caller, worker


def run_calls(fn):
    total = 0
    for i in range(CALLS):
        total += fn(i)
    return total


def test_c1_direct_call(benchmark, wired):
    _, _, worker = wired
    fn = worker.work
    assert benchmark(run_calls, fn) > 0


def test_c1_fused_call(benchmark, wired):
    _, caller, _ = wired
    port = caller.receptacle("target").port("0")
    port.fuse()
    fn = port.work
    assert benchmark(run_calls, fn) > 0


def test_c1_vtable_call(benchmark, wired):
    _, caller, _ = wired
    fn = caller.receptacle("target").port("0").work  # indirect handle
    assert benchmark(run_calls, fn) > 0


def test_c1_intercepted_call(benchmark, wired):
    _, caller, worker = wired
    worker.interface("main").vtable.add_pre("work", "count", lambda ctx: None)
    fn = caller.receptacle("target").port("0").work
    assert benchmark(run_calls, fn) > 0


def test_c1_overhead_ladder_shape(benchmark):
    """The ordering claim itself, measured in one process."""
    from benchmarks.conftest import once

    once(benchmark, _ladder)


def _ladder():
    import time

    capsule = Capsule("bench")
    worker = capsule.instantiate(Worker, "worker")
    caller = capsule.instantiate(Caller, "caller")
    capsule.bind(caller.receptacle("target"), worker.interface("main"))
    port = caller.receptacle("target").port("0")

    def time_regime(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run_calls(fn)
            best = min(best, time.perf_counter() - start)
        return best

    direct = time_regime(worker.work)
    vtable = time_regime(port.work)
    port.fuse()
    fused = time_regime(port.work)
    port.unfuse()
    worker.interface("main").vtable.add_pre("work", "i", lambda ctx: None)
    intercepted = time_regime(port.work)

    rows = [
        ["direct (plain call)", f"{direct * 1e9 / CALLS:.0f}", "1.00x"],
        ["fused binding", f"{fused * 1e9 / CALLS:.0f}", f"{fused / direct:.2f}x"],
        ["vtable binding", f"{vtable * 1e9 / CALLS:.0f}", f"{vtable / direct:.2f}x"],
        ["intercepted", f"{intercepted * 1e9 / CALLS:.0f}", f"{intercepted / direct:.2f}x"],
    ]
    report("C1: cross-component call overhead", ["regime", "ns/call", "vs direct"], rows)

    # Shape: fusion recovers (nearly) direct-call cost; the ladder orders.
    assert fused <= vtable
    assert fused <= direct * 2.0
    assert vtable < intercepted
