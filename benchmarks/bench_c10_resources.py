"""C10 — the resources meta-model and pluggable schedulers.

Paper (section 2): the resources meta-model "enables fine-grained control
over the resourcing of dynamically-delineable units of work called
'tasks'"; (section 5) composites "can control the resourcing of designated
tasks and map these flexibly to their constituents"; stratum 1 offers
"thread management (offering pluggable schedulers)".

Reproduced: two task classes (control vs data) share one thread manager;
swapping the scheduler plug-in shifts per-task CPU share and completion
latency in the predicted direction, and the resources meta-model accounts
every quantum.
"""

import pytest

from benchmarks.conftest import once, report
from repro.opencom.metamodel.resources import ResourceMetaModel
from repro.osbase import (
    LotteryScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    ThreadManagerCF,
    VirtualClock,
)

pytestmark = pytest.mark.bench

QUANTA = 3_000


def run_workload(scheduler):
    """Two control threads (high priority) + six data threads compete; we
    record per-class work share and control-class completion time."""
    clock = VirtualClock()
    manager = ThreadManagerCF(clock, scheduler=scheduler)
    resources = ResourceMetaModel()
    control_task = resources.create_task("control", priority=8)
    data_task = resources.create_task("data", priority=1)
    completion = {}

    def worker(label, iterations, task_name):
        for _ in range(iterations):
            yield
        completion.setdefault(task_name, clock.now)

    for i in range(2):
        manager.spawn(
            f"control{i}", worker(f"control{i}", 200, "control"),
            priority=8, task=control_task,
        )
    for i in range(6):
        manager.spawn(
            f"data{i}", worker(f"data{i}", 400, "data"),
            priority=1, task=data_task,
        )
    for _ in range(QUANTA):
        if manager.step() is None:
            break
    total = control_task.work_done + data_task.work_done
    return {
        "control_share": control_task.work_done / total,
        "control_done_at": completion.get("control", float("inf")),
        "accounted": total,
    }


def test_c10_scheduler_swap_shifts_task_service(benchmark):
    def experiment():
        results = {
            "round-robin": run_workload(RoundRobinScheduler()),
            "priority": run_workload(PriorityScheduler()),
            "lottery": run_workload(LotteryScheduler(seed=3)),
        }
        rows = [
            [
                name,
                f"{r['control_share']:.2f}",
                f"{r['control_done_at'] * 1e3:.2f} ms",
                int(r["accounted"]),
            ]
            for name, r in results.items()
        ]
        report(
            "C10: task service under pluggable schedulers (2 control + 6 data threads)",
            ["scheduler", "control-class work share", "control done at", "quanta accounted"],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    round_robin = results["round-robin"]
    priority = results["priority"]
    lottery = results["lottery"]
    # Priority finishes control work first and gives it its full demand
    # up front; round robin splits by thread count (2/8 of early service).
    assert priority["control_done_at"] < round_robin["control_done_at"]
    # Lottery sits between round robin and strict priority for the
    # control class's completion.
    assert priority["control_done_at"] <= lottery["control_done_at"]
    assert lottery["control_done_at"] <= round_robin["control_done_at"] * 1.2
    # Every executed quantum was charged to a task.
    for r in results.values():
        assert r["accounted"] > 0


def test_c10_live_scheduler_swap(benchmark):
    """Swap the scheduler mid-run: the service pattern changes without
    touching the threads."""

    def experiment():
        clock = VirtualClock()
        manager = ThreadManagerCF(clock, scheduler=RoundRobinScheduler())
        log = []

        def forever(label):
            while True:
                log.append(label)
                yield

        manager.spawn("hi", forever("hi"), priority=9)
        manager.spawn("lo", forever("lo"), priority=0)
        for _ in range(100):
            manager.step()
        fair_phase = log.count("hi") / len(log)
        manager.set_scheduler(PriorityScheduler())
        log.clear()
        for _ in range(100):
            manager.step()
        strict_phase = log.count("hi") / len(log)
        report(
            "C10b: live scheduler hot swap",
            ["phase", "high-priority share of CPU"],
            [
                ["round-robin", f"{fair_phase:.2f}"],
                ["priority (after swap)", f"{strict_phase:.2f}"],
            ],
        )
        return fair_phase, strict_phase

    fair_phase, strict_phase = once(benchmark, experiment)
    assert 0.4 <= fair_phase <= 0.6
    assert strict_phase == 1.0


def test_c10_resource_pool_accounting(benchmark):
    """Abstract application-defined resources behave like system ones."""

    def experiment():
        model = ResourceMetaModel()
        model.create_pool("flow-slots", "abstract", 100)
        model.create_pool("bandwidth", "bandwidth", 1e9)
        admitted, refused = 0, 0
        for i in range(130):
            task = model.create_task(f"flow{i}")
            try:
                model.allocate(f"flow{i}", "flow-slots", 1)
                model.allocate(f"flow{i}", "bandwidth", 5e6)
                admitted += 1
            except Exception:
                model.destroy_task(f"flow{i}")
                refused += 1
        return admitted, refused, model

    admitted, refused, model = once(benchmark, experiment)
    assert admitted == 100  # flow-slot pool is the binding constraint
    assert refused == 30
    assert model.pool("flow-slots").available == 0
