"""C7 — component placement on the IXP1200 (the placement meta-model).

Paper (section 5): on the IXP "the issue of component placement comes to
the fore ... we think that the CF itself should contain the 'intelligence'
to transparently manage this placement, but with the possibility to
control/override this via a 'placement' meta-model".

Reproduced: the Figure-3 graph placed on 1 StrongARM + 6 micro-engines
under three strategies (everything-on-control, greedy, balanced), the
analytic cost model cross-checked by simulation, and a manual override
demonstrating the control path.
"""

import pytest

from benchmarks.conftest import once, report
from repro.ixp import BoardSimulator, IxpBoard, PlacementMetaModel, StageVisit

pytestmark = pytest.mark.bench

GRAPH = [
    # (name, cost-profile type, fraction of the packet stream)
    ("nic-in", "NicIngress", 1.0),
    ("recogniser", "ProtocolRecognizer", 1.0),
    ("v4", "IPv4HeaderProcessor", 0.7),
    ("v6", "IPv6HeaderProcessor", 0.3),
    ("classifier", "Classifier", 1.0),
    ("q-exp", "FifoQueue", 0.3),
    ("q-be", "FifoQueue", 0.7),
    ("sched", "PriorityLinkScheduler", 1.0),
    ("forwarder", "Forwarder", 1.0),
    ("nic-out", "NicEgress", 1.0),
    ("controller", "Controller", 0.01),
]


def build_placement():
    board = IxpBoard()
    placement = PlacementMetaModel(board)
    for name, ctype, fraction in GRAPH:
        placement.register(name, component_type=ctype, traffic_fraction=fraction)
    return board, placement


def stage_visits():
    return [StageVisit(name, fraction) for name, _, fraction in GRAPH]


def test_c7_strategy_comparison(benchmark):
    def experiment():
        results = {}
        for strategy in ("control", "greedy", "balanced"):
            board, placement = build_placement()
            analytic = placement.auto_place(strategy)
            simulated = BoardSimulator(board, placement).run(
                stage_visits(), packets=20_000
            )
            results[strategy] = (analytic, simulated)
        rows = [
            [
                strategy,
                f"{analytic.throughput_pps / 1e3:.0f}",
                f"{simulated.throughput_pps / 1e3:.0f}",
                analytic.bottleneck,
                f"{analytic.utilisation_spread:.2f}",
            ]
            for strategy, (analytic, simulated) in results.items()
        ]
        report(
            "C7: placement strategies on IXP1200 (1 SA + 6 uE)",
            ["strategy", "analytic kpps", "simulated kpps", "bottleneck", "spread"],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    control = results["control"][0].throughput_pps
    greedy = results["greedy"][0].throughput_pps
    balanced = results["balanced"][0].throughput_pps
    # Shape: spreading over micro-engines beats the all-on-StrongARM
    # pre-port layout by a wide margin; balanced never loses to greedy.
    assert greedy > control * 2
    assert balanced >= greedy * 0.999
    # Analytic and simulated agree per strategy.
    for strategy, (analytic, simulated) in results.items():
        assert simulated.bottleneck == analytic.bottleneck
        assert abs(simulated.throughput_pps - analytic.throughput_pps) < (
            analytic.throughput_pps * 0.05
        )


def test_c7_manual_override(benchmark):
    def experiment():
        board, placement = build_placement()
        auto = placement.auto_place("balanced")
        # The operator overrides: pin the forwarder to a dedicated engine.
        placement.pin("forwarder", "ue5")
        pinned = placement.auto_place("balanced")
        # And migrates the classifier at run time.
        previous = placement.components()["classifier"].pe
        target = "ue4" if previous != "ue4" else "ue3"
        placement.migrate("classifier", target)
        after_migration = placement.evaluate()
        rows = [
            ["auto (balanced)", auto.assignment["forwarder"], f"{auto.throughput_pps / 1e3:.0f}"],
            ["pin forwarder->ue5", pinned.assignment["forwarder"], f"{pinned.throughput_pps / 1e3:.0f}"],
            [f"migrate classifier->{target}", pinned.assignment["forwarder"], f"{after_migration.throughput_pps / 1e3:.0f}"],
        ]
        report(
            "C7b: placement meta-model override path",
            ["action", "forwarder PE", "kpps"],
            rows,
        )
        return placement, pinned

    placement, pinned = once(benchmark, experiment)
    assert pinned.assignment["forwarder"] == "ue5"
    assert len(placement.migrations) == 1
    # Control-plane feasibility still enforced under override.
    assert pinned.assignment["controller"] == "sa0"


def test_c7_control_plane_constraint(benchmark):
    def experiment():
        _, placement = build_placement()
        placement.auto_place("greedy")
        return placement.evaluate()

    placement_report = once(benchmark, experiment)
    assert placement_report.assignment["controller"] == "sa0"
