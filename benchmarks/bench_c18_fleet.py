"""C18 — the multi-capsule fleet: edge steering, admission, failover,
staged rollout.

C15/C16 scaled the datapath *within* one box (worker shards behind an
RSS table, resized live).  C18 lifts the same design one level: a fleet
of capsule nodes — each a complete sharded datapath with its own thread
manager and virtual clock, i.e. a separate machine — behind an ingress
edge that steers flows with two-level consistent hashing (fleet
:class:`~repro.osbase.sharding.HashRing` → capsule, the capsule's RSS
bucket table → shard).  Frames cross real :mod:`repro.netsim` links, so
the fleet inherits serialisation delay and the failure model instead of
assuming a backplane.

Four experiments:

- **capsule sweep** (1 → 2 → 4): aggregate throughput measured in
  *virtual* time — each capsule's clock advances only for its own work,
  so fleet completion time is the slowest member's clock and the scaling
  claim is deterministic (it gates at full strength under ``--smoke``,
  C15-style).  Headline: ≥ 1.6x at 2 capsules, ≥ 2.5x at 4.
- **node-kill failover**: a capsule dies with a live backlog; its hash
  arc moves to the survivors (each flow's home moves at most once — ring
  removal only deletes the dead member's points), its edge reservations
  are torn down immediately and re-admitted toward the new homes, and
  every frame is accounted for: fed == egressed + abandoned-at-kill +
  dead-letter drops, with every pool audit balanced.
- **staged rollout**: a canary upgrade whose v2 image fails to build
  aborts the round and must leave the fleet *byte-identical* — the same
  probe wave egresses the same bytes before and after, every capsule
  still on v1.  The healthy path upgrades the whole fleet capsule by
  capsule (quiesce → drain → swap → health check) and keeps forwarding.
- **paper ordering** on fault-free single-capsule cells: monolithic ≥
  Click-style ≥ CF fused ≥ CF vtable on the wall-clock aggregate, all
  four riding the identical fleet runtime (edge, links, CapsuleNode),
  interleaved best-of with the usual smoke slack.
"""

import time
from collections import defaultdict
from struct import pack, unpack_from

import pytest

from benchmarks.bench_c6_datapath import routes_with_default
from benchmarks.conftest import SMOKE, once, report, scaled
from repro.baselines import (
    ClickRouter,
    monolithic_shard_fleet,
    standard_click_config,
)
from repro.netsim import flow_hash_of
from repro.osbase import (
    Nic,
    RoundRobinScheduler,
    Shard,
    ShardedDatapath,
    ThreadManagerCF,
    VirtualClock,
    carve_shard_pools,
    release_dropped,
    shard_pool_audit,
)
from repro.router import build_capsule_fleet, build_sharded_forwarding_datapath

pytestmark = pytest.mark.bench

SHARDS = 2
BATCH = 32
BUFFER_SIZE = 128
POOL_TOTAL = 512
#: The fleet sizes the sweep compares (scaling is vs the first entry).
CAPSULE_SWEEP = (1, 2, 4)
#: Ring points per capsule: enough to keep arc shares — and with them
#: the slowest member's load share — close to 1/N at every sweep size.
REPLICAS = 256
#: Flow count is NOT scaled under smoke: the ring homes (and so every
#: capsule's load share, which the scaling floors bound) must be the
#: same population in both modes.  This population's busiest-member
#: share is 0.51 at 2 capsules and 0.26 at 4 — the scaling floors below
#: assume roughly that balance.
FLOWS = 128
WAVES = scaled(16, 8)
#: Interleaved best-of repeats for the wall-clock ordering cells.
REPEATS = scaled(3, 5)
#: Virtual-time scaling floors vs one capsule (deterministic — gates at
#: full strength under smoke).
MIN_SPEEDUP = {2: 1.6, 4: 2.5}


def make_waves(routes, *, flows=None, waves=None):
    """Seq-stamped frames as raw wire bytes, one frame per flow per
    wave.  The edge copies each frame onto the wire
    (:meth:`~repro.netsim.wire.WirePacket.ingest`), so one materialised
    trace is reusable across runs and systems."""
    from repro.netsim import make_udp_v4

    bases = [prefix.split("/")[0] for prefix in routes]
    flow_tuples = [
        (f"10.{50 + i // 150}.{i % 150}.4", bases[i % len(bases)], 1500 + 13 * i, 53)
        for i in range(flows if flows is not None else FLOWS)
    ]
    return [
        [
            make_udp_v4(
                src, dst, sport=sport, dport=dport,
                payload=pack("!I", seq) + b"\x00" * 12,
            ).to_bytes()
            for src, dst, sport, dport in flow_tuples
        ]
        for seq in range(waves if waves is not None else WAVES)
    ]


class FleetEgress:
    """TX-handler factory ``(capsule, shard) -> consumer`` recording
    per-capsule counts, per-flow sequence order and (optionally) full
    egress bytes for the rollout's byte-identity probe."""

    def __init__(self, *, capture_bytes=False):
        self.capture_bytes = capture_bytes
        self.total = 0
        self.by_capsule = defaultdict(int)
        self.entries = []
        self.raw = []

    def handler(self, capsule, shard):
        def on_frame(frame):
            self.total += 1
            self.by_capsule[capsule] += 1
            self.entries.append(
                (frame.flow_key(), unpack_from("!I", frame.payload, 0)[0])
            )
            if self.capture_bytes:
                self.raw.append(frame.to_bytes())
            release_dropped(frame)

        return on_frame

    def per_flow(self):
        seqs = defaultdict(list)
        for flow, seq in self.entries:
            seqs[flow].append(seq)
        return seqs


def feed(fleet, waves):
    """The fleet's drive loop: one wave onto the edge, then run links
    and capsule workers to quiescence."""
    fed = 0
    for wave in waves:
        for frame in wave:
            fed += 1 if fleet.ingest(frame) else 0
        fleet.pump()
    fleet.pump()
    return fed


def fleet_virtual_time(fleet):
    """Fleet completion time: the slowest capsule's own clock (capsules
    are separate machines running concurrently)."""
    return max(
        capsule.datapath.threads.clock.now for capsule in fleet.capsules.values()
    )


def shutdown_fleet(fleet):
    for capsule in fleet.capsules.values():
        if capsule.alive:
            capsule.datapath.shutdown()


# -- capsule sweep -----------------------------------------------------------------


def run_sweep_cell(routes, waves, capsules):
    recorder = FleetEgress()
    fleet = build_capsule_fleet(
        capsules,
        routes=routes,
        shards=SHARDS,
        replicas=REPLICAS,
        batch=BATCH,
        tx_handler=recorder.handler,
        # The sweep feeds the whole trace as one burst (below) so the
        # virtual clocks resolve per-frame work, not per-wave quanta —
        # the spoke links and shard rings must hold a full trace in
        # flight.
        max_backlog=4 * FLOWS * WAVES,
        rx_ring_size=FLOWS * WAVES,
    )
    # Burst-feed, then run to quiescence: each capsule's clock advances
    # only while its own workers drain its share, so completion time is
    # proportional to the busiest member's slice count.
    fed = 0
    for wave in waves:
        for frame in wave:
            fed += 1 if fleet.ingest(frame) else 0
    fleet.pump()
    outcome = {
        "capsules": capsules,
        "fed": fed,
        "forwarded": recorder.total,
        "virtual": fleet_virtual_time(fleet),
        "by_capsule": dict(recorder.by_capsule),
        "arc_shares": fleet.ring.arc_shares(),
        "per_flow": recorder.per_flow(),
    }
    shutdown_fleet(fleet)
    return outcome


def test_c18_capsule_sweep(benchmark):
    def experiment():
        routes = routes_with_default()
        waves = make_waves(routes)
        return {n: run_sweep_cell(routes, waves, n) for n in CAPSULE_SWEEP}

    results = once(benchmark, experiment)
    base = results[CAPSULE_SWEEP[0]]
    expected = FLOWS * WAVES
    rows = []
    for n, res in results.items():
        speedup = base["virtual"] / res["virtual"]
        busiest = max(res["by_capsule"].values()) / res["forwarded"]
        rows.append(
            [
                n,
                f"{res['virtual'] * 1e3:.2f}",
                f"{speedup:.2f}x",
                f"{busiest:.2f}",
                res["forwarded"],
            ]
        )
    report(
        f"C18: capsule sweep {'->'.join(str(n) for n in CAPSULE_SWEEP)}, "
        f"{SHARDS} shards/capsule, {FLOWS} flows, {WAVES} waves, "
        f"{REPLICAS} ring points/capsule (virtual time)",
        ["capsules", "virtual ms", "speedup", "busiest share", "forwarded"],
        rows,
    )
    print(f"[bench-meta] capsules={','.join(str(n) for n in CAPSULE_SWEEP)}")
    print(f"[bench-meta] replicas={REPLICAS}")
    print(f"[bench-meta] flows={FLOWS}")
    print(f"[bench-meta] waves={WAVES}")
    for n, res in results.items():
        print(f"[bench-meta] speedup_{n}={base['virtual'] / res['virtual']:.2f}")
        # Zero drops at every fleet size, and per-flow FIFO end-to-end
        # (a flow's frames cross one link to one home capsule in order).
        assert res["fed"] == expected, (n, res["fed"], expected)
        assert res["forwarded"] == expected, (n, res["forwarded"], expected)
        assert len(res["by_capsule"]) == n  # every capsule took traffic
        for flow, observed in res["per_flow"].items():
            assert observed == list(range(WAVES)), (n, flow)
    # The deterministic scaling headline: virtual completion time is the
    # slowest capsule's clock, so speedup is bounded by the busiest
    # member's share of the flow population.
    for n, floor in MIN_SPEEDUP.items():
        speedup = base["virtual"] / results[n]["virtual"]
        assert speedup >= floor, (n, speedup, floor)


# -- node-kill failover -------------------------------------------------------------


def test_c18_node_kill_failover(benchmark):
    def experiment():
        routes = routes_with_default()
        waves = make_waves(routes)
        recorder = FleetEgress()
        fleet = build_capsule_fleet(
            4,
            routes=routes,
            shards=SHARDS,
            replicas=REPLICAS,
            batch=BATCH,
            tx_handler=recorder.handler,
        )
        # Admit every flow at the edge before steering any of its frames.
        probes = {flow_hash_of(frame): frame for frame in waves[0]}
        for frame in probes.values():
            assert fleet.open_flow(frame, 1e3) == "admitted"
        homes_before = {
            flow: fleet.home_of(frame)[0] for flow, frame in probes.items()
        }
        half = len(waves) // 2
        fed = feed(fleet, waves[:half])
        reserved_before = fleet.rsvp["edge"].reserved_bandwidth()
        # Kill the busiest capsule with a live, unpumped backlog on its
        # rings — the abandon path must release every frame it strands.
        # (Run the links so the wave reaches the rings, but do not pump
        # the workers; a frame still in flight toward the dying node
        # when it drops becomes a dead-letter instead.)
        victim = max(recorder.by_capsule, key=recorder.by_capsule.get)
        for frame in waves[half]:
            fleet.ingest(frame)
        fleet.engine.run()
        record = fleet.kill(victim)
        homes_after = {
            flow: fleet.home_of(frame)[0] for flow, frame in probes.items()
        }
        fed += len(waves[half])
        fed += feed(fleet, waves[half + 1 :])
        dead = fleet.dead[victim]
        audits = {
            name: shard_pool_audit([s.pool for s in node.datapath.shards])
            for name, node in {**fleet.capsules, victim: dead}.items()
        }
        outcome = {
            "fed": fed,
            "forwarded": recorder.total,
            "victim": victim,
            "record": record,
            "homes_before": homes_before,
            "homes_after": homes_after,
            "dead_counters": dict(dead.counters),
            "reserved_before": reserved_before,
            "reserved_after": fleet.rsvp["edge"].reserved_bandwidth(),
            "audits": audits,
            "members": fleet.members(),
            "by_capsule": dict(recorder.by_capsule),
        }
        shutdown_fleet(fleet)
        return outcome

    res = once(benchmark, experiment)
    victim = res["victim"]
    moved = [
        flow
        for flow, before in res["homes_before"].items()
        if res["homes_after"][flow] != before
    ]
    report(
        "C18: node-kill failover (4 capsules, busiest killed mid-trace)",
        ["victim", "flows moved", "abandoned", "resv released", "re-admitted"],
        [
            [
                victim,
                f"{len(moved)}/{len(res['homes_before'])}",
                res["record"]["abandoned"],
                res["record"]["reservations_released"],
                len(res["record"]["readmitted"]),
            ]
        ],
    )
    print(f"[bench-meta] kill_victim={victim}")
    print(f"[bench-meta] kill_moved={len(moved)}")
    # Each flow's home moved at most once: exactly the victim's flows
    # re-homed, every survivor's flow stayed put.
    for flow, before in res["homes_before"].items():
        after = res["homes_after"][flow]
        if before == victim:
            assert after != victim, flow
        else:
            assert after == before, flow
    assert victim not in res["members"]
    # The dead capsule's edge reservations were torn down immediately
    # and every orphaned flow re-admitted toward its new home, so the
    # aggregate reservation survives the failover intact.
    assert res["record"]["reservations_released"] == len(moved)
    assert all(v == "admitted" for _, v in res["record"]["readmitted"])
    assert res["reserved_after"] == res["reserved_before"]
    # Frame conservation: everything fed either egressed, was abandoned
    # at the kill (live backlog, honestly dropped and released), or
    # dead-lettered in flight toward the dying node.
    accounted = (
        res["forwarded"]
        + res["record"]["abandoned"]
        + res["dead_counters"]["dead_drops"]
    )
    assert accounted == res["fed"], (accounted, res["fed"])
    assert res["record"]["abandoned"] > 0  # the kill really stranded work
    # Zero pool leaks anywhere — including the dead capsule's slices.
    for name, audit in res["audits"].items():
        assert audit["balanced"], (name, audit)
        for row in audit["pools"]:
            assert row["in_flight"] == 0, (name, row)


# -- staged rollout -----------------------------------------------------------------


def test_c18_staged_rollout(benchmark):
    def experiment():
        routes = routes_with_default()
        probe = make_waves(routes, flows=scaled(32, 16), waves=4)
        recorder = FleetEgress(capture_bytes=True)

        def factory(name, version):
            if version == "v2":
                raise RuntimeError("v2 image fails to build")
            return build_sharded_forwarding_datapath(
                routes=routes,
                shards=SHARDS,
                threads=ThreadManagerCF(
                    VirtualClock(), scheduler=RoundRobinScheduler()
                ),
                batch=BATCH,
                tx_handler=lambda index, _name=name: recorder.handler(_name, index),
                name=f"{name}-dp-{version}",
            )

        fleet = build_capsule_fleet(2, routes=routes, datapath_factory=factory)

        def run_probe():
            recorder.raw.clear()
            feed(fleet, probe)
            return sorted(recorder.raw)

        baseline = run_probe()
        failed = fleet.rollout.run("v2", health_check=lambda name: True)
        versions_after_abort = fleet.versions()
        after_abort = run_probe()
        healthy = fleet.rollout.run("v3", health_check=lambda name: True)
        versions_after_upgrade = fleet.versions()
        after_upgrade = run_probe()
        outcome = {
            "baseline": baseline,
            "failed": failed,
            "after_abort": after_abort,
            "versions_after_abort": versions_after_abort,
            "healthy": healthy,
            "versions_after_upgrade": versions_after_upgrade,
            "after_upgrade": after_upgrade,
        }
        shutdown_fleet(fleet)
        return outcome

    res = once(benchmark, experiment)
    report(
        "C18: staged rollout (canary -> drain -> swap, abort on broken build)",
        ["rollout", "status", "versions", "probe bytes identical"],
        [
            [
                "v2 (broken)",
                res["failed"]["status"],
                ",".join(sorted(set(res["versions_after_abort"].values()))),
                "yes" if res["after_abort"] == res["baseline"] else "NO",
            ],
            [
                "v3 (healthy)",
                res["healthy"]["status"],
                ",".join(sorted(set(res["versions_after_upgrade"].values()))),
                "yes" if res["after_upgrade"] == res["baseline"] else "NO",
            ],
        ],
    )
    print(f"[bench-meta] rollout_failed={res['failed']['status']}")
    print(f"[bench-meta] rollout_healthy={res['healthy']['status']}")
    # The failed canary left the fleet byte-identical: same versions,
    # same probe egress, byte for byte.
    assert res["failed"]["status"] == "aborted"
    assert set(res["versions_after_abort"].values()) == {"v1"}
    assert res["after_abort"] == res["baseline"]
    # The healthy rollout upgraded every capsule and (v3 builds the same
    # pipeline) forwards the identical bytes.
    assert res["healthy"]["status"] == "completed"
    assert set(res["versions_after_upgrade"].values()) == {"v3"}
    assert res["after_upgrade"] == res["baseline"]


# -- paper ordering on fault-free cells ---------------------------------------------


def new_threads():
    return ThreadManagerCF(VirtualClock(), scheduler=RoundRobinScheduler())


def baseline_factory(routes, *, click):
    """A baseline datapath under the identical fleet runtime — C16's
    structural-comparison discipline, one level up."""
    engines = []

    def factory(name, version):
        pools = carve_shard_pools(
            BUFFER_SIZE, POOL_TOTAL, SHARDS, exhaustion_policy="drop-newest"
        )

        def make_shard(index, pool):
            if click:
                engine = ClickRouter(
                    standard_click_config(
                        routes=routes, queue_capacity=4 * BATCH, recycle_sinks=True
                    )
                )
            else:
                engine = monolithic_shard_fleet(routes, 1, queue_capacity=4 * BATCH)[0]
            engines.append(engine)
            return Shard(
                index,
                nic=Nic(rx_ring_size=1024, pool=pool),
                pool=pool,
                push_batch=engine.push_batch,
                flush=lambda e=engine: e.service(budget=BATCH),
                engine=engine,
            )

        return ShardedDatapath(
            [make_shard(index, pools[index]) for index in range(SHARDS)],
            threads=new_threads(),
            hash_fn=flow_hash_of,
            batch=BATCH,
            name=f"{name}-dp-{version}",
        )

    def forwarded():
        if click:
            return sum(
                element.counters.get("rx", 0)
                for router in engines
                for el_name, element in router.elements.items()
                if el_name.startswith("sink-")
            )
        return sum(router.counters["tx"] for router in engines)

    return factory, forwarded


def build_ordering_cell(routes, system):
    if system in ("CF fused", "CF vtable"):
        recorder = FleetEgress()
        fleet = build_capsule_fleet(
            1,
            routes=routes,
            shards=SHARDS,
            batch=BATCH,
            fused=(system == "CF fused"),
            tx_handler=recorder.handler,
        )
        return fleet, lambda: recorder.total
    factory, forwarded = baseline_factory(routes, click=(system == "Click-style"))
    fleet = build_capsule_fleet(1, routes=routes, datapath_factory=factory)
    return fleet, forwarded


def test_c18_paper_ordering(benchmark):
    systems = ("CF vtable", "CF fused", "Click-style", "monolithic")

    def experiment():
        routes = routes_with_default()
        waves = make_waves(routes)

        def run_cell(system):
            fleet, forwarded = build_ordering_cell(routes, system)
            tick = time.perf_counter()
            fed = feed(fleet, waves)
            elapsed = time.perf_counter() - tick
            outcome = {
                "elapsed": elapsed,
                "fed": fed,
                "forwarded": forwarded(),
            }
            shutdown_fleet(fleet)
            return outcome

        results = {}
        for system in systems:
            run_cell(system)  # warm-up: caches, imports, allocator
        for _ in range(REPEATS):
            for system in systems:
                outcome = run_cell(system)
                if system not in results:
                    results[system] = outcome
                else:
                    kept = results[system]
                    assert outcome["forwarded"] == kept["forwarded"], system
                    kept["elapsed"] = min(kept["elapsed"], outcome["elapsed"])
        return results

    results = once(benchmark, experiment)
    expected = FLOWS * WAVES
    rows = [
        [
            system,
            f"{res['forwarded'] / res['elapsed'] / 1e3:.0f}",
            res["forwarded"],
        ]
        for system, res in results.items()
    ]
    report(
        f"C18: paper ordering, single-capsule fault-free cells "
        f"({FLOWS} flows x {WAVES} waves, best of {REPEATS})",
        ["system", "kpps(wall)", "forwarded"],
        rows,
    )
    for system, res in results.items():
        assert res["fed"] == expected, (system, res["fed"])
        assert res["forwarded"] == expected, (system, res["forwarded"])

    def pps(system):
        return results[system]["forwarded"] / results[system]["elapsed"]

    # The shared fleet runtime (edge, link simulation, CapsuleNode) adds
    # an identical per-frame cost to all four systems, compressing the
    # gaps C6/C11 measured bare — the ordering survives, so the slack
    # stays at C16's levels: 0.9 full, 0.75 under smoke's tiny trace.
    slack = 0.75 if SMOKE else 0.9
    assert pps("monolithic") >= pps("Click-style") * slack
    assert pps("Click-style") >= pps("CF fused") * slack
    assert pps("CF fused") >= pps("CF vtable") * slack
