"""C16 — elastic sharding under live reconfiguration.

C15 fixed the worker fleet at build time; this experiment makes the
fleet size a *runtime* variable.  A diurnal load trace scales the fleet
2 → 4 → 8 → 4 → 2 through :meth:`ShardedDatapath.resize` — each resize
a full two-phase round (park every bucket, drain every ring through its
own engine, prove the exact acquired == released pool hand-off, re-carve
the slices via :func:`~repro.osbase.buffers.recarve_shard_pools`, swap
the RSS indirection table, flush the parked frames through it) — while
traffic keeps flowing.  Every resize is issued with a live backlog on
the rings, so drain-before-rehash is actually exercised, and one round
is deliberately aborted mid-run to prove rollback leaves no trace.

All four systems (CF vtable, CF fused, Click-style fleet, monolithic
fleet) ride the identical elastic runtime — steering table, park/drain
machinery, re-carve, shard factories — so the comparison stays
structural, C15-style.  Shards are placed onto modelled IXP1200
micro-engines via :class:`~repro.ixp.placement.ShardPlacement`, whose
NUMA-style locality penalty scales the supervisor's steal watermark for
cross-cluster steals.

Deterministic headline criteria (event counts, so they gate ``--smoke``
/ tier-1 at full strength):

- **zero drops across the whole diurnal trace**: every frame fed is
  egressed, through grows, shrinks and the aborted round;
- **per-flow FIFO end-to-end**: each flow's payload sequence numbers
  egress in order even as resizes re-home its bucket;
- **books balance across every re-carve**: each resize's pool hand-off
  audit shows acquired == released and nothing in flight on every
  slice, and the final fleet's audit balances.

The paper's C6 ordering (monolithic ≥ Click ≥ CF fused ≥ CF vtable) is
asserted on the wall-clock *forwarding* aggregate over the whole trace,
interleaved best-of with the usual 0.9 slack; resize rounds are timed
separately (a resize builds — and on the fused path, fuses — the grown
shards' engines, a structural one-off cost that would otherwise be
charged against fusion's per-packet win).  A second scenario drives the same
resize as a *distributed* two-phase round over a real signaling topology
(:func:`~repro.coordination.reconfig.register_shard_resize`), committed
and aborted variants both.
"""

import time
from collections import defaultdict
from struct import pack, unpack_from

import pytest

from benchmarks.bench_c6_datapath import routes_with_default
from benchmarks.conftest import SMOKE, once, report, scaled
from repro.baselines import (
    ClickRouter,
    monolithic_shard_fleet,
    standard_click_config,
)
from repro.coordination import (
    ActionSet,
    ReconfigCoordinator,
    ReconfigParticipant,
    attach_agents,
    register_shard_resize,
)
from repro.ixp import IxpBoard, ShardPlacement
from repro.netsim import Topology, flow_hash_of, make_udp_v4
from repro.osbase import (
    Nic,
    RoundRobinScheduler,
    Shard,
    ShardedDatapath,
    ThreadManagerCF,
    VirtualClock,
    carve_shard_pools,
    release_dropped,
    shard_pool_audit,
)
from repro.router import build_sharded_forwarding_datapath

pytestmark = pytest.mark.bench

BATCH = 32
BUCKETS = 32
#: The diurnal fleet-size trace: ramp up to the peak, back down.
PHASE_TARGETS = (2, 4, 8, 4, 2)
#: Smoke keeps a timed region big enough that the ~1–2% fused/vtable
#: gap isn't swamped by scheduler noise (the C15 lesson: the ordering
#: assertion needs thousands of timed frames, not hundreds).
FLOWS = scaled(64, 32)
#: Traffic waves (one seq-stamped frame per flow) fed per phase.
WAVES = scaled(24, 12)
#: Interleaved best-of repeats; smoke takes two extra (its per-run
#: timed region is smaller, and best-of converges with repeats).
REPEATS = scaled(3, 5)
BUFFER_SIZE = 128
#: One fixed budget re-carved across every fleet size.
POOL_TOTAL = 2048
RX_RING = 4096


def make_waves(routes):
    """The whole diurnal trace as a list of waves: one frame per flow,
    payload-stamped with the flow's running sequence number.  Waves are
    consumed in order by every system and repeat, so per-flow FIFO has
    one global expectation."""
    bases = [prefix.split("/")[0] for prefix in routes]
    flows = [
        (f"10.{40 + i // 200}.{i % 200}.9", bases[i % len(bases)], 1024 + 7 * i, 53)
        for i in range(FLOWS)
    ]
    # Per phase: one wave steered into a live backlog ahead of the
    # resize, plus WAVES pumped waves; one extra wave parks during the
    # aborted round.
    total = len(PHASE_TARGETS) * WAVES + (len(PHASE_TARGETS) - 1) + 1
    waves = []
    for seq in range(total):
        waves.append(
            [
                make_udp_v4(
                    src, dst, sport=sport, dport=dport,
                    payload=pack("!I", seq) + b"\x00" * 12,
                ).to_bytes()
                for src, dst, sport, dport in flows
            ]
        )
    return waves


class OrderedEgress:
    """One global (flow, seq) log — a flow may legitimately change home
    shard across resizes, so ordering is checked per flow over the whole
    egress stream, not per shard."""

    def __init__(self):
        self.entries = []
        self.total = 0

    def handler(self, shard_index):
        def on_frame(frame):
            self.entries.append(
                (frame.flow_key(), unpack_from("!I", frame.payload, 0)[0])
            )
            self.total += 1
            release_dropped(frame)

        return on_frame

    def per_flow(self):
        seqs = defaultdict(list)
        for flow, seq in self.entries:
            seqs[flow].append(seq)
        return seqs


def new_threads():
    return ThreadManagerCF(VirtualClock(), scheduler=RoundRobinScheduler())


def new_placement():
    return ShardPlacement(IxpBoard(), max_shards=max(PHASE_TARGETS))


def build_cf(routes, *, fused):
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, PHASE_TARGETS[0], exhaustion_policy="drop-newest"
    )
    recorder = OrderedEgress()
    datapath = build_sharded_forwarding_datapath(
        routes=routes,
        shards=PHASE_TARGETS[0],
        threads=new_threads(),
        pools=pools,
        batch=BATCH,
        rx_ring_size=RX_RING,
        fused=fused,
        tx_handler=recorder.handler,
        buckets=BUCKETS,
        locality=new_placement().locality_penalty,
    )
    return datapath, recorder, lambda: recorder.total


def build_baseline(routes, *, click):
    """A baseline fleet under the identical elastic runtime: the shard
    factory mints a fresh single-member fleet engine per grown shard."""
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, PHASE_TARGETS[0], exhaustion_policy="drop-newest"
    )
    engines = []

    def new_engine():
        if click:
            engine = ClickRouter(
                standard_click_config(
                    routes=routes, queue_capacity=4 * BATCH, recycle_sinks=True
                )
            )
        else:
            engine = monolithic_shard_fleet(routes, 1, queue_capacity=4 * BATCH)[0]
        engines.append(engine)
        return engine

    def make_shard(index, pool):
        engine = new_engine()
        return Shard(
            index,
            nic=Nic(rx_ring_size=RX_RING, pool=pool),
            pool=pool,
            push_batch=engine.push_batch,
            flush=lambda e=engine: e.service(budget=BATCH),
            engine=engine,
        )

    built = [make_shard(index, pools[index]) for index in range(PHASE_TARGETS[0])]
    datapath = ShardedDatapath(
        built,
        threads=new_threads(),
        hash_fn=flow_hash_of,
        batch=BATCH,
        buckets=BUCKETS,
        shard_factory=make_shard,
        locality=new_placement().locality_penalty,
    )

    def forwarded():
        if click:
            return sum(
                element.counters.get("rx", 0)
                for router in engines
                for name, element in router.elements.items()
                if name.startswith("sink-")
            )
        return sum(router.counters["tx"] for router in engines)

    return datapath, None, forwarded


def run_diurnal(builder):
    """Feed the diurnal trace through one freshly built system: resize
    into a live backlog at each phase boundary, abort one round at the
    peak, keep every hand-off audit."""
    datapath, recorder, forwarded = builder()
    waves = iter(run_diurnal.waves)
    fed = 0
    records = []
    aborted_rounds = 0
    # Forwarding and reconfiguration are timed separately: the paper
    # ordering is a *forwarding-throughput* claim, while a resize's cost
    # includes building (and for the CF path, fusing) the grown shards'
    # engines — a one-off structural cost reported in its own column.
    forward_s = 0.0
    resize_s = 0.0
    for phase, target in enumerate(PHASE_TARGETS):
        if target != len(datapath.shards):
            # Resize with frames still ringed: apply must drain every
            # ring through its own engine before the table swap.
            fed += datapath.steer_batch(next(waves))
            tick = time.perf_counter()
            records.append(datapath.resize(target))
            resize_s += time.perf_counter() - tick
        if target == max(PHASE_TARGETS) and not aborted_rounds:
            # One aborted round at the peak: quiesce, park a wave, roll
            # back — the trace must come through untouched.
            actions = datapath.resize_action_set()
            assert actions["quiesce"]({"shards": 3})
            fed += datapath.steer_batch(next(waves))
            actions["rollback"]({"shards": 3})
            actions["resume"]({"shards": 3})
            aborted_rounds += 1
        tick = time.perf_counter()
        for _ in range(WAVES):
            fed += datapath.steer_batch(next(waves))
            datapath.pump()
        datapath.pump()
        forward_s += time.perf_counter() - tick
    elapsed = forward_s
    stats = datapath.stats()
    audit = shard_pool_audit([shard.pool for shard in datapath.shards])
    outcome = {
        "elapsed": elapsed,
        "resize_s": resize_s,
        "virtual_elapsed": stats["virtual_time"],
        "fed": fed,
        "forwarded": forwarded(),
        "records": records,
        "aborted_rounds": aborted_rounds,
        "audit": audit,
        "steer_refused": sum(datapath.steering.refused),
        "drained_total": sum(r["drained_total"] for r in records),
        "moved_buckets": sum(r["moved_buckets"] for r in records),
        "local_steals": stats["local_steals"],
        "remote_steals": stats["remote_steals"],
        "locality_vetoes": stats["locality_vetoes"],
        "recorder": recorder,
    }
    datapath.shutdown()
    return outcome


def sweep(routes):
    runners = {
        "CF vtable": lambda: run_diurnal(lambda: build_cf(routes, fused=False)),
        "CF fused": lambda: run_diurnal(lambda: build_cf(routes, fused=True)),
        "Click-style": lambda: run_diurnal(lambda: build_baseline(routes, click=True)),
        "monolithic": lambda: run_diurnal(lambda: build_baseline(routes, click=False)),
    }
    results: dict[str, dict] = {}
    for runner in runners.values():
        runner()  # warm-up pass: caches, imports, allocator — untimed
    for _ in range(REPEATS):
        for name, runner in runners.items():
            outcome = runner()
            if name not in results:
                results[name] = outcome
            else:
                kept = results[name]
                assert outcome["forwarded"] == kept["forwarded"], name
                assert outcome["moved_buckets"] == kept["moved_buckets"], name
                assert outcome["virtual_elapsed"] == pytest.approx(
                    kept["virtual_elapsed"]
                ), name
                kept["elapsed"] = min(kept["elapsed"], outcome["elapsed"])
                kept["resize_s"] = min(kept["resize_s"], outcome["resize_s"])
    return results


def test_c16_elastic_diurnal(benchmark):
    def experiment():
        routes = routes_with_default()
        run_diurnal.waves = make_waves(routes)
        results = sweep(routes)
        rows = []
        for name, res in results.items():
            rows.append(
                [
                    name,
                    f"{res['forwarded'] / res['elapsed'] / 1e3:.0f}",
                    f"{res['resize_s'] * 1e3:.1f}",
                    len(res["records"]),
                    res["moved_buckets"],
                    res["drained_total"],
                    "yes" if all(
                        r["pool_handoff"]["balanced"] for r in res["records"]
                    ) else "NO",
                    res["locality_vetoes"],
                    res["forwarded"],
                ]
            )
        report(
            f"C16: elastic diurnal {'->'.join(str(t) for t in PHASE_TARGETS)}, "
            f"{BUCKETS} buckets, {FLOWS} flows, {WAVES} waves/phase, "
            f"{POOL_TOTAL}-buffer budget re-carved per resize",
            [
                "system",
                "kpps(wall)",
                "resize ms",
                "resizes",
                "moved",
                "drained",
                "handoffs balanced",
                "loc vetoes",
                "forwarded",
            ],
            rows,
        )
        print(f"[bench-meta] phases={'-'.join(str(t) for t in PHASE_TARGETS)}")
        print(f"[bench-meta] buckets={BUCKETS}")
        print(f"[bench-meta] flows={FLOWS}")
        print(f"[bench-meta] waves={WAVES}")
        return results

    results = once(benchmark, experiment)
    total_waves = len(PHASE_TARGETS) * WAVES + (len(PHASE_TARGETS) - 1) + 1
    expected = total_waves * FLOWS
    for name, res in results.items():
        # Zero drops across grows, shrinks and the aborted round.
        assert res["fed"] == expected, (name, res["fed"], expected)
        assert res["forwarded"] == expected, (name, res["forwarded"], expected)
        assert res["steer_refused"] == 0, name
        # Four resizes committed, one round aborted, and every resize
        # drained a live backlog before rehashing.
        assert len(res["records"]) == len(PHASE_TARGETS) - 1, name
        assert res["aborted_rounds"] == 1, name
        assert all(r["drained_total"] > 0 for r in res["records"]), name
        # Books balance across every re-carve and at the end.
        for record in res["records"]:
            handoff = record["pool_handoff"]
            assert handoff["balanced"], (name, handoff)
            for row in handoff["pools"]:
                assert row["acquired_total"] == row["released_total"], (name, row)
                assert row["in_flight"] == 0, (name, row)
        assert res["audit"]["balanced"], (name, res["audit"])
        # Per-flow FIFO end-to-end on the recorded (CF) paths.
        recorder = res.get("recorder")
        if recorder is not None:
            seqs = recorder.per_flow()
            assert len(seqs) == FLOWS, name
            for flow, observed in seqs.items():
                assert observed == list(range(total_waves)), (name, flow)

    # Paper ordering on the wall-clock forwarding aggregate over the
    # whole live trace.
    def pps(name):
        return results[name]["forwarded"] / results[name]["elapsed"]

    assert pps("monolithic") >= pps("Click-style") * 0.9
    assert pps("Click-style") >= pps("CF fused") * 0.9
    # The fused/vtable pair: C11/C12 established fusion's win is only
    # ~1–2% once batching amortises dispatch, and C15 already found the
    # pair "sits within wall-clock noise" behind the shared sharded
    # runtime.  C15's smoke gate widens its timed region by aggregating
    # across shard counts; this trace has a single cell (~tens of
    # milliseconds of forwarding under smoke), so the pair instead keeps
    # the full 0.9 slack on the full run and takes a wider 0.75 slack
    # under smoke — loose enough for single-cell scheduler noise, tight
    # enough that a gross fusion regression (e.g. constant revocation)
    # still fails the gate.
    assert pps("CF fused") >= pps("CF vtable") * (0.75 if SMOKE else 0.9)


def test_c16_distributed_resize_round(benchmark):
    """The same resize as a distributed two-phase round over a real
    signaling topology: coordinator on n0, the datapath's participant on
    n1, a peer on n2.  One committed grow, then an aborted round (the
    peer refuses), then traffic to prove the fleet state."""

    def experiment():
        routes = routes_with_default()
        waves = make_waves(routes)
        datapath, recorder, _ = build_cf(routes, fused=True)

        topo = Topology.chain(3)
        agents = attach_agents(topo)
        coordinator = ReconfigCoordinator(agents["n0"])
        participant = ReconfigParticipant(agents["n1"])
        register_shard_resize(participant, datapath)
        peer_votes = {"yes": True}
        peer = ReconfigParticipant(agents["n2"])
        peer.register(
            "shard-resize",
            ActionSet(
                quiesce=lambda params: peer_votes["yes"],
                apply=lambda params: None,
                resume=lambda params: None,
                rollback=lambda params: None,
            ),
        )

        start = time.perf_counter()
        fed = datapath.steer_batch(waves[0])
        committed = coordinator.start(
            "shard-resize", ["n1", "n2"], {"shards": 4}, deadline=2.0
        )
        topo.engine.run()
        datapath.pump()

        peer_votes["yes"] = False  # the peer refuses the next round
        fed += datapath.steer_batch(waves[1])
        aborted = coordinator.start(
            "shard-resize", ["n1", "n2"], {"shards": 8}, deadline=2.0
        )
        topo.engine.run()
        datapath.pump()
        for wave in waves[2:6]:
            fed += datapath.steer_batch(wave)
            datapath.pump()
        elapsed = time.perf_counter() - start
        outcome = {
            "elapsed": elapsed,
            "fed": fed,
            "committed": committed,
            "aborted": aborted,
            "datapath": datapath,
            "recorder": recorder,
            "audit": shard_pool_audit([s.pool for s in datapath.shards]),
        }
        datapath.shutdown()
        return outcome

    outcome = once(benchmark, experiment)
    datapath = outcome["datapath"]
    # The committed round grew the fleet; the refused round left it
    # alone and unparked the frames that arrived while quiesced.
    assert outcome["committed"].status == "committed"
    assert outcome["aborted"].status == "aborted"
    assert len(datapath.shards) == 4
    assert len(datapath.resizes) == 1
    assert datapath.resizes[0]["to"] == 4
    assert datapath.stats()["resize_pending"] is False
    # Nothing lost either side of the aborted round.
    assert outcome["recorder"].total == outcome["fed"]
    assert outcome["audit"]["balanced"]
    seqs = outcome["recorder"].per_flow()
    for flow, observed in seqs.items():
        assert observed == sorted(observed), flow
    print(f"[bench-meta] committed_round={outcome['committed'].round_id}")
    print(f"[bench-meta] aborted_round={outcome['aborted'].round_id}")
    print(f"[bench-meta] fleet={len(datapath.shards)}")
