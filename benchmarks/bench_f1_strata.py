"""F1 — Figure 1: the four-strata stratification, assembled and inventoried.

Figure 1 stratifies programmable networking software into hardware
abstraction (1), in-band functions (2), application services (3) and
coordination (4).  This experiment assembles a node carrying OpenCOM CFs
in every stratum — the paper's "vertically integrated" claim — and
regenerates the stratification as an inventory table, verifying the
uniformity property: every entry is the same kind of thing (an OpenCOM
component in one capsule, introspectable through the same meta-models).
"""

import pytest

from benchmarks.conftest import once, report
from repro.appservices import CodeAdmission, ExecutionEnvironment
from repro.coordination import attach_agents, deploy_rsvp
from repro.netsim import Topology
from repro.osbase import (
    BufferManagementCF,
    BufferPool,
    Nic,
    RoundRobinScheduler,
    ThreadManagerCF,
    VirtualClock,
)
from repro.router import build_figure3_composite

pytestmark = pytest.mark.bench

STRATUM_OF_TYPE = {
    # stratum 1
    "Nic": 1,
    "BufferManagementCF": 1,
    "BufferPool": 1,
    "ThreadManagerCF": 1,
    "RoundRobinScheduler": 1,
    # stratum 2
    "RouterCF": 2,
    "CompositeComponent": 2,
    "Controller": 2,
    "ProtocolRecognizer": 2,
    "IPv4HeaderProcessor": 2,
    "IPv6HeaderProcessor": 2,
    "Classifier": 2,
    "FifoQueue": 2,
    "PriorityLinkScheduler": 2,
    "CollectorSink": 2,
    # stratum 3
    "ExecutionEnvironment": 3,
}


def build_full_node():
    topo = Topology.chain(3, latency_s=0.001)
    node = topo.node("n1")
    capsule = node.capsule
    clock = VirtualClock()
    buffers = capsule.instantiate(BufferManagementCF, "buffer-cf")
    buffers.add_pool(capsule.instantiate(lambda: BufferPool(2048, 32), "pool"))
    capsule.adopt(ThreadManagerCF(clock, scheduler=RoundRobinScheduler()), "thread-cf")
    build_figure3_composite(capsule, name="gw")
    admission = CodeAdmission()
    capsule.instantiate(lambda: ExecutionEnvironment(node.name, admission), "ee")
    agents = attach_agents(topo)
    rsvp = deploy_rsvp(topo, agents)
    return topo, node, rsvp


def test_f1_vertical_integration_inventory(benchmark):
    def experiment():
        topo, node, rsvp = build_full_node()
        by_stratum: dict[int, list[str]] = {1: [], 2: [], 3: [], 4: []}
        for name, component in sorted(node.capsule.components().items()):
            stratum = STRATUM_OF_TYPE.get(type(component).__name__)
            if stratum is not None:
                by_stratum[stratum].append(name)
        # Stratum 4 presence is a protocol handler + agent, still hosted
        # in the same capsule's world.
        by_stratum[4] = [f"signaling (proto 253)", "rsvp-agent"]
        rows = [
            [
                f"{stratum}: " + label,
                len(members),
                ", ".join(members[:4]) + ("..." if len(members) > 4 else ""),
            ]
            for stratum, label, members in [
                (4, "coordination", by_stratum[4]),
                (3, "application services", by_stratum[3]),
                (2, "in-band functions", by_stratum[2]),
                (1, "hardware abstraction", by_stratum[1]),
            ]
        ]
        report(
            "F1: software stratification of one programmable node",
            ["stratum", "components", "examples"],
            rows,
        )
        return topo, node, by_stratum

    topo, node, by_stratum = once(benchmark, experiment)
    # Every stratum is populated on one node.
    assert all(by_stratum[s] for s in (1, 2, 3, 4))
    # Uniformity: everything (strata 1-3) is introspectable the same way.
    view = node.capsule.architecture.snapshot()
    for stratum in (1, 2, 3):
        for name in by_stratum[stratum]:
            assert name in view.nodes
            assert "interfaces" in view.nodes[name]
    # And the node as a whole is analysable as a single composite.
    assert node.capsule.architecture.check_consistency() == []


def test_f1_uniform_metamodel_access(benchmark):
    def experiment():
        _, node, _ = build_full_node()
        described = []
        from repro.opencom import describe_component

        for component in node.capsule:
            info = describe_component(component)
            assert info["name"]
            assert isinstance(info["interfaces"], list)
            described.append(info)
        return described

    described = once(benchmark, experiment)
    assert len(described) > 10
