"""C12 — batch-aware pull side: amortising the queue→scheduler crossing.

PR 1 batched the *push* half of the in-band datapath (C11: batch
granularity, not call fusion, is the dispatch lever), but every pull
provider still moved one packet per ``pull()``, so a drain re-paid
per-packet dispatch at the queue→scheduler→egress crossing.  This
experiment measures what end-to-end pull batching buys: the scheduler
draws whole runs through the queues' ``pull_batch`` handles and hands
each service round downstream as one ``push_batch``.

All four systems drain the *same* pre-loaded two-class backlog through
the same work (strict-priority dequeue → stride-8 LPM lookup → per-hop
sink); queues are filled untimed, so only the pull side is measured.

Shape asserted:

- batched drain (pull_batch-32) beats the seed-style scalar pull loop on
  the component router (the headline claim of this refactor);
- the paper's ordering survives pull batching:
  monolithic >= Click-style >= Router CF (fused) >= Router CF (vtable).

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the trace and asserts the
ordering only.
"""

import gc
import time

import pytest

from benchmarks.bench_c6_datapath import HOPS, PACKETS, routes_with_default
from benchmarks.conftest import SMOKE, make_route_trace, once, report
from repro.baselines import ClickRouter, MonolithicRouter, standard_click_config
from repro.opencom import Capsule, fuse_pipeline
from repro.router import (
    CollectorSink,
    FifoQueue,
    Forwarder,
    PriorityLinkScheduler,
)

pytestmark = pytest.mark.bench

BATCH_SIZES = (1, 8, 32, 128)
HEADLINE_BATCH = 32
CLASSES = ("expedited", "best-effort")
#: Interleaved repeats, best elapsed wins (same rationale as C11).
REPEATS = 3


def _build_cf_pull(routes, *, fused):
    """Queues → priority scheduler → forwarder → per-hop sinks."""
    capsule = Capsule("dut")
    queues = {}
    scheduler = capsule.instantiate(
        lambda: PriorityLinkScheduler(list(CLASSES)), "sched"
    )
    for klass in CLASSES:
        queue = capsule.instantiate(lambda: FifoQueue(PACKETS + 1), f"q-{klass}")
        capsule.bind(
            scheduler.receptacle("inputs"), queue.interface("pull0"),
            connection_name=klass,
        )
        queues[klass] = queue
    forwarder = capsule.instantiate(Forwarder, "fwd")
    forwarder.load_routes(routes)
    capsule.bind(scheduler.receptacle("out"), forwarder.interface("in0"))
    sinks = {}
    for hop in sorted(set(routes.values())):
        sink = capsule.instantiate(CollectorSink, f"sink-{hop}")
        capsule.bind(
            forwarder.receptacle("out"), sink.interface("in0"), connection_name=hop
        )
        sinks[hop] = sink
    if fused:
        fuse_pipeline(list(capsule.components().values()))
    return scheduler, queues, sinks


def _preload_cf(queues, trace):
    # No class filters: everything is best-effort, matching the Click and
    # monolithic configurations below (the expedited queue stays empty,
    # exercising the explicit empty-input skip every round).
    queues["best-effort"].push_batch(list(trace))


def run_cf_scalar_pull(routes, trace, *, fused):
    """The seed pull side: one vtable pull + one push per packet."""
    scheduler, queues, sinks = _build_cf_pull(routes, fused=fused)
    _preload_cf(queues, trace)
    vtable = scheduler.interface("pull0").vtable
    out_port = scheduler.receptacle("out").connections()[0]
    start = time.perf_counter()
    while True:
        packet = vtable.invoke("pull")
        if packet is None:
            break
        out_port.push(packet)
    elapsed = time.perf_counter() - start
    return elapsed, sum(s.collected_count() for s in sinks.values())


def run_cf_batch_drain(routes, trace, *, batch_size, fused):
    """The batched pull side: service rounds of *batch_size*."""
    scheduler, queues, sinks = _build_cf_pull(routes, fused=fused)
    _preload_cf(queues, trace)
    start = time.perf_counter()
    while scheduler.service(budget=batch_size):
        pass
    elapsed = time.perf_counter() - start
    return elapsed, sum(s.collected_count() for s in sinks.values())


def run_monolithic_drain(routes, trace, *, batch_size):
    router = MonolithicRouter(routes, queue_capacity=PACKETS + 1)
    router.push_batch(list(trace))
    start = time.perf_counter()
    while router.service(budget=batch_size):
        pass
    elapsed = time.perf_counter() - start
    return elapsed, router.counters["tx"]


def run_click_drain(routes, trace, *, batch_size):
    router = ClickRouter(
        standard_click_config(routes=routes, queue_capacity=PACKETS + 1)
    )
    router.push_batch(list(trace))
    start = time.perf_counter()
    while router.service(budget=batch_size):
        pass
    elapsed = time.perf_counter() - start
    delivered = sum(
        element.counters.get("rx", 0)
        for name, element in router.elements.items()
        if name.startswith("sink-")
    )
    return elapsed, delivered


def sweep(runners, routes):
    """Interleaved best-of-REPEATS per runner (see C11)."""
    best: dict[str, float] = {}
    delivered: dict[str, int] = {}
    for _ in range(REPEATS):
        for name, runner in runners.items():
            gc.collect()
            elapsed, got = runner(routes, make_route_trace(routes, PACKETS))
            if name in delivered:
                assert got == delivered[name], name
            delivered[name] = got
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    return {name: (PACKETS / best[name], delivered[name]) for name in runners}


def test_c12_pull_batching_throughput(benchmark):
    def experiment():
        routes = routes_with_default()
        runners = {
            "CF vtable, scalar pull": lambda r, t: run_cf_scalar_pull(
                r, t, fused=False
            ),
            "CF fused, scalar pull": lambda r, t: run_cf_scalar_pull(
                r, t, fused=True
            ),
            **{
                f"CF fused, pull_batch-{size}": (
                    lambda r, t, s=size: run_cf_batch_drain(
                        r, t, batch_size=s, fused=True
                    )
                )
                for size in BATCH_SIZES
            },
            f"CF vtable, pull_batch-{HEADLINE_BATCH}": lambda r, t: run_cf_batch_drain(
                r, t, batch_size=HEADLINE_BATCH, fused=False
            ),
            f"monolithic, drain-{HEADLINE_BATCH}": lambda r, t: run_monolithic_drain(
                r, t, batch_size=HEADLINE_BATCH
            ),
            f"Click-style, drain-{HEADLINE_BATCH}": lambda r, t: run_click_drain(
                r, t, batch_size=HEADLINE_BATCH
            ),
        }
        results = sweep(runners, routes)

        base = results["CF vtable, scalar pull"][0]
        rows = [
            [name, f"{pps / 1e3:.0f}", f"{pps / base:.2f}x", delivered]
            for name, (pps, delivered) in results.items()
        ]
        report(
            "C12: batched pull-side drain, 1k-route IPv4 backlog "
            f"({PACKETS} packets)",
            ["system", "kpps", "vs scalar-pull vtable", "delivered"],
            rows,
        )
        return {name: pps for name, (pps, _) in results.items()}, results

    throughput, results = once(benchmark, experiment)
    for name, (_, delivered) in results.items():
        assert delivered == PACKETS, name

    mono = throughput[f"monolithic, drain-{HEADLINE_BATCH}"]
    click = throughput[f"Click-style, drain-{HEADLINE_BATCH}"]
    fused = throughput[f"CF fused, pull_batch-{HEADLINE_BATCH}"]
    vtable = throughput[f"CF vtable, pull_batch-{HEADLINE_BATCH}"]

    # Paper ordering preserved on the pull side (same slack style as C6).
    assert mono >= click * 0.9
    assert click >= fused * 0.9
    # Same 0.9 slack as the other pairs: the fused/vtable gap is ~1-2%
    # once batching amortises dispatch, inside back-to-back wall-clock noise.
    assert fused >= vtable * 0.9

    if not SMOKE:
        # Headline: the batched drain beats the seed scalar pull loop.
        assert vtable >= 1.3 * throughput["CF vtable, scalar pull"]
        assert fused >= 1.3 * throughput["CF fused, scalar pull"]
        # Bigger service rounds don't hurt (gross-regression slack).
        assert (
            throughput["CF fused, pull_batch-128"]
            >= throughput["CF fused, pull_batch-8"] * 0.7
        )


def test_c12_fused_drain_round(benchmark):
    """pytest-benchmark timing for one fused pull_batch-32 service round
    (the backlog is refilled untimed whenever it runs dry)."""
    routes = routes_with_default()
    scheduler, queues, _ = _build_cf_pull(routes, fused=True)
    trace = make_route_trace(routes, PACKETS)
    _preload_cf(queues, trace)

    def one_round():
        if scheduler.service(budget=HEADLINE_BATCH) < HEADLINE_BATCH:
            _preload_cf(queues, make_route_trace(routes, PACKETS))

    benchmark(one_round)
