"""Run every benchmark file and record a perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--out BENCH_results.json]

Each ``bench_*.py`` is executed as its own pytest session (isolation: one
benchmark's interpreter state cannot skew another's timings).  The result
file maps benchmark name to status, wall-clock duration and the captured
report tables, so future PRs can diff throughput numbers against this one.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def run_one(bench: Path) -> dict:
    """Run one benchmark file under pytest; capture tables and status."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(bench), "-q", "-s", "--no-header"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    duration = time.perf_counter() - start
    # Keep only the experiment tables ("=== title ===" blocks) — the rest
    # of the pytest output is noise for a trajectory file.
    tables: list[str] = []
    keep = False
    for line in proc.stdout.splitlines():
        if line.startswith("=== ") and line.rstrip().endswith("==="):
            keep = True
        elif keep and (not line.strip() or line.startswith("---- ") or line[:1] == "="):
            keep = line.startswith("=== ")
        if keep:
            tables.append(line)
    return {
        "status": "passed" if proc.returncode == 0 else "failed",
        "returncode": proc.returncode,
        "duration_s": round(duration, 3),
        "tables": "\n".join(tables),
        "tail": "" if proc.returncode == 0 else "\n".join(proc.stdout.splitlines()[-25:]),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_results.json"),
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="substring filter on benchmark file names (e.g. 'c11')",
    )
    args = parser.parse_args(argv)

    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if args.only:
        benches = [b for b in benches if args.only in b.name]
    results: dict[str, dict] = {}
    failed = 0
    for bench in benches:
        print(f"[run_all] {bench.name} ...", flush=True)
        outcome = run_one(bench)
        results[bench.stem] = outcome
        if outcome["status"] != "passed":
            failed += 1
        print(
            f"[run_all]   {outcome['status']} in {outcome['duration_s']}s",
            flush=True,
        )

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "benchmarks": results,
        "summary": {"total": len(results), "failed": failed},
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[run_all] wrote {out_path} ({len(results)} benchmarks, {failed} failed)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
