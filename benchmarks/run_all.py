"""Run every benchmark file and record a perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--out BENCH_results.json]
    PYTHONPATH=src python benchmarks/run_all.py --smoke

Each ``bench_*.py`` is executed as its own pytest session (isolation: one
benchmark's interpreter state cannot skew another's timings).  The result
file maps benchmark name to status, wall-clock duration and the captured
report tables, so future PRs can diff throughput numbers against this one.

``--smoke`` runs only the smoke-capable data-path benchmarks on a tiny
trace (``REPRO_BENCH_SMOKE=1``; see ``benchmarks/conftest.py``), with the
paper-*ordering* assertions kept and the noise-prone magnitude assertions
skipped.  Tier-1 runs this mode through ``tests/test_bench_smoke.py`` so
a perf regression that flips the paper's ordering fails fast without
timing noise; results default to ``BENCH_smoke.json`` so the full-run
trajectory in ``BENCH_results.json`` is never overwritten by a smoke run.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Benchmarks that understand REPRO_BENCH_SMOKE (tiny trace, ordering-only
#: assertions); --smoke runs exactly these.  C6 also scales under smoke
#: (C11/C12 import its constants) but is excluded here: it measures each
#: system once, so its single-shot ordering is too noise-prone for a
#: tier-1 gate, while C11/C12 assert the same paper ordering from
#: interleaved best-of-3 sweeps.
SMOKE_BENCHES = (
    "bench_c11_batching.py",
    "bench_c12_pull_batching.py",
    "bench_c13_zerocopy.py",
    # C14's headline claims (zero steady-state allocations, zero net pool
    # occupancy drift, full free-list recovery) are exact event counts,
    # so they gate tier-1 at full strength even on the smoke trace.
    "bench_c14_steady_state.py",
    # C15's headline claims are likewise deterministic: virtual-time
    # multicore scaling, per-flow ordering, and the per-shard
    # acquired==released audit all gate at full strength; only the
    # wall-clock paper-ordering rows keep the usual smoke slack.
    "bench_c15_sharding.py",
    # C16's headline claims (zero drops across live resizes, per-flow
    # FIFO, acquired==released on every re-carve hand-off) are exact
    # event counts, so they gate at full strength under smoke; only the
    # wall-clock paper-ordering rows keep the usual slack.
    "bench_c16_elastic.py",
    # R1's fault scenario is entirely virtual-time + seeded-RNG driven
    # (kill/partition/loss schedule, reconfiguration rounds, per-flow
    # ordering, pool audits), so it gates at full strength under smoke;
    # only its fault-free control cells keep wall-clock slack.
    "bench_r1_faults.py",
    # C17's compiled-vs-fused magnitude claims keep the usual smoke
    # slack (ordering-only on the tiny trace); the plan-summary and
    # delivered-count checks are exact at any scale.
    "bench_c17_compiled.py",
    # C18's headline claims (virtual-time fleet scaling, node-kill flow
    # conservation and ≤1-home-move, byte-identical aborted rollout) are
    # deterministic, so they gate at full strength under smoke; only the
    # wall-clock paper-ordering cells keep the usual slack.
    "bench_c18_fleet.py",
    # C19's adversarial trace is entirely virtual-time driven, so the
    # adaptive-beats-worst-static margin, the typed veto count, and the
    # pool audits are deterministic and gate at full strength under
    # smoke; the adaptive-beats-*every*-static claim and the wall-clock
    # paper-ordering cells only gate on the full profile.
    "bench_c19_adaptation.py",
)

#: Benchmarks may print ``[bench-meta] key=value`` lines (e.g. C15's
#: ``shards=1,2,4,8``) which are recorded verbatim in each result entry,
#: so the trajectory file says *what configuration* produced the tables.
_META_PREFIX = "[bench-meta] "

#: Every benchmark file must opt into the ``bench`` pytest marker
#: (``pytestmark = pytest.mark.bench``) so ``-m "not bench"`` reliably
#: deselects the whole suite; a missing marker is a hard error here
#: rather than a silently unmarked benchmark.
_MARKER_TOKEN = "pytest.mark.bench"


def only_matches(pattern: str, bench_name: str) -> bool:
    """Case-insensitive ``--only`` filter: a substring of the file name,
    or a prefix of the experiment name with or without the ``bench_``
    stem — so ``c18``, ``C18``, ``c18_fleet`` and ``bench_c18_fleet.py``
    all select ``bench_c18_fleet.py``."""
    needle = pattern.lower()
    name = bench_name.lower()
    stem = name.removesuffix(".py")
    return (
        needle in name
        or stem.startswith(needle)
        or stem.removeprefix("bench_").startswith(needle)
    )


def missing_bench_markers(benches: list[Path]) -> list[str]:
    """Names of benchmark files that never mention the ``bench`` marker."""
    return [
        bench.name
        for bench in benches
        if _MARKER_TOKEN not in bench.read_text(encoding="utf-8")
    ]


def run_one(bench: Path, *, smoke: bool = False) -> dict:
    """Run one benchmark file under pytest; capture tables and status."""
    env = dict(os.environ)
    if smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(bench), "-q", "-s", "--no-header"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    duration = time.perf_counter() - start
    # Keep only the experiment tables ("=== title ===" blocks) — the rest
    # of the pytest output is noise for a trajectory file.  ``[bench-meta]``
    # lines become the entry's ``meta`` mapping (C15 records its shard
    # sweep this way).
    tables: list[str] = []
    meta: dict[str, str] = {}
    keep = False
    for line in proc.stdout.splitlines():
        if line.startswith(_META_PREFIX):
            key, _, value = line[len(_META_PREFIX):].partition("=")
            meta[key.strip()] = value.strip()
            continue
        if line.startswith("=== ") and line.rstrip().endswith("==="):
            keep = True
        elif keep and (not line.strip() or line.startswith("---- ") or line[:1] == "="):
            keep = line.startswith("=== ")
        if keep:
            tables.append(line)
    return {
        "status": "passed" if proc.returncode == 0 else "failed",
        "returncode": proc.returncode,
        "duration_s": round(duration, 3),
        "meta": meta,
        "tables": "\n".join(tables),
        "tail": "" if proc.returncode == 0 else "\n".join(proc.stdout.splitlines()[-25:]),
    }


#: Property-based suites (``-m slow``) run alongside the benchmarks:
#: bounded examples under ``--smoke`` (the same profile tier-1 uses),
#: the exhaustive ``full`` profile on a full run.  See
#: ``tests/osbase/test_elastic_properties.py``.
PROPERTY_SUITES = (
    "tests/osbase/test_elastic_properties.py",
    "tests/opencom/test_compile_differential.py",
    "tests/router/test_fleet_steering_properties.py",
    "tests/coordination/test_adaptation_properties.py",
)


def run_properties(*, smoke: bool = False) -> dict:
    """Run the slow property suites; full example budget unless smoke."""
    profile = "bounded" if smoke else "full"
    env = dict(os.environ)
    env["REPRO_PROPERTY_PROFILE"] = profile
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", *PROPERTY_SUITES, "-q", "--no-header"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    duration = time.perf_counter() - start
    return {
        "status": "passed" if proc.returncode == 0 else "failed",
        "returncode": proc.returncode,
        "duration_s": round(duration, 3),
        "profile": profile,
        "suites": list(PROPERTY_SUITES),
        "tail": "" if proc.returncode == 0 else "\n".join(proc.stdout.splitlines()[-25:]),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=None,
        help="where to write the results JSON (default: BENCH_results.json, "
        "or BENCH_smoke.json under --smoke)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="case-insensitive filter on benchmark names: matches a "
        "substring of the file name or a prefix of the experiment name "
        "with or without the bench_ stem (e.g. 'c11', 'C18', "
        "'bench_c16_elastic')",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny-trace mode: run only the smoke-capable benchmarks with "
        "REPRO_BENCH_SMOKE=1 (paper-ordering assertions only)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = str(
            REPO_ROOT / ("BENCH_smoke.json" if args.smoke else "BENCH_results.json")
        )

    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    unmarked = missing_bench_markers(benches)
    if unmarked:
        print(
            "[run_all] ERROR: benchmark file(s) missing the 'bench' pytest "
            f"marker: {', '.join(unmarked)} — add 'pytestmark = "
            "pytest.mark.bench' so tier-1 can deselect them",
            flush=True,
        )
        return 2
    if args.smoke:
        benches = [b for b in benches if b.name in SMOKE_BENCHES]
    if args.only:
        benches = [b for b in benches if only_matches(args.only, b.name)]
        if not benches:
            print(f"[run_all] no benchmark matches --only {args.only!r}")
            return 2
    results: dict[str, dict] = {}
    failed = 0
    for bench in benches:
        print(f"[run_all] {bench.name} ...", flush=True)
        outcome = run_one(bench, smoke=args.smoke)
        results[bench.stem] = outcome
        if outcome["status"] != "passed":
            failed += 1
        print(
            f"[run_all]   {outcome['status']} in {outcome['duration_s']}s",
            flush=True,
        )

    properties = None
    if args.only is None:  # --only selects benchmarks; skip the suites
        print("[run_all] property suites ...", flush=True)
        properties = run_properties(smoke=args.smoke)
        if properties["status"] != "passed":
            failed += 1
        print(
            f"[run_all]   {properties['status']} in {properties['duration_s']}s "
            f"({properties['profile']} profile)",
            flush=True,
        )

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "smoke": args.smoke,
        "benchmarks": results,
        "properties": properties,
        "summary": {
            "total": len(results) + (1 if properties else 0),
            "failed": failed,
        },
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[run_all] wrote {out_path} ({len(results)} benchmarks, {failed} failed)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
