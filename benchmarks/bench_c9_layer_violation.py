"""C9 — ad-hoc "layer-violating" interaction for wireless adaptation.

Paper (section 4): the vertically integrated architecture "facilitates
ad-hoc interaction — e.g. application or transport layer components can
(subject to access control) straightforwardly obtain 'layer-violating'
information from the link layer (this is increasingly recognised as
indispensable in mobile environments)".

Reproduced: a flow crosses a lossy "wireless" link; a transport-stratum
adaptation manager reads the link-layer loss statistics directly (the
layer violation) and splices an FEC encoder/decoder pair into the path
when loss crosses a threshold.  Delivery with adaptation beats delivery
without it under the lossy regime, and the adaptation is a live
reconfiguration, not a restart.
"""

import pytest

from benchmarks.conftest import once, report
from repro.appservices import FecDecoder, FecEncoder
from repro.netsim import Topology, make_udp_v4
from repro.opencom import Capsule
from repro.router import CollectorSink, PacketCounterTap

pytestmark = pytest.mark.bench

PACKETS = 400
GROUP = 4


def run_transfer(loss_rate, *, adaptive, seed=77):
    """Send PACKETS across a lossy link, optionally with loss-triggered
    FEC adaptation.  Returns distinct data packets delivered."""
    topo = Topology()
    topo.add_node("mobile")
    topo.add_node("base")
    link = topo.connect("mobile", "base", loss_rate=loss_rate, seed=seed,
                        bandwidth_bps=100e6, latency_s=0.001)

    sender_capsule = Capsule("sender-stack")
    tap = sender_capsule.instantiate(PacketCounterTap, "tap")
    egress_sink_capsule = Capsule("receiver-stack")
    decoder = egress_sink_capsule.instantiate(lambda: FecDecoder(group_size=GROUP), "decoder")
    received = egress_sink_capsule.instantiate(CollectorSink, "received")
    egress_sink_capsule.bind(decoder.receptacle("out"), received.interface("in0"))

    # Receiver: every arriving packet goes through the decoder.
    topo.node("base").set_packet_handler(
        lambda packet, port: decoder.interface("in0").vtable.invoke("push", packet)
    )

    # Sender data path: tap -> (maybe FEC) -> link.
    send = lambda packet: topo.node("mobile").send("eth0", packet)
    from repro.router import NicEgress

    egress = sender_capsule.instantiate(lambda: NicEgress(send), "egress")
    binding = sender_capsule.bind(tap.receptacle("out"), egress.interface("in0"))

    adapted = {"done": False}

    def maybe_adapt():
        """The layer violation: a stratum-3 manager reads stratum-1 link
        stats through the architecture and reacts."""
        stats = link.direction_from(topo.node("mobile")).stats
        if stats.sent < 20:
            return
        observed_loss = stats.lost / stats.sent
        if observed_loss > 0.05 and not adapted["done"]:
            sender_capsule.unbind(binding)
            encoder = sender_capsule.instantiate(
                lambda: FecEncoder(group_size=GROUP), "fec"
            )
            sender_capsule.bind(tap.receptacle("out"), encoder.interface("in0"))
            sender_capsule.bind(encoder.receptacle("out"), egress.interface("in0"))
            adapted["done"] = True

    for i in range(PACKETS):
        tap.interface("in0").vtable.invoke(
            "push",
            make_udp_v4("10.0.0.1", "10.0.0.2", sport=7, dport=9,
                        payload=bytes([i % 251]) * 32),
        )
        if adaptive and i % 10 == 0:
            maybe_adapt()
        topo.engine.run()

    data_packets = [
        p for p in received.packets if not p.metadata.get("fec-parity")
    ]
    return len(data_packets), adapted["done"]


def test_c9_adaptation_beats_static_under_loss(benchmark):
    def experiment():
        rows = []
        outcomes = {}
        for loss in (0.0, 0.10):
            static, _ = run_transfer(loss, adaptive=False)
            adaptive, adapted = run_transfer(loss, adaptive=True)
            outcomes[loss] = (static, adaptive, adapted)
            rows.append(
                [
                    f"{loss:.0%}",
                    f"{static}/{PACKETS}",
                    f"{adaptive}/{PACKETS}",
                    "yes" if adapted else "no",
                ]
            )
        report(
            "C9: wireless loss adaptation via layer-violating link stats",
            ["link loss", "static delivery", "adaptive delivery", "FEC spliced"],
            rows,
        )
        return outcomes

    outcomes = once(benchmark, experiment)
    clean_static, clean_adaptive, clean_adapted = outcomes[0.0]
    lossy_static, lossy_adaptive, lossy_adapted = outcomes[0.10]
    # Clean link: no adaptation triggered, both deliver everything.
    assert not clean_adapted
    assert clean_static == clean_adaptive == PACKETS
    # Lossy link: adaptation fired and recovered a meaningful share.
    assert lossy_adapted
    assert lossy_static < PACKETS
    assert lossy_adaptive > lossy_static
