"""R1 — failure-domain recovery under a seeded fault schedule.

Two halves, one robustness claim:

**Fault-free control cells.**  The four systems (CF vtable, CF fused,
Click-style fleet, monolithic fleet) run the identical C15 sharded
runtime with *no* faults, and the paper's C6 ordering (monolithic ≥
Click ≥ CF fused ≥ CF vtable, 0.9 slack) must survive — the robustness
machinery added in this PR (steering indirection, recovery hooks, the
reliability layer under signaling) is not allowed to cost the fault-free
datapath its shape.  Pool audits gate zero leaks exactly as in C15.

**The seeded fault scenario.**  A 4-shard CF fused datapath forwards a
multi-flow trace while a :class:`~repro.netsim.faults.FaultInjector`
drives, at exact virtual times: a worker kill (shard 2's worker raises
``WorkerKilled`` mid-run), a network partition between the coordination
nodes, and 1 % seeded signaling loss on every agent.  The supervisor
contains the crash (failover stealing keeps shard 2's backlog draining),
reports it once to the recovery driver, and the driver runs two-phase
shard-recovery rounds over the partitioned network: rounds started
during the partition *abort* by missing-vote deadline (rollback
exercised — parked frames return to the dead ring), and a round started
after heal *commits* — drain-before-rehash moves the dead bucket's flows
to a live successor.  Deterministic gates:

- **zero pooled-buffer leaks**: every slice acquired == released,
  in_flight == 0 (:func:`~repro.osbase.buffers.shard_pool_audit`);
- **every reconfiguration round terminates** committed or aborted —
  no round hangs on loss or partition;
- **≥1 rollback exercised** (an aborted round that had quiesced) and
  **exactly one recovery committed**;
- **bounded per-flow disruption**: every fed frame egresses, every
  flow's payload sequence numbers stay in order, and no flow touches
  more than two shards (its original home and, for dead-bucket flows,
  the one successor).

Everything in the scenario is virtual-time + seeded-RNG deterministic,
so the whole cell gates ``--smoke`` and the full run at equal strength.
"""

import time
from collections import defaultdict
from struct import unpack_from

import pytest

from benchmarks.bench_c6_datapath import routes_with_default
from benchmarks.bench_c15_sharding import (
    FLOWS as C15_FLOWS,
    PER_FLOW as C15_PER_FLOW,
    make_flow_frames,
    run_cf,
    run_click,
    run_monolithic,
)
from benchmarks.conftest import SMOKE, once, report, scaled
from repro.coordination import (
    ActionSet,
    ReconfigCoordinator,
    ReconfigParticipant,
    attach_agents,
    register_shard_recovery,
)
from repro.netsim import FaultInjector, Topology, batched
from repro.osbase import (
    RoundRobinScheduler,
    ThreadManagerCF,
    VirtualClock,
    carve_shard_pools,
    release_dropped,
    shard_pool_audit,
)
from repro.router import build_sharded_forwarding_datapath

pytestmark = pytest.mark.bench

SHARDS = 4
BATCH = 32
BUFFER_SIZE = 128
POOL_TOTAL = 4096
#: The shard whose worker the schedule kills.
KILL_SHARD = 2
#: Scenario workload: enough steps to spread the fault timeline over.
FLOWS = scaled(64, 24)
PER_FLOW = scaled(24, 12)
LAPS = scaled(3, 2)
#: One chunk steered per step (smaller than C15's so the timeline has
#: enough interleave points for the fault schedule).
CHUNK = BATCH * SHARDS
#: Virtual seconds the whole trace is spread over.
TOTAL_T = 3.0
#: Fault schedule (absolute virtual times).
PARTITION_AT = 0.05
HEAL_AT = 1.05
KILL_AT = 0.15
SIGNALING_LOSS = 0.01
ROUND_DEADLINE = 0.3
#: Control cells reuse the C15 runners; full mode gates the 4-shard cell
#: alone, smoke aggregates 1+4 shards (same noise rationale as C15).
CONTROL_SHARDS = (1, 4) if SMOKE else (4,)
REPEATS = 3


# -- fault-free control --------------------------------------------------------------


def test_r1_fault_free_control(benchmark):
    """Paper ordering and zero leaks on fault-free cells of the same
    runtime the fault scenario runs on."""

    def experiment():
        routes = routes_with_default()
        frames = make_flow_frames(routes, flows=C15_FLOWS, per_flow=C15_PER_FLOW)
        runners = {
            "CF vtable": lambda s: run_cf(routes, frames, s, fused=False),
            "CF fused": lambda s: run_cf(routes, frames, s, fused=True),
            "Click-style": lambda s: run_click(routes, frames, s),
            "monolithic": lambda s: run_monolithic(routes, frames, s),
        }
        results: dict[tuple, dict] = {}
        for _ in range(REPEATS):
            for shards in CONTROL_SHARDS:
                for name, runner in runners.items():
                    outcome = runner(shards)
                    key = (name, shards)
                    if key not in results:
                        results[key] = outcome
                    else:
                        kept = results[key]
                        assert outcome["forwarded"] == kept["forwarded"], key
                        kept["elapsed"] = min(kept["elapsed"], outcome["elapsed"])
        report(
            f"R1 control: fault-free sharded cells, shards {list(CONTROL_SHARDS)}, "
            f"{C15_FLOWS} flows x {C15_PER_FLOW} pkts",
            ["system", "shards", "kpps(wall)", "pools balanced", "forwarded"],
            [
                [
                    name,
                    shards,
                    f"{res['forwarded'] / res['elapsed'] / 1e3:.0f}",
                    "yes" if res["audit"]["balanced"] else "NO",
                    res["forwarded"],
                ]
                for (name, shards), res in sorted(
                    results.items(), key=lambda kv: kv[0][1]
                )
            ],
        )
        print(
            f"[bench-meta] control_shards="
            f"{','.join(str(s) for s in CONTROL_SHARDS)}"
        )
        return results

    results = once(benchmark, experiment)
    for key, res in results.items():
        assert res["audit"]["balanced"], (key, res["audit"])
        assert res["steer_refused"] == 0, key

    scopes = [CONTROL_SHARDS] if SMOKE else [(s,) for s in CONTROL_SHARDS]
    for scope in scopes:

        def pps(name):
            forwarded = sum(results[(name, s)]["forwarded"] for s in scope)
            elapsed = sum(results[(name, s)]["elapsed"] for s in scope)
            return forwarded / elapsed

        assert pps("monolithic") >= pps("Click-style") * 0.9, scope
        assert pps("Click-style") >= pps("CF fused") * 0.9, scope
        assert pps("CF fused") >= pps("CF vtable") * 0.9, scope


# -- the seeded fault scenario ----------------------------------------------------------


class OrderedEgress:
    """One global egress log — (shard, flow, seq) in egress order — so
    per-flow ordering can be checked *across* a mid-run shard move."""

    def __init__(self):
        self.entries: list[tuple] = []
        self.total = 0

    def handler(self, shard_index):
        def on_frame(frame):
            self.entries.append(
                (shard_index, frame.flow_key(), unpack_from("!I", frame.payload, 0)[0])
            )
            self.total += 1
            release_dropped(frame)

        return on_frame


def build_scenario():
    """The 4-shard datapath plus a 3-node coordination overlay:
    coordinator on n0, the datapath's participant on n1, a peer
    participant on n2 (reachable only through n1 — the link the schedule
    partitions)."""
    routes = routes_with_default()
    frames = make_flow_frames(routes, flows=FLOWS, per_flow=PER_FLOW)
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, SHARDS, exhaustion_policy="drop-newest"
    )
    recorder = OrderedEgress()
    datapath = build_sharded_forwarding_datapath(
        routes=routes,
        shards=SHARDS,
        threads=ThreadManagerCF(VirtualClock(), scheduler=RoundRobinScheduler()),
        pools=pools,
        batch=BATCH,
        rx_ring_size=POOL_TOTAL,
        fused=True,
        tx_handler=recorder.handler,
    )

    topo = Topology.chain(3)
    agents = attach_agents(topo)
    coordinator = ReconfigCoordinator(agents["n0"])
    participant = ReconfigParticipant(agents["n1"])
    register_shard_recovery(participant, datapath)
    peer = ReconfigParticipant(agents["n2"])
    # The peer's share of a recovery round: acknowledge the re-steer
    # (a real deployment would update its flow tables here).
    peer.register(
        "shard-recovery",
        ActionSet(
            quiesce=lambda params: True,
            apply=lambda params: None,
            resume=lambda params: None,
        ),
    )

    injector = FaultInjector(topo.engine, seed="r1")
    for agent in agents.values():
        injector.fault_signaling(agent, drop=SIGNALING_LOSS)
    partitioned_link = topo.links[1]
    injector.partition(partitioned_link, at=PARTITION_AT, heal_at=HEAL_AT)
    injector.kill_worker(datapath, KILL_SHARD, at=KILL_AT)

    rounds = []

    def recovery_driver(dp, dead):
        rounds.append(
            coordinator.start(
                "shard-recovery",
                ["n1", "n2"],
                {"shard": dead},
                deadline=ROUND_DEADLINE,
            )
        )

    datapath.recovery_driver = recovery_driver
    return {
        "frames": frames,
        "pools": pools,
        "recorder": recorder,
        "datapath": datapath,
        "engine": topo.engine,
        "agents": agents,
        "participant": participant,
        "injector": injector,
        "rounds": rounds,
        "partitioned_link": partitioned_link,
    }


def drive_scenario(scenario):
    """Interleave the datapath (thread-manager time) with the fault and
    coordination timeline (engine time): one chunk steered per step, the
    engine advanced one slice per step, then a settle phase that lets
    outstanding rounds resolve and the datapath drain."""
    datapath = scenario["datapath"]
    engine = scenario["engine"]
    chunks = list(batched(scenario["frames"], CHUNK))
    steps = LAPS * len(chunks)
    dt = TOTAL_T / steps
    fed = 0
    step = 0
    start = time.perf_counter()
    for _ in range(LAPS):
        for chunk in chunks:
            step += 1
            accepted = datapath.steer_batch(chunk)
            assert accepted == len(chunk), (step, accepted, len(chunk))
            fed += accepted
            datapath.pump()
            engine.run_until(step * dt)
    # Settle: every outstanding round's deadline fires, every abort's
    # unparked backlog drains, the committed recovery's re-steer lands.
    horizon = step * dt
    for _ in range(6):
        horizon += 0.5
        engine.run_until(horizon)
        datapath.pump()
    scenario["elapsed"] = time.perf_counter() - start
    scenario["fed"] = fed
    return scenario


def test_r1_fault_scenario(benchmark):
    scenario = once(benchmark, lambda: drive_scenario(build_scenario()))
    datapath = scenario["datapath"]
    recorder = scenario["recorder"]
    pools = scenario["pools"]
    rounds = scenario["rounds"]
    injector = scenario["injector"]

    statuses = [round_.status for round_ in rounds]
    committed = statuses.count("committed")
    aborted = statuses.count("aborted")
    recovery = datapath.recoveries[0] if datapath.recoveries else {}
    report(
        f"R1 faults: kill worker {KILL_SHARD} @ {KILL_AT}s, partition "
        f"{PARTITION_AT}-{HEAL_AT}s, {SIGNALING_LOSS:.0%} signaling loss, "
        f"{FLOWS} flows x {PER_FLOW} pkts x {LAPS} laps",
        ["metric", "value"],
        [
            ["frames fed / egressed", f"{scenario['fed']} / {recorder.total}"],
            ["recovery rounds (committed/aborted)", f"{committed}/{aborted}"],
            ["recovery: drained via dead engine", recovery.get("drained")],
            ["recovery: parked frames re-steered", recovery.get("parked_flushed")],
            ["recovery: successor shard", recovery.get("to")],
            ["failover batches stolen", sum(
                s["stolen_batches"] for s in datapath.stats()["shards"]
            )],
            ["signaling retransmits", sum(
                a.counters["retransmits"] for a in scenario["agents"].values()
            )],
            ["injected signaling drops", sum(
                p.counters["dropped"] for p in injector.signaling.values()
            )],
            ["fault events logged", len(injector.log)],
            ["pools balanced", "yes" if shard_pool_audit(pools)["balanced"] else "NO"],
        ],
    )
    print(
        f"[bench-meta] scenario=kill+partition+loss shards={SHARDS} "
        f"rounds={len(rounds)} committed={committed} aborted={aborted} "
        f"recoveries={len(datapath.recoveries)}"
    )

    # The schedule actually fired, in order: partition, kill, heal.
    fault_names = [entry for _, entry in injector.log]
    assert any(entry.startswith("partition") for entry in fault_names)
    assert any(entry.startswith("heal") for entry in fault_names)
    assert any(entry.startswith("kill worker") for entry in fault_names)
    assert datapath.stats()["dead_workers"] == [KILL_SHARD]

    # Every round terminated; the partition forced at least one abort
    # whose rollback ran (the participant had quiesced), and exactly one
    # recovery committed.
    assert rounds, "the supervisor never reported the dead worker"
    assert all(round_.complete for round_ in rounds), statuses
    assert aborted >= 1, statuses
    assert committed >= 1, statuses
    assert any("rolled back" in line for line in scenario["participant"].log), (
        scenario["participant"].log
    )
    assert len(datapath.recoveries) == 1, datapath.recoveries
    record = datapath.recoveries[0]
    assert record["shard"] == KILL_SHARD
    assert record["to"] != KILL_SHARD
    assert record["pool_balanced"], record

    # The reliability layer was genuinely exercised: retransmits under
    # loss + partition, and the partition black-holed real messages.
    assert sum(a.counters["retransmits"] for a in scenario["agents"].values()) > 0
    partition_drops = sum(
        direction.dropped_down
        for direction in scenario["partitioned_link"].stats().values()
    )
    assert partition_drops > 0, scenario["partitioned_link"].stats()

    # Bounded per-flow disruption: nothing lost, nothing reordered, and
    # no flow lived on more than two shards.  Dead-bucket flows moved to
    # exactly the committed successor.
    assert recorder.total == scenario["fed"], (recorder.total, scenario["fed"])
    per_flow_seqs = defaultdict(list)
    flow_shards = defaultdict(list)
    for shard, flow, seq in recorder.entries:
        per_flow_seqs[flow].append(seq)
        if not flow_shards[flow] or flow_shards[flow][-1] != shard:
            flow_shards[flow].append(shard)
    expected = list(range(PER_FLOW)) * LAPS
    for flow, seqs in per_flow_seqs.items():
        assert seqs == expected, (flow, seqs[:8], expected[:8])
        assert len(set(flow_shards[flow])) <= 2, (flow, flow_shards[flow])
    moved = {
        flow: homes for flow, homes in flow_shards.items() if len(set(homes)) == 2
    }
    assert moved, "no flow was re-steered off the dead shard"
    for flow, homes in moved.items():
        assert homes[0] == KILL_SHARD, (flow, homes)
        assert homes[-1] == record["to"], (flow, homes)
        # One move, never a bounce: original home, then the successor.
        assert homes == [KILL_SHARD, record["to"]], (flow, homes)

    # Zero pooled-buffer leaks across every slice, fault path included.
    audit = shard_pool_audit(pools)
    assert audit["balanced"], audit
    assert audit["in_flight"] == 0, audit
    assert datapath.total_backlog() == 0
    assert datapath.parked_count() == 0
