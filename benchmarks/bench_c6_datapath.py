"""C6 — in-band data-path throughput: component router vs baselines.

Paper claims: the in-band stratum "is a highly performance-critical area
in which machine instructions must be counted with care" (section 3), and
the challenge is "to maximise the commonality without compromising either
(re)configurability or performance" (section 4).

Reproduced as relative forwarding throughput over the same 1k-route
IPv4 trace:

    monolithic >= Click-style >= Router CF (fused) >= Router CF (vtable)

with the component penalty bounded — flexibility costs a constant factor,
not an order of magnitude.
"""

import time

import pytest

from benchmarks.conftest import make_route_trace, once, report, scaled
from repro.analysis import relative_factor
from repro.baselines import ClickRouter, MonolithicRouter, standard_click_config
from repro.netsim import synthetic_route_table
from repro.opencom import Capsule, fuse_pipeline
from repro.router import build_forwarding_pipeline

pytestmark = pytest.mark.bench

PACKETS = scaled(5_000, 800)
ROUTE_COUNT = scaled(1_000, 128)
HOPS = ["east", "west", "north", "south"]


def make_trace(routes):
    return make_route_trace(routes, PACKETS)


def routes_with_default():
    routes = synthetic_route_table(prefixes=ROUTE_COUNT, next_hops=HOPS, seed=5)
    routes["0.0.0.0/0"] = "east"
    return routes


def run_monolithic(routes, trace):
    router = MonolithicRouter(routes, queue_capacity=PACKETS + 1)
    start = time.perf_counter()
    for packet in trace:
        router.push(packet)
    router.service(budget=PACKETS)
    elapsed = time.perf_counter() - start
    return elapsed, router.counters["tx"]


def run_click(routes, trace):
    router = ClickRouter(standard_click_config(routes=routes, queue_capacity=PACKETS + 1))
    start = time.perf_counter()
    for packet in trace:
        router.push(packet)
    router.service(budget=PACKETS)
    elapsed = time.perf_counter() - start
    delivered = sum(
        element.counters.get("rx", 0)
        for name, element in router.elements.items()
        if name.startswith("sink-")
    )
    return elapsed, delivered


def run_router_cf(routes, trace, *, fused):
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes)
    if fused:
        fuse_pipeline(list(capsule.components().values()))
    start = time.perf_counter()
    for packet in trace:
        pipeline.push(packet)
    elapsed = time.perf_counter() - start
    delivered = sum(
        sink.collected_count()
        for name, sink in pipeline.stages.items()
        if name.startswith("sink:")
    )
    return elapsed, delivered


def test_c6_datapath_throughput(benchmark):
    def experiment():
        routes = routes_with_default()
        results = {}
        for name, runner in (
            ("monolithic", lambda r, t: run_monolithic(r, t)),
            ("Click-style", lambda r, t: run_click(r, t)),
            ("Router CF (vtable)", lambda r, t: run_router_cf(r, t, fused=False)),
            ("Router CF (fused)", lambda r, t: run_router_cf(r, t, fused=True)),
        ):
            trace = make_trace(routes)
            elapsed, delivered = runner(routes, trace)
            results[name] = (PACKETS / elapsed, delivered)
        base = results["monolithic"][0]
        rows = [
            [name, f"{pps / 1e3:.0f}", f"{pps / base:.2f}x", delivered]
            for name, (pps, delivered) in results.items()
        ]
        report(
            "C6: forwarding throughput, 1k-route IPv4 trace",
            ["system", "kpps", "vs monolithic", "delivered"],
            rows,
        )
        return {name: pps for name, (pps, _) in results.items()}, results

    throughput, results = once(benchmark, experiment)
    # Everyone forwarded everything.
    for name, (_, delivered) in results.items():
        assert delivered == PACKETS, name
    # Shape: static systems faster; fusion narrows the gap; the component
    # penalty stays within an order of magnitude.
    assert throughput["monolithic"] >= throughput["Router CF (fused)"] * 0.8
    assert throughput["Router CF (fused)"] >= throughput["Router CF (vtable)"] * 0.95
    penalty = relative_factor(
        throughput["Router CF (vtable)"], throughput["monolithic"]
    )
    assert penalty < 10


def test_c6_component_router_pps(benchmark):
    """pytest-benchmark timing for the fused component data path."""
    routes = routes_with_default()
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes)
    fuse_pipeline(list(capsule.components().values()))
    trace = make_trace(routes)
    index = {"i": 0}

    def push_one():
        pipeline.push(trace[index["i"] % PACKETS])
        index["i"] += 1

    benchmark(push_one)
