"""F2 — Figure 2: run-time rule checking of Router CF plug-ins.

Figure 2 shows "a component acceptable to the Router CF": IPacketPush/
IPacketPull interfaces and receptacles plus the optional IClassifier.
This experiment generates a population of component shapes — compliant and
not — runs them through the CF's run-time rule check, and tabulates the
outcomes, then measures the per-acceptance cost of checking.
"""

import pytest

from benchmarks.conftest import once, report
from repro.opencom import Capsule, Component, Provided, Required, RuleViolation
from repro.router import (
    Classifier,
    IClassifier,
    IPacketPull,
    IPacketPush,
    RouterCF,
)

pytestmark = pytest.mark.bench


def make_shape(pushes, pulls, push_receptacles, pull_receptacles, classifier):
    """Build a component class with the given interface shape."""

    class Shape(Component):
        def push(self, packet):
            pass

        def pull(self):
            return None

        def register_filter(self, spec):
            return 0

        def remove_filter(self, filter_id):
            pass

        def list_filters(self):
            return []

    shape = Shape()
    for i in range(pushes):
        shape.expose(f"in{i}", IPacketPush, impl=shape)
    for i in range(pulls):
        shape.expose(f"pull{i}", IPacketPull, impl=shape)
    for i in range(push_receptacles):
        shape.add_receptacle(f"out{i}", IPacketPush, min_connections=0, max_connections=None)
    for i in range(pull_receptacles):
        shape.add_receptacle(f"pin{i}", IPacketPull, min_connections=0, max_connections=None)
    if classifier:
        shape.expose("classifier", IClassifier, impl=shape)
    return shape


#: (pushes, pulls, push-receptacles, pull-receptacles, classifier, expected)
SHAPES = [
    (1, 0, 0, 0, False, True),    # pure consumer
    (0, 1, 0, 0, False, True),    # pure pull provider
    (0, 0, 1, 0, False, True),    # pure emitter
    (0, 0, 0, 1, False, True),    # pure puller
    (1, 0, 1, 0, False, True),    # filter stage
    (1, 1, 2, 1, False, True),    # rich packet shape
    (1, 0, 1, 0, True, True),     # classifier with outputs
    (0, 0, 0, 0, False, False),   # no packet interfaces at all
    (0, 0, 0, 0, True, False),    # classifier alone (no packet passing)
    (1, 0, 0, 0, True, False),    # classifier with no outgoing receptacle
]


def test_f2_rule_outcomes(benchmark):
    def experiment():
        capsule = Capsule("f2")
        cf = RouterCF()
        capsule.adopt(cf, "router-cf")
        rows = []
        outcomes = []
        for index, (pushes, pulls, pr, lr, classifier, expected) in enumerate(SHAPES):
            shape = make_shape(pushes, pulls, pr, lr, classifier)
            capsule.adopt(shape, f"shape{index}")
            result = cf.validate_with_report(shape)
            outcomes.append((result["accepted"], expected))
            rows.append(
                [
                    f"{pushes}push/{pulls}pull/{pr}+{lr}recp"
                    + ("/IClassifier" if classifier else ""),
                    "accept" if result["accepted"] else "reject",
                    "accept" if expected else "reject",
                    result["failures"][0][:46] if result["failures"] else "",
                ]
            )
        report(
            "F2: Router CF run-time rule checking over component shapes",
            ["shape", "outcome", "expected", "first failure"],
            rows,
        )
        return outcomes

    outcomes = once(benchmark, experiment)
    assert all(actual == expected for actual, expected in outcomes)


def test_f2_dynamic_interface_change_under_rules(benchmark):
    """Figure 2's dynamic half: add/remove interface instances with the CF
    re-checking each change."""

    def experiment():
        capsule = Capsule("f2-dyn")
        cf = RouterCF()
        capsule.adopt(cf, "router-cf")
        shape = make_shape(1, 0, 1, 0, False)
        capsule.adopt(shape, "plugin")
        cf.accept(shape)
        events = []
        # Grow: extra push inputs are fine.
        for i in range(3):
            cf.add_interface_instance(shape, f"extra{i}", IPacketPush, impl=shape)
            events.append(("add", f"extra{i}", "ok"))
        # Shrink back: fine while one packet interface remains.
        for i in range(3):
            cf.remove_interface_instance(shape, f"extra{i}")
            events.append(("remove", f"extra{i}", "ok"))
        # Removing the last packet interface (with no receptacles left
        # either) must be vetoed... here a receptacle remains, so removing
        # in0 is legal; then removing the receptacle too must fail.
        cf.remove_interface_instance(shape, "in0")
        events.append(("remove", "in0", "ok (receptacle remains)"))
        try:
            cf.remove_receptacle_instance(shape, "out0")
            events.append(("remove-receptacle", "out0", "BUG: accepted"))
        except RuleViolation:
            events.append(("remove-receptacle", "out0", "vetoed & rolled back"))
        report(
            "F2b: dynamic add/remove under rule preservation",
            ["operation", "instance", "outcome"],
            [list(e) for e in events],
        )
        return events, shape

    events, shape = once(benchmark, experiment)
    assert events[-1][2] == "vetoed & rolled back"
    assert "out0" in shape.receptacles()  # rollback restored it


def test_f2_acceptance_cost(benchmark):
    """Per-acceptance rule-check cost (the run-time price of Figure 2)."""
    capsule = Capsule("f2-cost")
    cf = RouterCF()
    capsule.adopt(cf, "router-cf")
    classifier = capsule.instantiate(Classifier, "c")

    def check():
        return cf.validate_component(classifier)

    result = benchmark(check)
    assert result == []
