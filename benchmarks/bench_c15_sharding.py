"""C15 — sharded multi-worker datapath: concurrency as the scaling axis.

PRs 1–4 made each unit of forwarding work cheap; every unit still ran on
one logical worker.  This experiment makes *placement* of work the
variable: N share-nothing forwarding shards (private RX NIC, private
:func:`~repro.osbase.buffers.carve_shard_pools` pool slice, private
engine + TX drain) behind one RSS-style flow-hash steering stage, run as
cooperative ``SimThread`` workers under the thread-management CF's
modelled-multicore service loop
(:meth:`~repro.osbase.scheduler.ThreadManagerCF.step_parallel`), with a
supervisor thread that directs idle workers to steal whole batches from
the deepest backlog.  All four systems (CF vtable, CF fused, Click-style
fleet, monolithic fleet) ride the *identical* runtime — steering,
workers, supervisor — so the comparison stays structural: only what a
shard's engine is made of differs.

Deterministic headline criteria (virtual-time and event counting, so
they gate ``--smoke`` / tier-1 at full strength):

- **≥2x aggregate throughput at 4 shards vs 1** on the batched CF path,
  measured in *virtual* time: a parallel step advances the clock by one
  quantum however many workers ran, so packets per virtual second is
  exact modelled-multicore scaling, free of wall-clock noise;
- **per-flow ordering preserved**: every flow egresses from exactly one
  shard, with its payload sequence numbers in order — steering pins
  flows to shards, backlogs are FIFO, and a popped batch is processed
  end-to-end within one quantum no matter who popped it;
- **the PR 4 lifecycle holds per shard**: acquired == released on every
  pool slice (and in aggregate), zero steady-state allocations, full
  free-list recovery — including under forced work-stealing
  (``test_c15_work_stealing_rebalance`` skews every flow onto shard 0
  and lets the other three workers steal).

The paper's C6 ordering (monolithic ≥ Click ≥ CF fused ≥ CF vtable) is
asserted from wall-clock interleaved best-of-3 sweeps with the usual
slack — at **every shard count** in the full run, and on the aggregate
across the swept shard counts under ``--smoke`` (where each cell's
timed region is too small to gate on alone); ratios compress because
the shared runtime (steering, thread stepping) is a constant cost,
exactly as C14's shared NIC loop compressed its ratios.
"""

import gc
import random
import time
from collections import defaultdict
from struct import pack, unpack_from

import pytest

from benchmarks.bench_c6_datapath import routes_with_default
from benchmarks.conftest import SMOKE, once, report, scaled
from repro.baselines import (
    ClickRouter,
    monolithic_shard_fleet,
    standard_click_config,
)
from repro.netsim import batched, flow_hash_of, make_udp_v4
from repro.osbase import (
    DATAPATH_LEDGER,
    Nic,
    RoundRobinScheduler,
    Shard,
    ShardedDatapath,
    ThreadManagerCF,
    VirtualClock,
    carve_shard_pools,
    release_dropped,
    shard_pool_audit,
)
from repro.router import build_sharded_forwarding_datapath

pytestmark = pytest.mark.bench

BATCH = 32
#: Shard sweep; smoke keeps the 1-vs-4 scaling pair the headline
#: criterion needs.
SHARD_SWEEP = (1, 4) if SMOKE else (1, 2, 4, 8)
FLOWS = scaled(128, 32)
PER_FLOW = scaled(32, 20)
PACKETS = FLOWS * PER_FLOW
#: Steady-state rounds measured after one warm-up round.
ROUNDS = scaled(3, 2)
#: Interleaved repeats, best wall-clock wins; the deterministic counters
#: (forwarded, allocations, virtual time) are kept from round one and
#: cross-checked on later rounds, C14-style.
REPEATS = 3
BUFFER_SIZE = 128
#: One fixed buffer budget carved into per-shard slices, so every shard
#: count runs on the same total memory.
POOL_TOTAL = 4096


def chunk_size(shards: int) -> int:
    """Frames fed between pumps: several batches per shard, so the
    multi-core speedup is not quantised away by one-batch chunks."""
    return BATCH * shards * 4


def make_flow_frames(routes, *, flows, per_flow, seed=7, steer_to=None, shards=None):
    """*flows* five-tuples × *per_flow* sequence-stamped raw frames.

    Payloads carry a big-endian sequence number so egress can check
    per-flow ordering; flows are interleaved round-robin, so each flow's
    frames appear in seq order in the trace.  With *steer_to*, endpoints
    are rejection-sampled until every flow hashes onto that shard (of
    *shards*) — the forced-imbalance workload for the work-stealing
    scenario."""
    rng = random.Random(seed)
    bases = [prefix.split("/")[0] for prefix in routes]
    endpoints = []
    while len(endpoints) < flows:
        src = f"10.{rng.randrange(1, 250)}.{rng.randrange(250)}.{rng.randrange(1, 250)}"
        dst = bases[rng.randrange(len(bases))]
        sport = 1024 + rng.randrange(40_000)
        dport = rng.randrange(100)
        probe = make_udp_v4(src, dst, sport=sport, dport=dport)
        if steer_to is not None and probe.flow_hash() % shards != steer_to:
            continue
        endpoints.append((src, dst, sport, dport))
    frames = []
    for n in range(flows * per_flow):
        src, dst, sport, dport = endpoints[n % flows]
        frames.append(
            make_udp_v4(
                src, dst, sport=sport, dport=dport,
                payload=pack("!I", n // flows) + b"\x00" * 12,
            ).to_bytes()
        )
    return frames


class EgressRecorder:
    """Owns frames handed off the CF TX rings: logs (flow, seq) per
    shard, then releases the pooled buffer (the hand-off convention —
    the handler owns each drained frame)."""

    def __init__(self):
        self.logs = defaultdict(list)
        self.total = 0

    def handler(self, shard_index):
        def on_frame(frame):
            self.logs[shard_index].append(
                (frame.flow_key(), unpack_from("!I", frame.payload, 0)[0])
            )
            self.total += 1
            release_dropped(frame)

        return on_frame


def check_flow_order(logs, *, laps):
    """Every flow egressed from exactly one shard, with its sequence
    numbers forming exactly *laps* in-order passes over the trace."""
    owner: dict = {}
    seqs = defaultdict(list)
    for shard_index, entries in logs.items():
        for flow, seq in entries:
            assert owner.setdefault(flow, shard_index) == shard_index, (
                f"flow {flow} egressed from shards {owner[flow]} and {shard_index}"
            )
            seqs[flow].append(seq)
    expected = list(range(PER_FLOW)) * laps
    for flow, observed in seqs.items():
        assert observed == expected, (
            f"flow {flow} out of order: {observed[:8]}... vs {expected[:8]}..."
        )


def new_threads():
    return ThreadManagerCF(VirtualClock(), scheduler=RoundRobinScheduler())


def shard_measure(one_round, forwarded, datapath, pools):
    """Warm up one round, then measure ROUNDS of steady-state sharded
    forwarding: wall-clock, virtual-clock, lifecycle deltas, stealing."""
    one_round()  # warm-up: faults pool slices into circulation, warms caches
    gc.collect()
    base_forwarded = forwarded()
    acquired_before = [pool.acquired_total for pool in pools]
    released_before = [pool.released_total for pool in pools]
    free_before = [pool.stats()["free"] for pool in pools]
    snap = DATAPATH_LEDGER.snapshot()
    virtual_before = datapath.threads.clock.now
    start = time.perf_counter()
    for _ in range(ROUNDS):
        one_round()
    elapsed = time.perf_counter() - start
    stats = datapath.stats()
    return {
        "elapsed": elapsed,
        "virtual_elapsed": stats["virtual_time"] - virtual_before,
        "forwarded": forwarded() - base_forwarded,
        "allocations": DATAPATH_LEDGER.delta(snap)["allocations"],
        "per_shard": [
            {
                "acquired": pool.acquired_total - acquired_before[i],
                "released": pool.released_total - released_before[i],
                "in_flight": pool.in_flight,
                "free_recovered": pool.stats()["free"] == free_before[i],
            }
            for i, pool in enumerate(pools)
        ],
        "audit": shard_pool_audit(pools),
        "stolen_batches": sum(s["stolen_batches"] for s in stats["shards"]),
        "rebalances": stats["rebalances"],
        "steer_refused": sum(datapath.steering.refused),
    }


def feed(datapath, chunks):
    for chunk in chunks:
        datapath.steer_batch(chunk)
        datapath.pump()


def run_cf(routes, frames, shards, *, fused):
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, shards, exhaustion_policy="drop-newest"
    )
    recorder = EgressRecorder()
    datapath = build_sharded_forwarding_datapath(
        routes=routes,
        shards=shards,
        threads=new_threads(),
        pools=pools,
        batch=BATCH,
        rx_ring_size=chunk_size(shards),
        fused=fused,
        tx_handler=recorder.handler,
    )
    chunks = list(batched(frames, chunk_size(shards)))

    def one_round():
        feed(datapath, chunks)

    outcome = shard_measure(one_round, lambda: recorder.total, datapath, pools)
    outcome["recorder"] = recorder
    return outcome


def baseline_datapath(engines, pools, shards, *, flush_budget):
    """The baselines under the identical sharded runtime: one fleet
    member per shard, pushed and flushed through the same Shard/steal
    machinery as the CF pipelines."""
    built = [
        Shard(
            index,
            nic=Nic(rx_ring_size=chunk_size(shards), pool=pools[index]),
            pool=pools[index],
            push_batch=engine.push_batch,
            flush=lambda e=engine: e.service(budget=flush_budget),
            engine=engine,
        )
        for index, engine in enumerate(engines)
    ]
    return ShardedDatapath(
        built, threads=new_threads(), hash_fn=flow_hash_of, batch=BATCH
    )


def run_monolithic(routes, frames, shards):
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, shards, exhaustion_policy="drop-newest"
    )
    fleet = monolithic_shard_fleet(routes, shards, queue_capacity=4 * BATCH)
    datapath = baseline_datapath(fleet, pools, shards, flush_budget=BATCH)
    chunks = list(batched(frames, chunk_size(shards)))

    def one_round():
        feed(datapath, chunks)

    return shard_measure(
        one_round,
        lambda: sum(router.counters["tx"] for router in fleet),
        datapath,
        pools,
    )


def run_click(routes, frames, shards):
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, shards, exhaustion_policy="drop-newest"
    )
    fleet = [
        ClickRouter(
            standard_click_config(
                routes=routes, queue_capacity=4 * BATCH, recycle_sinks=True
            )
        )
        for _ in range(shards)
    ]
    datapath = baseline_datapath(fleet, pools, shards, flush_budget=BATCH)
    chunks = list(batched(frames, chunk_size(shards)))

    def one_round():
        feed(datapath, chunks)

    def forwarded():
        return sum(
            element.counters.get("rx", 0)
            for router in fleet
            for name, element in router.elements.items()
            if name.startswith("sink-")
        )

    return shard_measure(one_round, forwarded, datapath, pools)


def sweep(routes, frames):
    """Interleaved best-of-REPEATS wall-clock per (system, shards);
    deterministic counters kept from round one and cross-checked."""
    runners = {
        "CF vtable": lambda s: run_cf(routes, frames, s, fused=False),
        "CF fused": lambda s: run_cf(routes, frames, s, fused=True),
        "Click-style": lambda s: run_click(routes, frames, s),
        "monolithic": lambda s: run_monolithic(routes, frames, s),
    }
    results: dict[tuple, dict] = {}
    for _ in range(REPEATS):
        for shards in SHARD_SWEEP:
            for name, runner in runners.items():
                outcome = runner(shards)
                key = (name, shards)
                if key not in results:
                    results[key] = outcome
                else:
                    kept = results[key]
                    assert outcome["forwarded"] == kept["forwarded"], key
                    assert outcome["allocations"] == kept["allocations"], key
                    assert outcome["virtual_elapsed"] == pytest.approx(
                        kept["virtual_elapsed"]
                    ), key
                    kept["elapsed"] = min(kept["elapsed"], outcome["elapsed"])
    return results


def test_c15_sharding_sweep(benchmark):
    def experiment():
        routes = routes_with_default()
        frames = make_flow_frames(routes, flows=FLOWS, per_flow=PER_FLOW)
        results = sweep(routes, frames)
        rows = []
        for (name, shards), res in sorted(results.items(), key=lambda kv: kv[0][1]):
            vthr = res["forwarded"] / res["virtual_elapsed"]
            base = results[(name, SHARD_SWEEP[0])]
            rows.append(
                [
                    name,
                    shards,
                    f"{res['forwarded'] / res['elapsed'] / 1e3:.0f}",
                    f"{vthr / (base['forwarded'] / base['virtual_elapsed']):.2f}x",
                    f"{res['allocations'] / max(res['forwarded'], 1):.2f}",
                    "yes" if res["audit"]["balanced"] else "NO",
                    res["stolen_batches"],
                    res["forwarded"],
                ]
            )
        report(
            f"C15: sharded datapath, batch-{BATCH}, {POOL_TOTAL}-buffer budget, "
            f"{FLOWS} flows x {PER_FLOW} pkts, {ROUNDS} rounds, "
            f"shards {list(SHARD_SWEEP)}",
            [
                "system",
                "shards",
                "kpps(wall)",
                "vscale",
                "allocs/pkt",
                "pools balanced",
                "stolen",
                "forwarded",
            ],
            rows,
        )
        print(f"[bench-meta] shards={','.join(str(s) for s in SHARD_SWEEP)}")
        return results

    results = once(benchmark, experiment)
    expected = ROUNDS * PACKETS
    for (name, shards), res in results.items():
        # Nothing lost at any shard count: steering accepted every frame
        # and the carved slices recycled fast enough.
        assert res["forwarded"] == expected, (name, shards, res)
        assert res["steer_refused"] == 0, (name, shards, res)
        # PR 4's lifecycle, now per shard: zero steady-state allocation,
        # every slice's acquires matched by releases, occupancy fully
        # recovered.
        assert res["allocations"] == 0, (name, shards, res)
        for row in res["per_shard"]:
            assert row["acquired"] == row["released"], (name, shards, row)
            assert row["in_flight"] == 0, (name, shards, row)
            assert row["free_recovered"], (name, shards, row)
        assert res["audit"]["balanced"], (name, shards, res["audit"])
        # Per-flow ordering on the CF path: one shard per flow, payload
        # sequence numbers in order across warm-up + measured rounds.
        recorder = res.get("recorder")
        if recorder is not None:
            check_flow_order(recorder.logs, laps=1 + ROUNDS)

    # Headline: modelled-multicore scaling on the batched path, in
    # virtual time (deterministic — parallel quanta overlap, so packets
    # per virtual second is the aggregate-throughput claim).
    for name in ("CF fused", "CF vtable"):
        vthr = {
            shards: results[(name, shards)]["forwarded"]
            / results[(name, shards)]["virtual_elapsed"]
            for shards in SHARD_SWEEP
        }
        assert vthr[4] >= 2.0 * vthr[1], (name, vthr)

    # Paper ordering (C6/C14 slack style) — the shared runtime
    # compresses the ratios, the direction must survive.  The
    # fused/vtable pair gets the same 0.9 slack as the others: C11 and
    # C12 already established that fusion adds only ~1–2% once batching
    # amortises dispatch, and behind the shared sharded runtime that
    # pair sits within wall-clock noise.  The full run asserts the
    # ordering at *every* shard count; under smoke each (system, shards)
    # cell's timed region is only ~tens of milliseconds — noise-bound on
    # a loaded container — so the smoke gate asserts the same ordering
    # on wall-clock aggregated across the swept shard counts instead
    # (twice the timed region, still direction-sensitive).
    scopes = [SHARD_SWEEP] if SMOKE else [(shards,) for shards in SHARD_SWEEP]
    for scope in scopes:
        def pps(name):
            forwarded = sum(results[(name, s)]["forwarded"] for s in scope)
            elapsed = sum(results[(name, s)]["elapsed"] for s in scope)
            return forwarded / elapsed

        assert pps("monolithic") >= pps("Click-style") * 0.9, scope
        assert pps("Click-style") >= pps("CF fused") * 0.9, scope
        assert pps("CF fused") >= pps("CF vtable") * 0.9, scope


def test_c15_work_stealing_rebalance(benchmark):
    """Forced imbalance: every flow steers to shard 0 of 4, so the
    supervisor must direct the three idle workers at shard 0's backlog.
    All assertions are event counts — deterministic at any scale."""

    def experiment():
        routes = routes_with_default()
        shards = 4
        frames = make_flow_frames(
            routes, flows=FLOWS, per_flow=PER_FLOW, steer_to=0, shards=shards
        )
        pools = carve_shard_pools(
            BUFFER_SIZE, POOL_TOTAL, shards, exhaustion_policy="drop-newest"
        )
        recorder = EgressRecorder()
        datapath = build_sharded_forwarding_datapath(
            routes=routes,
            shards=shards,
            threads=new_threads(),
            pools=pools,
            batch=BATCH,
            rx_ring_size=PACKETS,
            fused=True,
            tx_handler=recorder.handler,
            steal_watermark=BATCH,
        )
        feed(datapath, batched(frames, chunk_size(shards)))
        stats = datapath.stats()
        report(
            "C15: forced-imbalance work stealing (all flows -> shard 0 of 4)",
            ["shard", "steered", "processed", "stolen", "ceded"],
            [
                [
                    row["shard_id"],
                    row["steered"],
                    row["processed_packets"],
                    row["stolen_batches"],
                    row["ceded_batches"],
                ]
                for row in stats["shards"]
            ],
        )
        return recorder, datapath, pools, stats

    recorder, datapath, pools, stats = once(benchmark, experiment)
    victim = stats["shards"][0]
    # The imbalance was real and the supervisor reacted: peers stole
    # whole batches from shard 0, whose engine still processed them all.
    assert victim["steered"] == PACKETS
    assert victim["processed_packets"] == PACKETS
    assert victim["ceded_batches"] > 0, stats
    assert sum(s["stolen_batches"] for s in stats["shards"]) == victim["ceded_batches"]
    assert stats["rebalances"] > 0
    # Stealing moved CPU time, not flow residency or buffer ownership:
    # ordering holds, every egress came off shard 0, and shard 0's pool
    # slice (the only one touched) balances exactly.
    assert recorder.total == PACKETS
    check_flow_order(recorder.logs, laps=1)
    assert set(recorder.logs) == {0}
    assert pools[0].acquired_total == pools[0].released_total == PACKETS
    assert shard_pool_audit(pools)["balanced"]


def test_c15_fused_sharded_round(benchmark):
    """pytest-benchmark timing of one fused 4-shard round (steer → pump
    across the modelled cores → TX flush) — the whole sharded lifecycle
    per iteration."""
    routes = routes_with_default()
    shards = 4
    frames = make_flow_frames(routes, flows=FLOWS, per_flow=PER_FLOW)
    pools = carve_shard_pools(
        BUFFER_SIZE, POOL_TOTAL, shards, exhaustion_policy="drop-newest"
    )
    datapath = build_sharded_forwarding_datapath(
        routes=routes,
        shards=shards,
        threads=new_threads(),
        pools=pools,
        batch=BATCH,
        rx_ring_size=chunk_size(shards),
        fused=True,
    )
    chunks = list(batched(frames, chunk_size(shards)))

    def one_round():
        feed(datapath, chunks)

    benchmark(one_round)
    assert shard_pool_audit(pools)["in_flight"] == 0
