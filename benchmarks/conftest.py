"""Shared helpers for the benchmark harness.

Every experiment prints its paper-style table (run pytest with ``-s`` to
see them) and asserts on the *shape* of the result — who wins, in which
direction, by roughly what factor — never on absolute timings, which are
substrate-dependent.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.netsim import udp_route_trace


def report(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print one experiment table."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


def once(benchmark, fn):
    """Run a shape experiment exactly once under the benchmark fixture
    (keeps ``--benchmark-only`` selecting every experiment)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def make_route_trace(routes: dict[str, str], packets: int, *, seed: int = 99):
    """Shared C6/C11 trace builder: the whole trace is materialised before
    any timer starts, so experiments measure the data path, not packet
    construction."""
    return udp_route_trace(routes, count=packets, seed=seed)
