"""Shared helpers for the benchmark harness.

Every experiment prints its paper-style table (run pytest with ``-s`` to
see them) and asserts on the *shape* of the result — who wins, in which
direction, by roughly what factor — never on absolute timings, which are
substrate-dependent.

Smoke mode
----------
``REPRO_BENCH_SMOKE=1`` (set by ``run_all.py --smoke``, which tier-1 runs
through ``tests/test_bench_smoke.py``) switches the smoke-capable
benchmarks to a tiny trace and paper-*ordering* assertions only: the
magnitude claims (">= 2x", monotonicity) are skipped because they are
noise-dominated at smoke scale, while a broken ordering — a genuine perf
regression in the dispatch layers — still fails fast.  Benchmarks consult
:data:`SMOKE` and size constants via :func:`scaled`.
"""

from __future__ import annotations

import os

from repro.analysis import format_table
from repro.netsim import udp_route_trace

#: True when running under ``run_all.py --smoke`` (or any caller that
#: exports REPRO_BENCH_SMOKE=1).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def scaled(full: int, smoke: int) -> int:
    """Pick a workload size: *full* normally, *smoke* under smoke mode."""
    return smoke if SMOKE else full


def report(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print one experiment table."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


def once(benchmark, fn):
    """Run a shape experiment exactly once under the benchmark fixture
    (keeps ``--benchmark-only`` selecting every experiment)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def make_route_trace(routes: dict[str, str], packets: int, *, seed: int = 99):
    """Shared C6/C11 trace builder: the whole trace is materialised before
    any timer starts, so experiments measure the data path, not packet
    construction."""
    return udp_route_trace(routes, count=packets, seed=seed)
