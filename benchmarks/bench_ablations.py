"""Ablations of the design choices DESIGN.md calls out.

A1 — bind-time constraint checking: the marginal cost per installed
     constraint on the bind primitive (the price of policing topology).
A2 — queue-discipline choice in the data path: FIFO vs RED under a
     bursty overload (loss vs latency trade).
A3 — link-scheduler choice: priority vs DRR vs WFQ serving the same
     two-class backlog (expedited latency vs fairness trade).
A4 — rule checking granularity: accept-time check cost vs re-validating
     a whole CF's plug-in population.
"""

import time

import pytest

from benchmarks.conftest import once, report
from repro.analysis import mean
from repro.cf import TopologyConstraint
from repro.netsim import make_udp_v4
from repro.opencom import Capsule
from repro.router import (
    Classifier,
    CollectorSink,
    DrrScheduler,
    FifoQueue,
    PriorityLinkScheduler,
    RedQueue,
    RouterCF,
    WfqScheduler,
)

pytestmark = pytest.mark.bench


def test_a1_bind_constraint_overhead(benchmark):
    def experiment():
        rows = []
        for constraint_count in (0, 1, 4, 16):
            capsule = Capsule(f"a1-{constraint_count}")
            for i in range(constraint_count):
                capsule.add_constraint(
                    f"c{i}", TopologyConstraint(f"c{i}", lambda req: None)
                )
            hub = capsule.instantiate(Classifier, "hub")
            sinks = [
                capsule.instantiate(CollectorSink, f"s{i}") for i in range(64)
            ]
            start = time.perf_counter()
            for i, sink in enumerate(sinks):
                capsule.bind(
                    hub.receptacle("out"), sink.interface("in0"),
                    connection_name=f"o{i}",
                )
            elapsed = (time.perf_counter() - start) / len(sinks)
            rows.append([constraint_count, f"{elapsed * 1e6:.1f}"])
        report(
            "A1: bind cost vs installed constraints",
            ["constraints", "us/bind"],
            rows,
        )
        return [float(row[1]) for row in rows]

    costs = once(benchmark, experiment)
    # Constraint checking is linear and cheap: 16 constraints must not
    # blow the bind cost up by more than ~20x over zero.
    assert costs[-1] < costs[0] * 20 + 50


def test_a2_queue_discipline_under_burst(benchmark):
    def experiment():
        rows = []
        results = {}
        for name, factory in (
            ("drop-tail FIFO", lambda: FifoQueue(128)),
            ("RED", lambda: RedQueue(128, min_threshold=16, max_threshold=96,
                                     max_drop_probability=0.2, weight=0.05, seed=9)),
        ):
            capsule = Capsule(f"a2-{name}")
            queue = capsule.instantiate(factory, "q")
            # Overload burst: 400 packets into a 128-capacity queue with
            # interleaved slow service (1 serviced per 4 arrivals).
            delivered, drops = 0, 0
            for i in range(400):
                queue.push(make_udp_v4("10.0.0.1", "10.0.0.2", dport=i))
                if i % 4 == 0 and queue.pull() is not None:
                    delivered += 1
            depth_at_end = queue.depth
            while queue.pull() is not None:
                delivered += 1
            stats = queue.stats()
            drops = sum(v for k, v in stats.items() if k.startswith("drop"))
            early = stats.get("drop:red-early", 0)
            results[name] = (delivered, drops, depth_at_end, early)
            rows.append([name, delivered, drops, depth_at_end, early])
        report(
            "A2: queue discipline under 3.1x overload burst",
            ["discipline", "delivered", "dropped", "peak depth", "early drops"],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    fifo = results["drop-tail FIFO"]
    red = results["RED"]
    # RED sheds load early (smaller standing queue), FIFO fills to the brim.
    assert red[3] > 0            # early drops happened
    assert red[2] <= fifo[2]     # standing queue no worse than FIFO's
    assert fifo[0] + fifo[1] == 400
    assert red[0] + red[1] == 400


def test_a3_link_scheduler_choice(benchmark):
    def experiment():
        rows = []
        results = {}
        for name, factory in (
            ("strict priority", lambda: PriorityLinkScheduler(["exp", "be"])),
            ("DRR (q=128)", lambda: DrrScheduler(quantum=128)),
            ("WFQ 3:1", lambda: WfqScheduler(weights={"exp": 3.0, "be": 1.0})),
        ):
            capsule = Capsule(f"a3-{name}")
            scheduler = capsule.instantiate(factory, "sched")
            queues = {}
            for klass in ("exp", "be"):
                queue = capsule.instantiate(lambda: FifoQueue(1000), f"q-{klass}")
                capsule.bind(
                    scheduler.receptacle("inputs"), queue.interface("pull0"),
                    connection_name=klass,
                )
                queues[klass] = queue
            for i in range(100):
                queues["exp"].push(make_udp_v4("10.0.0.1", "10.0.0.2", dport=1, payload=bytes(72)))
                queues["be"].push(make_udp_v4("10.0.0.1", "10.0.0.2", dport=2, payload=bytes(72)))
            # Service 100 of 200 queued; where does the expedited class land?
            exp_positions = []
            served_exp = 0
            for position in range(100):
                packet = scheduler.pull()
                if packet.transport.dport == 1:
                    served_exp += 1
                    exp_positions.append(position)
            results[name] = (served_exp, mean(exp_positions))
            rows.append([name, served_exp, f"{mean(exp_positions):.1f}"])
        report(
            "A3: link scheduler serving 2 backlogged classes (100 slots)",
            ["scheduler", "expedited served", "mean expedited position"],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    priority_served, priority_position = results["strict priority"]
    drr_served, _ = results["DRR (q=128)"]
    wfq_served, _ = results["WFQ 3:1"]
    assert priority_served == 100          # strict priority: all expedited first
    assert priority_position < 50
    assert 40 <= drr_served <= 60          # DRR: byte-fair split
    assert 65 <= wfq_served <= 85          # WFQ 3:1: weighted split


def test_a4_rule_check_cost(benchmark):
    """Per-component rule checking vs whole-CF revalidation."""

    def experiment():
        capsule = Capsule("a4")
        cf = RouterCF()
        capsule.adopt(cf, "cf")
        plugins = []
        for i in range(50):
            classifier = capsule.instantiate(Classifier, f"c{i}")
            cf.accept(classifier)
            plugins.append(classifier)
        start = time.perf_counter()
        for classifier in plugins:
            cf.validate_component(classifier)
        single = (time.perf_counter() - start) / len(plugins)
        start = time.perf_counter()
        cf.validate_all()
        bulk = time.perf_counter() - start
        report(
            "A4: rule-checking cost",
            ["operation", "cost"],
            [
                ["validate one plug-in", f"{single * 1e6:.1f} us"],
                ["revalidate 50-plugin CF", f"{bulk * 1e3:.2f} ms"],
            ],
        )
        return single, bulk

    single, bulk = once(benchmark, experiment)
    # Bulk revalidation is roughly linear in the plug-in count.
    assert bulk < single * 50 * 3
