"""C2 — interception cost at the vtable level.

Paper claim (section 2): interception "is very efficient as it is
implemented at the vtable level".  The operational content: interception
cost applies *per intercepted slot only* (unintercepted slots and other
interfaces pay nothing), and the marginal cost per added interceptor is a
small constant (the chain is composed once per change, not walked with
conditionals per call).
"""

import time

import pytest

from benchmarks.conftest import once, report
from repro.opencom import Capsule, Component, Interface, Provided, Required

pytestmark = pytest.mark.bench

CALLS = 20_000


class IBench2Work(Interface):
    def work(self, x):
        ...

    def other(self, x):
        ...


class Worker(Component):
    PROVIDES = (Provided("main", IBench2Work),)

    def work(self, x):
        return x

    def other(self, x):
        return x


class Caller(Component):
    RECEPTACLES = (Required("target", IBench2Work),)


def build():
    capsule = Capsule("bench")
    worker = capsule.instantiate(Worker, "worker")
    caller = capsule.instantiate(Caller, "caller")
    capsule.bind(caller.receptacle("target"), worker.interface("main"))
    return worker, caller.receptacle("target").port("0")


def time_calls(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for i in range(CALLS):
            fn(i)
        best = min(best, time.perf_counter() - start)
    return best * 1e9 / CALLS


def test_c2_interceptor_count_sweep(benchmark):
    def experiment():
        worker, port = build()
        vtable = worker.interface("main").vtable
        rows = []
        baseline = time_calls(port.work)
        rows.append(["0 (unintercepted)", f"{baseline:.0f}", "-"])
        previous = baseline
        for n in (1, 2, 4, 8):
            while len(vtable.interceptor_names("work")) < n:
                index = len(vtable.interceptor_names("work"))
                vtable.add_pre("work", f"pre{index}", lambda ctx: None)
            cost = time_calls(port.work)
            rows.append(
                [str(n), f"{cost:.0f}", f"+{(cost - previous):.0f}"]
            )
            previous = cost
        report(
            "C2: per-slot interception cost",
            ["interceptors on slot", "ns/call", "marginal ns"],
            rows,
        )
        return baseline, previous

    baseline, with_eight = once(benchmark, experiment)
    # Eight interceptors must not blow up superlinearly (composed chain).
    assert with_eight < baseline * 40


def test_c2_unintercepted_slots_unaffected(benchmark):
    def experiment():
        worker, port = build()
        vtable = worker.interface("main").vtable
        before = time_calls(port.other)
        for i in range(4):
            vtable.add_pre("work", f"pre{i}", lambda ctx: None)
        after = time_calls(port.other)
        report(
            "C2b: interception is per-slot",
            ["slot", "ns/call before", "ns/call after intercepting 'work'"],
            [["other (never intercepted)", f"{before:.0f}", f"{after:.0f}"]],
        )
        return before, after

    before, after = once(benchmark, experiment)
    assert after < before * 1.5  # untouched slot stays at baseline


def test_c2_detach_restores_baseline(benchmark):
    def experiment():
        worker, port = build()
        vtable = worker.interface("main").vtable
        baseline = time_calls(port.work)
        vtable.add_pre("work", "temp", lambda ctx: None)
        intercepted = time_calls(port.work)
        vtable.remove_interceptor("work", "temp")
        restored = time_calls(port.work)
        return baseline, intercepted, restored

    baseline, intercepted, restored = once(benchmark, experiment)
    assert intercepted > baseline
    assert restored < intercepted
    assert restored < baseline * 1.5
