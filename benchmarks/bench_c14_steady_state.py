"""C14 — pooled buffer lifecycle: zero steady-state allocation.

PR 3 made the forwarding path zero-copy, but packets were still *born*
outside the pool discipline: every trace packet arrived as a standalone
object, and a buffer's death depended on which component happened to end
its life.  This experiment closes the loop end to end — the paper's
stratum-1 buffer-management CF story:

- **ingress**: a :class:`~repro.osbase.nic.Nic` bound to a
  :class:`~repro.osbase.buffers.BufferPool` materialises each arriving
  raw frame as a pooled :class:`~repro.netsim.wire.WirePacket` (exactly
  one acquire + one recorded copy per packet);
- **datapath**: the four systems (CF vtable, CF fused, Click-style,
  monolithic) move buffer *references*, never bytes;
- **egress**: the CF pipelines terminate in
  :class:`~repro.router.components.nicadapters.TransmitAdapter` per-hop
  TX NICs whose wire drain releases every buffer back to the pool; the
  baselines use their recycling terminal sinks.

All four systems share one NAPI-style front-end loop (deposit a batch of
raw frames → ``drain_rx`` → one ``push_batch``), with a pool of only
``4 × batch`` buffers servicing thousands of packets per round — the
loop only survives if recycling actually works.

Deterministic headline criteria (event counting, asserted in smoke mode
too, for every system):

- **allocations / packet = 0.00** over the measured rounds: the
  :class:`~repro.osbase.memory.CopyLedger` records every fresh backing
  store carve (``Buffer.__init__``), so any standalone-buffer fallback
  or copy-on-write escape fails the run;
- **net acquires / packet = 0.00**: ``acquired_total`` and
  ``released_total`` advance in lock-step (every acquire is matched by a
  release on some drop/egress path);
- **full free-list recovery**: after the final drain the pool's free
  count returns exactly to its pre-trace mark (zero occupancy drift).

The paper's C6 ordering (monolithic ≥ Click ≥ CF fused ≥ CF vtable) is
asserted on the same loop, with the usual slack.
"""

import gc
import time

import pytest

from benchmarks.bench_c6_datapath import PACKETS, routes_with_default
from benchmarks.conftest import scaled, once, report
from repro.baselines import ClickRouter, MonolithicRouter, standard_click_config
from repro.netsim import batched, udp_route_trace
from repro.opencom import Capsule, fuse_pipeline
from repro.osbase import DATAPATH_LEDGER, BufferPool, Nic
from repro.router import build_forwarding_pipeline

pytestmark = pytest.mark.bench

BATCH = 32
#: Steady-state rounds measured after one warm-up round.
ROUNDS = scaled(4, 2)
#: Interleaved repeats, best elapsed wins (lifecycle counters are
#: deterministic, so round one's counts are kept — same style as C13).
REPEATS = 3
BUFFER_SIZE = 128
#: The whole point: a pool far smaller than the trace.  Each chunk of
#: BATCH frames is ingested, forwarded, and flushed before the next, so
#: ~BATCH buffers are ever in flight — 4x is slack, not headroom.
POOL_BUFFERS = BATCH * 4


def make_frames(routes):
    """The C6 trace as raw wire bytes (what actually arrives at a NIC);
    built untimed, reused every round — each round's TTLs start fresh."""
    return [packet.to_bytes() for packet in udp_route_trace(routes, count=PACKETS)]


def steady_measure(one_round, forwarded, pool, rx_nic):
    """Warm up one round, then measure ROUNDS of steady-state forwarding.

    Returns per-run lifecycle accounting: the ledger's allocation delta,
    the pool's acquire/release deltas, and the free-list recovery check
    inputs, plus elapsed time and packets forwarded.
    """
    one_round()  # warm-up: faults every pool buffer into circulation
    gc.collect()
    base_forwarded = forwarded()
    free_before = pool.stats()["free"]
    acquired_before = pool.acquired_total
    released_before = pool.released_total
    snap = DATAPATH_LEDGER.snapshot()
    start = time.perf_counter()
    for _ in range(ROUNDS):
        one_round()
    elapsed = time.perf_counter() - start
    stats = pool.stats()
    return {
        "elapsed": elapsed,
        "forwarded": forwarded() - base_forwarded,
        "allocations": DATAPATH_LEDGER.delta(snap)["allocations"],
        "acquired": pool.acquired_total - acquired_before,
        "released": pool.released_total - released_before,
        "free_before": free_before,
        "free_after": stats["free"],
        "in_flight": stats["in_flight"],
        "rx_drops": rx_nic.counters["rx_drops"],
        "exhaustion_events": stats["exhaustion_events"],
    }


def _frontend():
    """One pooled RX NIC per system: drop-newest on exhaustion (counted),
    so a recycling failure shows up as lost packets, not a crash."""
    pool = BufferPool(BUFFER_SIZE, POOL_BUFFERS, exhaustion_policy="drop-newest")
    nic = Nic(rx_ring_size=BATCH * 2, pool=pool)
    return pool, nic


def _feed(nic, chunks, push_batch, after_chunk):
    """The shared NAPI loop: deposit one chunk of raw frames, drain the
    RX ring into the datapath as one batch, let the system service it."""
    receive = nic.receive_frame
    drain = nic.drain_rx
    for chunk in chunks:
        for frame in chunk:
            receive(frame)
        got = []
        drain(got.append)
        if got:
            push_batch(got)
        after_chunk()


def run_cf(routes, *, fused):
    pool, rx_nic = _frontend()
    hops = sorted(set(routes.values()))
    tx_nics = {hop: Nic(tx_ring_size=BATCH * 4) for hop in hops}
    pipeline = build_forwarding_pipeline(
        Capsule("dut"), routes=routes, tx_nics=tx_nics
    )
    if fused:
        fuse_pipeline(list(pipeline.capsule.components().values()))
    chunks = list(batched(make_frames(routes), BATCH))

    def one_round():
        _feed(rx_nic, chunks, pipeline.push_batch, pipeline.flush_tx)

    def forwarded():
        return sum(
            adapter.counters.get("tx", 0)
            for adapter in pipeline.tx_adapters.values()
        )

    return steady_measure(one_round, forwarded, pool, rx_nic)


def run_monolithic(routes):
    pool, rx_nic = _frontend()
    router = MonolithicRouter(
        routes, queue_capacity=BATCH * 4, recycle_delivered=True
    )
    chunks = list(batched(make_frames(routes), BATCH))

    def one_round():
        _feed(rx_nic, chunks, router.push_batch, lambda: router.service(budget=BATCH))

    return steady_measure(one_round, lambda: router.counters["tx"], pool, rx_nic)


def run_click(routes):
    pool, rx_nic = _frontend()
    router = ClickRouter(
        standard_click_config(
            routes=routes, queue_capacity=BATCH * 4, recycle_sinks=True
        )
    )
    chunks = list(batched(make_frames(routes), BATCH))

    def one_round():
        _feed(rx_nic, chunks, router.push_batch, lambda: router.service(budget=BATCH))

    def forwarded():
        return sum(
            element.counters.get("rx", 0)
            for name, element in router.elements.items()
            if name.startswith("sink-")
        )

    return steady_measure(one_round, forwarded, pool, rx_nic)


def sweep(runners, routes):
    """Interleaved best-of-REPEATS timing; lifecycle counters (exact
    event counts) are kept from round one and cross-checked for
    determinism on later rounds."""
    results: dict[str, dict] = {}
    for _ in range(REPEATS):
        for name, runner in runners.items():
            outcome = runner(routes)
            if name not in results:
                results[name] = outcome
            else:
                kept = results[name]
                assert outcome["forwarded"] == kept["forwarded"], name
                assert outcome["allocations"] == kept["allocations"], name
                kept["elapsed"] = min(kept["elapsed"], outcome["elapsed"])
    return results


def test_c14_steady_state_lifecycle(benchmark):
    def experiment():
        routes = routes_with_default()
        runners = {
            "CF vtable": lambda r: run_cf(r, fused=False),
            "CF fused": lambda r: run_cf(r, fused=True),
            "Click-style": lambda r: run_click(r),
            "monolithic": lambda r: run_monolithic(r),
        }
        results = sweep(runners, routes)
        base = results["CF vtable"]["elapsed"]
        rows = []
        for name, res in results.items():
            pps = res["forwarded"] / res["elapsed"]
            rows.append(
                [
                    name,
                    f"{pps / 1e3:.0f}",
                    f"{base / res['elapsed']:.2f}x",
                    f"{res['allocations'] / max(res['forwarded'], 1):.2f}",
                    f"{(res['acquired'] - res['released']) / max(res['forwarded'], 1):.2f}",
                    f"{res['acquired'] / max(res['forwarded'], 1):.2f}",
                    res["forwarded"],
                ]
            )
        report(
            f"C14: steady-state pooled lifecycle, batch-{BATCH}, "
            f"{POOL_BUFFERS}-buffer pool, {ROUNDS}x{PACKETS} packets",
            [
                "system",
                "kpps",
                "vs vtable",
                "allocs/pkt",
                "net acq/pkt",
                "acq/pkt",
                "forwarded",
            ],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    expected = ROUNDS * PACKETS
    for name, res in results.items():
        # Nothing was lost: the pool recycled fast enough for a 128-buffer
        # pool to carry every packet of every round.
        assert res["forwarded"] == expected, (name, res)
        assert res["rx_drops"] == 0, (name, res)
        assert res["exhaustion_events"] == 0, (name, res)
        # Headline: zero steady-state allocation.  Every buffer carve in
        # the measured region would show in the ledger; there are none —
        # warm forwarding runs entirely on recycled pool buffers.
        assert res["allocations"] == 0, (name, res)
        # One acquire per packet at ingress, each matched by a release on
        # egress: zero net pool acquires per forwarded packet.
        assert res["acquired"] == expected, (name, res)
        assert res["acquired"] == res["released"], (name, res)
        # Full free-list recovery: occupancy returns exactly to its
        # pre-trace mark once the last round drains.
        assert res["in_flight"] == 0, (name, res)
        assert res["free_after"] == res["free_before"], (name, res)

    # Paper ordering on the same loop (C6/C13 slack style).  The
    # fused/vtable pair gets the same 0.9 slack as the others: its real
    # gap here is ~2% (fusion adds little once batching amortises
    # dispatch — the C11/C12 finding), which sits inside wall-clock
    # noise when the smoke suite runs back to back.
    def pps(name):
        return results[name]["forwarded"] / results[name]["elapsed"]

    assert pps("monolithic") >= pps("Click-style") * 0.9
    assert pps("Click-style") >= pps("CF fused") * 0.9
    assert pps("CF fused") >= pps("CF vtable") * 0.9


def test_c14_fused_steady_round(benchmark):
    """pytest-benchmark timing of one fused steady-state round (ingest →
    forward → TX flush) — the whole lifecycle per iteration."""
    routes = routes_with_default()
    pool, rx_nic = _frontend()
    tx_nics = {hop: Nic(tx_ring_size=BATCH * 4) for hop in sorted(set(routes.values()))}
    pipeline = build_forwarding_pipeline(Capsule("dut"), routes=routes, tx_nics=tx_nics)
    fuse_pipeline(list(pipeline.capsule.components().values()))
    chunks = list(batched(make_frames(routes), BATCH))

    def one_round():
        _feed(rx_nic, chunks, pipeline.push_batch, pipeline.flush_tx)

    benchmark(one_round)
    assert pool.stats()["in_flight"] == 0
