"""C3 — bespoke configurations minimise memory footprint (the 18 KB claim).

Paper claim (section 5): "our Windows CE implementation now has a
footprint of only 18Kbytes"; and (section 4) bespoke configurations let
"desired functionality be achieved while minimising memory footprint" with
trade-offs varying across embedded / PC-router / core-router profiles.

Reproduced: three device profiles assembled from the same component
library; the embedded-minimal profile lands at ≈18 KB in the calibrated
accounting model, and the full-stack profile is several times larger.
"""

import pytest

from benchmarks.conftest import once, report
from repro.analysis import measure_capsule
from repro.appservices import CodeAdmission, ExecutionEnvironment
from repro.opencom import Capsule
from repro.osbase import BufferManagementCF, BufferPool, RoundRobinScheduler, ThreadManagerCF, VirtualClock
from repro.router import (
    Classifier,
    CollectorSink,
    FifoQueue,
    Forwarder,
    IPv4HeaderProcessor,
    NicEgress,
    NicIngress,
    PriorityLinkScheduler,
    ProtocolRecognizer,
    RedQueue,
    RouterCF,
    SourceNat,
    TokenBucketShaper,
    WfqScheduler,
    build_figure3_composite,
)

pytestmark = pytest.mark.bench


def embedded_minimal():
    """A wireless-sensor-grade forwarder: NIC in, v4 header handling, one
    queue, NIC out.  Nothing else."""
    capsule = Capsule("embedded")
    capsule.instantiate(NicIngress, "in")
    capsule.instantiate(IPv4HeaderProcessor, "v4")
    capsule.instantiate(lambda: FifoQueue(16), "q")
    capsule.instantiate(lambda: NicEgress(lambda p: True), "out")
    return capsule


def pc_router():
    """The Figure-3 gateway plus forwarding and NIC adapters."""
    capsule = Capsule("pc-router")
    build_figure3_composite(capsule)
    forwarder = capsule.instantiate(Forwarder, "forwarder")
    capsule.instantiate(NicIngress, "in0")
    capsule.instantiate(NicIngress, "in1")
    capsule.instantiate(lambda: NicEgress(lambda p: True), "out0")
    capsule.instantiate(lambda: NicEgress(lambda p: True), "out1")
    return capsule


def full_stack():
    """Everything: all four strata on one node."""
    capsule = Capsule("full-stack")
    build_figure3_composite(capsule)
    clock = VirtualClock()
    buffers = capsule.instantiate(BufferManagementCF, "buffer-cf")
    buffers.add_pool(capsule.instantiate(lambda: BufferPool(2048, 64), "pool"))
    capsule.adopt(
        ThreadManagerCF(clock, scheduler=RoundRobinScheduler()), "thread-cf"
    )
    capsule.instantiate(Forwarder, "forwarder")
    capsule.instantiate(lambda: SourceNat("203.0.113.1"), "nat")
    capsule.instantiate(
        lambda: TokenBucketShaper(clock, rate_bytes_per_s=1e6, burst_bytes=1e4),
        "shaper",
    )
    capsule.instantiate(lambda: RedQueue(256), "red")
    capsule.instantiate(WfqScheduler, "wfq")
    admission = CodeAdmission()
    capsule.instantiate(lambda: ExecutionEnvironment("node", admission), "ee")
    for i in range(4):
        capsule.instantiate(NicIngress, f"in{i}")
        capsule.instantiate(lambda: NicEgress(lambda p: True), f"out{i}")
    return capsule


def test_c3_footprint_profiles(benchmark):
    def experiment():
        profiles = {
            "embedded-minimal": embedded_minimal(),
            "pc-router": pc_router(),
            "full-stack": full_stack(),
        }
        reports = {name: measure_capsule(c) for name, c in profiles.items()}
        rows = [
            [
                name,
                len(profiles[name].components()),
                f"{r.total_kb:.1f}",
                f"{r.total_kb / reports['embedded-minimal'].total_kb:.1f}x",
            ]
            for name, r in reports.items()
        ]
        report(
            "C3: bespoke-configuration footprint",
            ["profile", "components", "KB", "vs embedded"],
            rows,
        )
        return reports

    reports = once(benchmark, experiment)
    embedded = reports["embedded-minimal"].total_kb
    # The 18 KB claim: the minimal profile lands in the same band.
    assert 14 <= embedded <= 22
    # Bespoke configuration pays only for what it plugs in.
    assert reports["pc-router"].total_kb > embedded * 1.3
    assert reports["full-stack"].total_kb > reports["pc-router"].total_kb


def test_c3_footprint_grows_with_instances_not_types(benchmark):
    def experiment():
        capsule = Capsule("scaling")
        capsule.instantiate(lambda: FifoQueue(16), "q0")
        one = measure_capsule(capsule).total_bytes
        for i in range(1, 10):
            capsule.instantiate(lambda: FifoQueue(16), f"q{i}")
        ten = measure_capsule(capsule).total_bytes
        return one, ten

    one, ten = once(benchmark, experiment)
    # Nine extra instances cost state only (code pages shared).
    per_instance = (ten - one) / 9
    assert per_instance < 2100  # state cost, not code+state
