"""C4 — runtime reconfiguration vs configuration-only vs monolithic.

Paper claims: NETKIT offers "run-time adapted/reconfigured" operation
(24x7); section 6 positions Click as "configuration (but not
reconfiguration)" and monolithic code as neither.

Reproduced: the same policy change (swap the best-effort queue for a
larger implementation) applied while a burst of traffic sits queued:

- the OpenCOM Router CF composite hot-swaps with the backlog carried
  across (zero loss);
- the Click baseline must rebuild, stranding everything queued;
- the monolithic router cannot express the change at all.
"""

import pytest

from benchmarks.conftest import once, report
from repro.baselines import (
    ClickRouter,
    MonolithicRouter,
    apply_class_filters,
    standard_click_config,
)
from repro.netsim import mixed_v4_v6_trace
from repro.opencom import Capsule
from repro.router import FifoQueue, build_figure3_composite

pytestmark = pytest.mark.bench

TRACE = 2_000
ROUTES = {"0.0.0.0/0": "out", "::/0": "out"}


def run_netkit(trace):
    capsule = Capsule("netkit")
    composite, pipeline = build_figure3_composite(capsule, queue_capacity=4096)
    half = len(trace) // 2
    for packet in trace[:half]:
        pipeline.push(packet)  # burst: backlog builds in the queues
    backlog = composite.member("queue:best-effort").depth
    composite.controller.replace_member(
        "queue:best-effort", lambda: FifoQueue(8192)
    )
    for packet in trace[half:]:
        pipeline.push(packet)
    pipeline.drain()
    delivered = pipeline.stages["sink"].collected_count()
    return {
        "delivered": delivered,
        "lost": len(trace) - delivered,
        "reconfigured": True,
        "note": f"hot swap with {backlog} packets queued",
    }


def run_click(trace):
    router = ClickRouter(
        standard_click_config(routes=ROUTES, queue_capacity=4096)
    )
    apply_class_filters(router)
    half = len(trace) // 2
    for packet in trace[:half]:
        router.push(packet)
    router.service(budget=0)
    delivered_before = router.sink("sink-out").counters.get("rx", 0)
    stranded = router.reconfigure(
        standard_click_config(routes=ROUTES, queue_capacity=8192)
    )
    for packet in trace[half:]:
        router.push(packet)
    router.service(budget=len(trace))
    delivered = delivered_before + router.sink("sink-out").counters.get("rx", 0)
    return {
        "delivered": delivered,
        "lost": stranded,
        "reconfigured": True,
        "note": f"rebuild stranded {stranded} queued packets",
    }


def run_monolithic(trace):
    router = MonolithicRouter(ROUTES, queue_capacity=4096)
    half = len(trace) // 2
    for packet in trace[:half]:
        router.push(packet)
    # The policy change simply cannot happen here.
    for packet in trace[half:]:
        router.push(packet)
    router.service(budget=len(trace))
    return {
        "delivered": router.counters["tx"],
        "lost": 0,
        "reconfigured": False,
        "note": "change not expressible without a code change",
    }


def test_c4_reconfiguration_comparison(benchmark):
    def experiment():
        results = {}
        for name, runner in (
            ("NETKIT Router CF", run_netkit),
            ("Click-style", run_click),
            ("monolithic", run_monolithic),
        ):
            trace = mixed_v4_v6_trace(count=TRACE, seed=31, v6_fraction=0.2)
            results[name] = runner(trace)
        rows = [
            [
                name,
                r["delivered"],
                r["lost"],
                "yes" if r["reconfigured"] else "no",
                r["note"],
            ]
            for name, r in results.items()
        ]
        report(
            "C4: the same policy change applied mid-burst",
            ["system", "delivered", "lost to change", "reconfigurable", "note"],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    netkit = results["NETKIT Router CF"]
    click = results["Click-style"]
    # Shape: NETKIT loses nothing to the swap; Click strands its backlog.
    assert netkit["lost"] == 0
    assert netkit["delivered"] == TRACE
    assert click["lost"] > 0
    assert click["delivered"] + click["lost"] == TRACE
    assert not results["monolithic"]["reconfigured"]


def test_c4_swap_latency(benchmark):
    """Time the hot swap itself (the service-interruption window)."""
    capsule = Capsule("latency")
    composite, pipeline = build_figure3_composite(capsule, queue_capacity=4096)
    for packet in mixed_v4_v6_trace(count=500, seed=32):
        pipeline.push(packet)
    counter = {"n": 0}

    def swap():
        counter["n"] += 1
        composite.controller.replace_member(
            "queue:best-effort", lambda: FifoQueue(4096 + counter["n"])
        )

    benchmark(swap)
    # The backlog survived every swap round.
    queue = composite.member("queue:best-effort")
    assert queue.depth > 0
