"""C5 — address-space isolation: overhead and crash containment.

Paper claim (section 5): untrusted constituents run "in a separate
address-space from the parent", bindings "transparently realised in terms
of OS-level IPC mechanisms", protecting against components "accidentally
taking down the whole router by crashing".

Reproduced: the same classifier graph run in-capsule vs cross-capsule
(marshalling overhead factor), and a crashing plug-in that kills only its
child capsule, after which the parent detects the fault and re-deploys.
"""

import time

import pytest

from benchmarks.conftest import once, report
from repro.netsim import make_udp_v4
from repro.opencom import Capsule, Component, IpcFault, Provided, Required, bind_across
from repro.router import Classifier, CollectorSink, IPacketPush

pytestmark = pytest.mark.bench

CALLS = 3_000


class Feeder(Component):
    RECEPTACLES = (Required("out", IPacketPush),)


def build_local():
    capsule = Capsule("local")
    feeder = capsule.instantiate(Feeder, "feeder")
    classifier = capsule.instantiate(lambda: Classifier(default_output="all"), "cls")
    sink = capsule.instantiate(CollectorSink, "sink")
    capsule.bind(feeder.receptacle("out"), classifier.interface("in0"))
    capsule.bind(classifier.receptacle("out"), sink.interface("in0"), connection_name="all")
    return capsule, feeder, sink


def build_isolated():
    capsule = Capsule("parent")
    child = capsule.spawn_child("untrusted")
    feeder = capsule.instantiate(Feeder, "feeder")
    classifier = child.instantiate(lambda: Classifier(default_output="all"), "cls")
    sink = child.instantiate(CollectorSink, "sink")
    bind_across(feeder.receptacle("out"), classifier.interface("in0"))
    child.bind(classifier.receptacle("out"), sink.interface("in0"), connection_name="all")
    return capsule, child, feeder, sink


def drive(feeder, count=CALLS):
    port = feeder.receptacle("out").port("0")
    start = time.perf_counter()
    for i in range(count):
        port.push(make_udp_v4("10.0.0.1", "10.0.0.2", dport=i % 100))
    return time.perf_counter() - start


def test_c5_ipc_overhead_factor(benchmark):
    def experiment():
        _, local_feeder, local_sink = build_local()
        local_time = drive(local_feeder)
        assert local_sink.collected_count() == CALLS

        parent, child, remote_feeder, remote_sink = build_isolated()
        remote_time = drive(remote_feeder)
        assert remote_sink.collected_count() == CALLS
        factor = remote_time / local_time
        channel_stats = None
        for binding in parent.bindings():
            if binding.kind == "ipc":
                proxy = binding.target.component
                channel_stats = proxy.channel
        rows = [
            ["in-capsule (vtable)", f"{local_time * 1e6 / CALLS:.1f}", "1.0x"],
            ["cross-capsule (IPC)", f"{remote_time * 1e6 / CALLS:.1f}", f"{factor:.1f}x"],
        ]
        report("C5: isolation overhead per packet", ["binding", "us/packet", "factor"], rows)
        if channel_stats is not None:
            print(
                f"    channel: {channel_stats.calls} calls, "
                f"{channel_stats.bytes_sent} bytes sent"
            )
        return factor

    factor = once(benchmark, experiment)
    # IPC costs real marshalling work: meaningfully slower, not absurd.
    assert 1.5 < factor < 2000


def test_c5_crash_containment_and_recovery(benchmark):
    class Bomb(Component):
        PROVIDES = (Provided("in0", IPacketPush),)

        def push(self, packet):
            raise MemoryError("wild pointer")

    def experiment():
        parent = Capsule("router")
        child = parent.spawn_child("plugin")
        feeder = parent.instantiate(Feeder, "feeder")
        bomb = child.instantiate(Bomb, "bomb")
        remote = bind_across(feeder.receptacle("out"), bomb.interface("in0"))

        fault = None
        try:
            feeder.receptacle("out").push(make_udp_v4("10.0.0.1", "10.0.0.2"))
        except IpcFault as exc:
            fault = exc
        assert fault is not None
        assert not child.alive
        assert parent.alive

        # Recovery: unbind the dead half, redeploy in a fresh capsule.
        remote.unbind()
        replacement_capsule = parent.spawn_child("plugin-2")
        classifier = replacement_capsule.instantiate(
            lambda: Classifier(default_output="all"), "cls"
        )
        sink = replacement_capsule.instantiate(CollectorSink, "sink")
        replacement_capsule.bind(
            classifier.receptacle("out"), sink.interface("in0"), connection_name="all"
        )
        bind_across(feeder.receptacle("out"), classifier.interface("in0"))
        feeder.receptacle("out").push(make_udp_v4("10.0.0.1", "10.0.0.2"))
        report(
            "C5b: crash containment",
            ["event", "child capsule", "parent capsule"],
            [
                ["component crash", "killed", "alive"],
                ["after redeploy", "fresh capsule serving", "alive"],
            ],
        )
        return sink.collected_count()

    assert once(benchmark, experiment) == 1
