"""C17 — compiled hot path: per-shard specialised forwarding functions.

C11 showed batching amortises *dispatch*; fusion then removed the
per-crossing indirection.  What remains on the fused batch path is the
interpreted body of every stage: generic ``checksum_ok``/``decrement_ttl``
calls, header re-packs, per-stage list handling.  C17 compiles the whole
uninterferable region — classifier -> LPM -> TTL/checksum -> queue — into
a single specialised callable per pipeline (the paper's "machine
instructions must be counted with care" taken to its conclusion: when the
meta-models guarantee no interceptors and a frozen graph, the component
boundaries can be erased entirely, and reflection revokes the specialised
function the moment that guarantee breaks).

Two compilation modes are measured:

- ``closure``: per-component specialised kernels composed as closures;
- ``source``:  one generated-source loop for the whole chain, built with
  ``compile()``/``exec`` and cross-stage facts (exact-class checksum
  arithmetic, inlined LPM cache probes, derived counters).

Shape asserted:

- compiled-source batch-32 >= 2x the fused batch-32 path on the C6 trace
  (the headline claim of the compilation layer);
- compiled-closure lands between fused and compiled-source;
- the paper's C6/C11 ordering survives:
  monolithic >= Click-style >= CF fused >= CF vtable.
"""

import gc
import time

import pytest

from benchmarks.bench_c6_datapath import HOPS, PACKETS, routes_with_default
from benchmarks.conftest import SMOKE, make_route_trace, once, report
from repro.baselines import ClickRouter, MonolithicRouter, standard_click_config
from repro.netsim import batched
from repro.opencom import Capsule, fuse_pipeline
from repro.router import build_forwarding_pipeline

pytestmark = pytest.mark.bench

BATCH = 32
#: Compiled-vs-fused gaps are the whole point here, and the >= 2x source
#: margin is tighter than C11's headline, so take the best of more
#: interleaved repeats than C11 uses (same rationale: a contention burst
#: degrades one repeat of every configuration, not every repeat of one).
REPEATS = 5

MODES = ("closure", "source")


def sweep(runners, routes):
    """Measure every runner REPEATS times (interleaved); return
    name -> (best pps, delivered), asserting deterministic delivery."""
    best: dict[str, float] = {}
    delivered: dict[str, int] = {}
    for _ in range(REPEATS):
        for name, runner in runners.items():
            gc.collect()
            elapsed, got = runner(routes, make_route_trace(routes, PACKETS))
            if name in delivered:
                assert got == delivered[name], name
            delivered[name] = got
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    return {name: (PACKETS / best[name], delivered[name]) for name in runners}


def _delivered(pipeline):
    return sum(
        sink.collected_count()
        for name, sink in pipeline.stages.items()
        if name.startswith("sink:")
    )


def run_cf_batch(routes, trace, *, fused):
    """The C11 batched path: vtable or fused, whole lists per crossing."""
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes)
    if fused:
        fuse_pipeline(list(capsule.components().values()))
    batches = list(batched(trace, BATCH))
    start = time.perf_counter()
    for batch in batches:
        pipeline.push_batch(batch)
    elapsed = time.perf_counter() - start
    return elapsed, _delivered(pipeline)


def run_cf_compiled(routes, trace, *, mode):
    """The compiled path: one specialised callable for the whole chain."""
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes, compiled=mode)
    plan = pipeline.compiled_plan
    assert plan is not None and plan.active and plan.mode == mode
    batches = list(batched(trace, BATCH))
    start = time.perf_counter()
    for batch in batches:
        pipeline.push_batch(batch)
    elapsed = time.perf_counter() - start
    return elapsed, _delivered(pipeline)


def run_monolithic_batch(routes, trace):
    router = MonolithicRouter(routes, queue_capacity=PACKETS + 1)
    batches = list(batched(trace, BATCH))
    start = time.perf_counter()
    for batch in batches:
        router.push_batch(batch)
    router.service(budget=PACKETS)
    elapsed = time.perf_counter() - start
    return elapsed, router.counters["tx"]


def run_click_batch(routes, trace):
    router = ClickRouter(standard_click_config(routes=routes, queue_capacity=PACKETS + 1))
    batches = list(batched(trace, BATCH))
    start = time.perf_counter()
    for batch in batches:
        router.push_batch(batch)
    router.service(budget=PACKETS)
    elapsed = time.perf_counter() - start
    delivered = sum(
        element.counters.get("rx", 0)
        for name, element in router.elements.items()
        if name.startswith("sink-")
    )
    return elapsed, delivered


def test_c17_compiled_throughput(benchmark):
    def experiment():
        routes = routes_with_default()
        runners = {
            f"monolithic, batch-{BATCH}": run_monolithic_batch,
            f"Click-style, batch-{BATCH}": run_click_batch,
            f"CF vtable, batch-{BATCH}": lambda r, t: run_cf_batch(r, t, fused=False),
            f"CF fused, batch-{BATCH}": lambda r, t: run_cf_batch(r, t, fused=True),
            **{
                f"CF compiled/{mode}, batch-{BATCH}": (
                    lambda r, t, m=mode: run_cf_compiled(r, t, mode=m)
                )
                for mode in MODES
            },
        }
        results = sweep(runners, routes)

        base = results[f"CF fused, batch-{BATCH}"][0]
        rows = [
            [name, f"{pps / 1e3:.0f}", f"{pps / base:.2f}x", delivered]
            for name, (pps, delivered) in results.items()
        ]
        report(
            "C17: compiled hot path vs fused/baselines, 1k-route IPv4 "
            f"trace ({PACKETS} packets, batch-{BATCH})",
            ["system", "kpps", "vs CF fused", "delivered"],
            rows,
        )
        print(f"[bench-meta] modes={','.join(MODES)}")
        print(f"[bench-meta] repeats={REPEATS}")
        return {name: pps for name, (pps, _) in results.items()}, results

    throughput, results = once(benchmark, experiment)
    for name, (_, delivered) in results.items():
        assert delivered == PACKETS, name

    mono = throughput[f"monolithic, batch-{BATCH}"]
    click = throughput[f"Click-style, batch-{BATCH}"]
    vtable = throughput[f"CF vtable, batch-{BATCH}"]
    fused = throughput[f"CF fused, batch-{BATCH}"]
    closure = throughput[f"CF compiled/closure, batch-{BATCH}"]
    source = throughput[f"CF compiled/source, batch-{BATCH}"]

    # Magnitude claims are noise-dominated on the smoke trace; smoke mode
    # asserts orderings only (below).
    if not SMOKE:
        # Headline: compiling the uninterferable region buys >= 2x over
        # the fused batch path on the same trace.
        assert source >= 2.0 * fused
        # Closure composition alone (no generated source) already erases
        # a large share of the interpreted-stage cost.
        assert closure >= 1.4 * fused

    # Paper ordering preserved (same 0.9 slack style as C6/C11), and the
    # compiled rows slot in above fused: source >= closure >= fused.
    assert mono >= click * 0.9
    assert click >= fused * 0.9
    assert fused >= vtable * 0.9
    assert source >= closure * 0.9
    assert closure >= fused * 0.9


def test_c17_compiled_batch_pps(benchmark):
    """pytest-benchmark timing for one compiled-source batch-32 crossing."""
    routes = routes_with_default()
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes, compiled="source")
    trace = make_route_trace(routes, PACKETS)
    batches = list(batched(trace, BATCH))
    index = {"i": 0}

    def push_one_batch():
        pipeline.push_batch(batches[index["i"] % len(batches)])
        index["i"] += 1

    benchmark(push_one_batch)


def test_c17_compilation_plan_summary():
    """The compilation plan summary is exposed for benchmark logs."""
    routes = routes_with_default()
    capsule = Capsule("dut")
    pipeline = build_forwarding_pipeline(capsule, routes=routes, compiled="source")
    plan = pipeline.compiled_plan
    summary = plan.summary()
    assert summary.startswith("compiled ")
    assert plan.mode == "source"
    assert plan.source is not None
    print(f"\nC17 compilation: {summary} (hops: {', '.join(HOPS)})")
