"""C13 — zero-copy wire-format datapath: byte work per forwarded packet.

PR 1/PR 2 amortised *dispatch* (push/pull batching); after them the
dominant per-packet cost on the C6 path is *byte work* — every hop packs
a 20-byte header to validate the checksum and packs another to refresh it
after the TTL decrement.  The zero-copy path (:mod:`repro.netsim.wire`)
materialises each packet once into a pooled buffer and then reads/writes
header fields through ``unpack_from``/``pack_into`` on a memoryview,
patching the checksum with RFC 1624 incremental updates, so the per-hop
allocation count drops to zero.

Measured on the same 1k-route IPv4 trace as C6, all systems at batch-32:

- **copies/packet** — the :class:`~repro.osbase.memory.CopyLedger` delta
  over the timed region divided by forwarded packets.  This is exact
  event counting, not timing, so it is asserted in smoke mode too: the
  wire path must do at least 2x fewer byte-copies per forwarded packet
  than the copy path (headline criterion);
- **per-packet time** — wire vs copy path on the component router, and
  the paper's C6 ordering across all four systems *on the wire path*
  (monolithic >= Click-style >= CF fused >= CF vtable), asserted in both
  modes: all four share the polymorphic byte path, so the comparison
  stays structural.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the trace and keeps the
ordering + copies/packet assertions, skipping the timing-magnitude claim.
"""

import gc
import time

import pytest

from benchmarks.bench_c6_datapath import PACKETS, routes_with_default
from benchmarks.conftest import SMOKE, make_route_trace, once, report
from repro.baselines import ClickRouter, MonolithicRouter, standard_click_config
from repro.netsim import batched, wire_trace
from repro.opencom import Capsule, fuse_pipeline
from repro.osbase import DATAPATH_LEDGER, BufferPool
from repro.router import build_forwarding_pipeline

pytestmark = pytest.mark.bench

HEADLINE_BATCH = 32
#: Interleaved repeats, best elapsed wins (same rationale as C11/C12);
#: ledger deltas are deterministic, so the first repeat's counts are kept.
REPEATS = 3
#: Wire buffers come from a real buffer-management pool so the experiment
#: also exercises pool accounting (one acquire per packet, zero after).
BUFFER_SIZE = 128


def _wire(trace):
    """Materialise a trace onto the wire path (untimed setup): one pooled
    buffer per packet, the single copy the zero-copy path ever pays."""
    pool = BufferPool(BUFFER_SIZE, len(trace) + 8)
    packets = wire_trace(trace, pool=pool)
    assert pool.acquired_total == len(trace)
    return packets


def _run_timed(push_all, delivered_fn):
    """Time *push_all* and return (elapsed, delivered, ledger delta)."""
    gc.collect()
    snap = DATAPATH_LEDGER.snapshot()
    start = time.perf_counter()
    push_all()
    elapsed = time.perf_counter() - start
    return elapsed, delivered_fn(), DATAPATH_LEDGER.delta(snap)


def run_cf(routes, trace, *, fused):
    pipeline = build_forwarding_pipeline(Capsule("dut"), routes=routes)
    if fused:
        fuse_pipeline(list(pipeline.capsule.components().values()))
    batches = list(batched(trace, HEADLINE_BATCH))

    def push_all():
        push_batch = pipeline.push_batch
        for batch in batches:
            push_batch(batch)

    def delivered():
        return sum(
            sink.collected_count()
            for name, sink in pipeline.stages.items()
            if name.startswith("sink:")
        )

    return _run_timed(push_all, delivered)


def run_monolithic(routes, trace):
    router = MonolithicRouter(routes, queue_capacity=PACKETS + 1)
    batches = list(batched(trace, HEADLINE_BATCH))

    def push_all():
        push_batch = router.push_batch
        for batch in batches:
            push_batch(batch)
        router.service(budget=PACKETS)

    return _run_timed(push_all, lambda: router.counters["tx"])


def run_click(routes, trace):
    router = ClickRouter(
        standard_click_config(routes=routes, queue_capacity=PACKETS + 1)
    )
    batches = list(batched(trace, HEADLINE_BATCH))

    def push_all():
        push_batch = router.push_batch
        for batch in batches:
            push_batch(batch)
        router.service(budget=PACKETS)

    def delivered():
        return sum(
            element.counters.get("rx", 0)
            for name, element in router.elements.items()
            if name.startswith("sink-")
        )

    return _run_timed(push_all, delivered)


def sweep(runners, routes):
    """Interleaved best-of-REPEATS timing; ledger counts from round one."""
    best: dict[str, float] = {}
    delivered: dict[str, int] = {}
    copies: dict[str, dict] = {}
    for _ in range(REPEATS):
        for name, runner in runners.items():
            elapsed, got, delta = runner(routes)
            if name in delivered:
                assert got == delivered[name], name
            else:
                copies[name] = delta
            delivered[name] = got
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    return {
        name: (PACKETS / best[name], delivered[name], copies[name])
        for name in runners
    }


def test_c13_zerocopy_byte_work(benchmark):
    def experiment():
        routes = routes_with_default()
        runners = {
            "CF vtable, copy path": lambda r: run_cf(
                r, make_route_trace(r, PACKETS), fused=False
            ),
            "CF fused, copy path": lambda r: run_cf(
                r, make_route_trace(r, PACKETS), fused=True
            ),
            "CF vtable, wire path": lambda r: run_cf(
                r, _wire(make_route_trace(r, PACKETS)), fused=False
            ),
            "CF fused, wire path": lambda r: run_cf(
                r, _wire(make_route_trace(r, PACKETS)), fused=True
            ),
            "monolithic, wire path": lambda r: run_monolithic(
                r, _wire(make_route_trace(r, PACKETS))
            ),
            "Click-style, wire path": lambda r: run_click(
                r, _wire(make_route_trace(r, PACKETS))
            ),
        }
        results = sweep(runners, routes)
        base = results["CF vtable, copy path"][0]
        rows = [
            [
                name,
                f"{pps / 1e3:.0f}",
                f"{pps / base:.2f}x",
                f"{delta['copies'] / max(got, 1):.2f}",
                f"{delta['copy_bytes'] / max(got, 1):.0f}",
                got,
            ]
            for name, (pps, got, delta) in results.items()
        ]
        report(
            f"C13: zero-copy wire datapath, batch-{HEADLINE_BATCH}, "
            f"1k-route IPv4 trace ({PACKETS} packets)",
            ["system", "kpps", "vs copy vtable", "copies/pkt", "copy B/pkt", "delivered"],
            rows,
        )
        return results

    results = once(benchmark, experiment)
    for name, (_, got, _) in results.items():
        assert got == PACKETS, name

    def copies_per_packet(name):
        _, got, delta = results[name]
        return delta["copies"] / max(got, 1)

    # Headline (deterministic, asserted in smoke too): the wire path does
    # >= 2x fewer byte-copies per forwarded packet than the copy path.
    for regime in ("vtable", "fused"):
        copy_cpp = copies_per_packet(f"CF {regime}, copy path")
        wire_cpp = copies_per_packet(f"CF {regime}, wire path")
        assert wire_cpp * 2 <= copy_cpp, (regime, wire_cpp, copy_cpp)
    # The copy path's byte work is real: one header pack to validate, one
    # to refresh after the TTL decrement.
    assert copies_per_packet("CF fused, copy path") >= 2

    # Paper ordering on the wire path (same slack style as C6/C12).
    mono = results["monolithic, wire path"][0]
    click = results["Click-style, wire path"][0]
    fused = results["CF fused, wire path"][0]
    vtable = results["CF vtable, wire path"][0]
    assert mono >= click * 0.9
    assert click >= fused * 0.9
    # Same 0.9 slack as the other pairs: the fused/vtable gap is ~1-2%
    # once batching amortises dispatch, inside back-to-back wall-clock noise.
    assert fused >= vtable * 0.9

    if not SMOKE:
        # Dropping the per-hop byte work must not cost time: the wire path
        # is at least as fast as the copy path (gross-regression slack).
        assert (
            results["CF fused, wire path"][0]
            >= results["CF fused, copy path"][0] * 0.9
        )


def test_c13_fused_wire_batch(benchmark):
    """pytest-benchmark timing for one fused wire-path batch-32 push."""
    routes = routes_with_default()
    pipeline = build_forwarding_pipeline(Capsule("dut"), routes=routes)
    fuse_pipeline(list(pipeline.capsule.components().values()))
    trace = _wire(make_route_trace(routes, PACKETS))
    batches = list(batched(trace, HEADLINE_BATCH))
    index = {"i": 0}

    def push_one_batch():
        batch = batches[index["i"] % len(batches)]
        index["i"] += 1
        for packet in batch:
            # Re-arm in place so repeated rounds never expire the TTL
            # (both writes stay on the view; no allocation).
            packet.net.ttl = 64
            packet.net.refresh_checksum()
        pipeline.push_batch(batch)

    benchmark(push_one_batch)
