"""The IXP1200 model and the placement meta-model (section 5's planned
port, built out)."""

from repro.ixp.hardware import (
    DEFAULT_PROFILES,
    MICROENGINE,
    SCRATCHPAD,
    SDRAM,
    SRAM,
    STRONGARM,
    CostProfile,
    IxpBoard,
    MemoryLevel,
    ProcessingElement,
)
from repro.ixp.placement import (
    FleetPlacement,
    PlacedComponent,
    PlacementMetaModel,
    PlacementReport,
    ShardPlacement,
    ShardSlot,
)
from repro.ixp.runtime import BoardSimulator, SimulationResult, StageVisit

__all__ = [
    "BoardSimulator",
    "CostProfile",
    "DEFAULT_PROFILES",
    "FleetPlacement",
    "IxpBoard",
    "MICROENGINE",
    "MemoryLevel",
    "PlacedComponent",
    "PlacementMetaModel",
    "PlacementReport",
    "ProcessingElement",
    "SCRATCHPAD",
    "SDRAM",
    "SRAM",
    "STRONGARM",
    "ShardPlacement",
    "ShardSlot",
    "SimulationResult",
    "StageVisit",
]
