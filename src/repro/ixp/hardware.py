"""IXP1200 hardware model.

The paper's planned port targets the Intel IXP1200: "an exotic hardware
architecture comprising multiple processors — both a StrongARM control
processor and Intel-proprietary 'micro-engine' processors — together with
distributed/hierarchical memory arrays".

The model is a calibrated cost model, which is all the placement
experiment needs: processing elements with clock rates and capability
flags, and a three-level memory hierarchy (scratchpad / SRAM / SDRAM) with
per-access latencies.  Component *cost profiles* (instructions + memory
references per packet) combine with a PE and a memory level to give a
per-packet service time; the placement meta-model optimises over exactly
this quantity.

Figures are order-of-magnitude faithful to the real part (232 MHz
StrongARM, 6 micro-engines at ~177-232 MHz, scratchpad ~ a few cycles,
SRAM ~ 16-20 cycles, SDRAM ~ 33-40 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opencom.errors import PlacementError

#: PE kinds.
STRONGARM = "strongarm"
MICROENGINE = "microengine"

#: Memory levels, fastest first.
SCRATCHPAD = "scratchpad"
SRAM = "sram"
SDRAM = "sdram"


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy."""

    name: str
    capacity_bytes: int
    access_cycles: float


@dataclass
class ProcessingElement:
    """One processor on the board."""

    name: str
    kind: str
    clock_hz: float
    #: Can this PE run control-plane/management components?  Only the
    #: StrongARM runs the OpenCOM runtime's management half.
    control_capable: bool

    def cycle_time(self) -> float:
        """Seconds per cycle."""
        return 1.0 / self.clock_hz


@dataclass
class CostProfile:
    """Per-packet cost of one component on this board.

    ``instructions`` execute on the PE; ``memory_references`` hit the
    component's assigned memory level; ``control_plane`` pins the
    component to a control-capable PE.
    """

    instructions: float
    memory_references: float = 0.0
    control_plane: bool = False
    #: Preferred memory level (falls back down the hierarchy when full).
    memory_level: str = SRAM
    #: State bytes the component needs resident.
    state_bytes: int = 512


#: Default cost profiles for the stratum-2 component library, in
#: instructions per packet.  Values are representative of hand-written
#: micro-engine code for the same function (classification ~ hundreds of
#: instructions, LPM ~ tens of memory references, header processing ~
#: small fixed cost).
DEFAULT_PROFILES: dict[str, CostProfile] = {
    "ProtocolRecognizer": CostProfile(instructions=20, memory_references=1),
    "ChecksumValidator": CostProfile(instructions=120, memory_references=5),
    "IPv4HeaderProcessor": CostProfile(instructions=90, memory_references=4),
    "IPv6HeaderProcessor": CostProfile(instructions=70, memory_references=4),
    "Classifier": CostProfile(instructions=250, memory_references=8),
    "FifoQueue": CostProfile(instructions=40, memory_references=6, memory_level=SDRAM, state_bytes=16384),
    "RedQueue": CostProfile(instructions=80, memory_references=8, memory_level=SDRAM, state_bytes=16384),
    "PriorityLinkScheduler": CostProfile(instructions=60, memory_references=4),
    "DrrScheduler": CostProfile(instructions=90, memory_references=6),
    "WfqScheduler": CostProfile(instructions=140, memory_references=8),
    "Forwarder": CostProfile(instructions=180, memory_references=24, memory_level=SRAM, state_bytes=65536),
    "TokenBucketShaper": CostProfile(instructions=70, memory_references=3),
    "Policer": CostProfile(instructions=60, memory_references=3),
    "SourceNat": CostProfile(instructions=150, memory_references=10, state_bytes=32768),
    "CollectorSink": CostProfile(instructions=10, memory_references=1),
    "DropSink": CostProfile(instructions=5),
    "NicIngress": CostProfile(instructions=50, memory_references=4, memory_level=SCRATCHPAD),
    "NicEgress": CostProfile(instructions=50, memory_references=4, memory_level=SCRATCHPAD),
    "ExecutionEnvironment": CostProfile(
        instructions=4000, memory_references=60, control_plane=True, state_bytes=131072
    ),
    "Controller": CostProfile(
        instructions=500, memory_references=10, control_plane=True, state_bytes=8192
    ),
    "FlowManager": CostProfile(instructions=200, memory_references=12, state_bytes=32768),
    "MediaDownsampler": CostProfile(instructions=60, memory_references=4),
    "FecEncoder": CostProfile(instructions=800, memory_references=30),
    "FecDecoder": CostProfile(instructions=900, memory_references=34),
}


class IxpBoard:
    """One IXP1200: a StrongARM, six micro-engines, three memory levels."""

    def __init__(
        self,
        *,
        strongarm_hz: float = 232e6,
        microengine_hz: float = 177e6,
        microengines: int = 6,
    ) -> None:
        self.pes: dict[str, ProcessingElement] = {
            "sa0": ProcessingElement("sa0", STRONGARM, strongarm_hz, control_capable=True)
        }
        for index in range(microengines):
            name = f"ue{index}"
            self.pes[name] = ProcessingElement(
                name, MICROENGINE, microengine_hz, control_capable=False
            )
        self.memory: dict[str, MemoryLevel] = {
            SCRATCHPAD: MemoryLevel(SCRATCHPAD, 4 * 1024, 3.0),
            SRAM: MemoryLevel(SRAM, 8 * 1024 * 1024, 18.0),
            SDRAM: MemoryLevel(SDRAM, 256 * 1024 * 1024, 36.0),
        }
        #: Memory consumed per level by placed components.
        self.memory_used: dict[str, int] = {level: 0 for level in self.memory}

    def pe(self, name: str) -> ProcessingElement:
        """Look a PE up by name."""
        try:
            return self.pes[name]
        except KeyError:
            raise PlacementError(f"unknown processing element {name!r}") from None

    def microengines(self) -> list[ProcessingElement]:
        """The micro-engine PEs in index order."""
        return [pe for pe in self.pes.values() if pe.kind == MICROENGINE]

    def control_processor(self) -> ProcessingElement:
        """The StrongARM."""
        return self.pes["sa0"]

    # -- memory management ----------------------------------------------------------

    def place_state(self, profile: CostProfile) -> str:
        """Reserve *profile.state_bytes* at the preferred level, spilling
        down the hierarchy; returns the level actually used."""
        order = [SCRATCHPAD, SRAM, SDRAM]
        start = order.index(profile.memory_level)
        for level_name in order[start:]:
            level = self.memory[level_name]
            if self.memory_used[level_name] + profile.state_bytes <= level.capacity_bytes:
                self.memory_used[level_name] += profile.state_bytes
                return level_name
        raise PlacementError(
            f"no memory level can hold {profile.state_bytes} bytes of state"
        )

    def release_state(self, level_name: str, state_bytes: int) -> None:
        """Return reserved state bytes to a level."""
        self.memory_used[level_name] = max(
             0, self.memory_used[level_name] - state_bytes
        )

    # -- cost model --------------------------------------------------------------------

    def service_time(
        self, profile: CostProfile, pe: ProcessingElement, memory_level: str
    ) -> float:
        """Seconds of PE time to process one packet of this component."""
        level = self.memory[memory_level]
        cycles = profile.instructions + profile.memory_references * level.access_cycles
        if pe.kind == STRONGARM and not profile.control_plane:
            # Data-plane code on the control processor pays interrupt/OS
            # overhead the micro-engines do not have.
            cycles *= 1.6
        return cycles * pe.cycle_time()

    def describe(self) -> dict:
        """Board summary."""
        return {
            "pes": {
                name: {"kind": pe.kind, "clock_mhz": pe.clock_hz / 1e6}
                for name, pe in sorted(self.pes.items())
            },
            "memory": {
                name: {
                    "capacity": level.capacity_bytes,
                    "access_cycles": level.access_cycles,
                    "used": self.memory_used[name],
                }
                for name, level in self.memory.items()
            },
        }
