"""Placement-aware execution: simulate a pipeline running on the board.

The analytic evaluation in :mod:`repro.ixp.placement` scores placements by
cost model; this module cross-checks it by *simulation*: a packet trace is
run through the pipeline graph with each stage's service time charged to
its assigned PE, and per-PE busy time accumulated.  Throughput is then
``packets / max(PE busy time)``, with the same bottleneck structure the
analytic model predicts — the agreement between the two is itself a test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ixp.hardware import IxpBoard
from repro.ixp.placement import PlacementMetaModel


@dataclass
class SimulationResult:
    """Outcome of one board simulation."""

    packets: int
    per_pe_busy: dict[str, float]
    throughput_pps: float
    bottleneck: str
    elapsed_s: float
    per_component_packets: dict[str, int] = field(default_factory=dict)


@dataclass
class StageVisit:
    """One stage of the pipeline graph: which component, and the fraction
    of packets that reach it (conditional stages like per-class queues see
    a fraction of the stream)."""

    component: str
    fraction: float = 1.0


class BoardSimulator:
    """Run a stage graph over an :class:`IxpBoard` placement."""

    def __init__(self, board: IxpBoard, placement: PlacementMetaModel) -> None:
        self.board = board
        self.placement = placement

    def run(self, stages: list[StageVisit], packets: int) -> SimulationResult:
        """Charge *packets* through the stage list.

        Each stage's per-packet service time (from the cost model, at the
        component's placed PE and memory level) accumulates on that PE for
        ``packets * fraction`` packets.
        """
        per_pe_busy: dict[str, float] = {name: 0.0 for name in self.board.pes}
        per_component: dict[str, int] = {}
        managed = self.placement.components()
        for stage in stages:
            placed = managed.get(stage.component)
            if placed is None or placed.pe is None:
                continue
            count = int(packets * stage.fraction)
            per_component[stage.component] = count
            service = self.board.service_time(
                placed.profile,
                self.board.pe(placed.pe),
                placed.memory_level or placed.profile.memory_level,
            )
            per_pe_busy[placed.pe] += service * count
        bottleneck = max(per_pe_busy, key=lambda name: per_pe_busy[name])
        elapsed = per_pe_busy[bottleneck]
        throughput = packets / elapsed if elapsed > 0 else float("inf")
        return SimulationResult(
            packets=packets,
            per_pe_busy=per_pe_busy,
            throughput_pps=throughput,
            bottleneck=bottleneck,
            elapsed_s=elapsed,
            per_component_packets=per_component,
        )
