"""The placement meta-model.

Section 5: "we think that the CF itself should contain the 'intelligence'
to transparently manage this placement, but with the possibility to
control/override this via a 'placement' meta-model".

:class:`PlacementMetaModel` assigns pipeline components to the processing
elements of an :class:`~repro.ixp.hardware.IxpBoard` under feasibility
constraints (control-plane components pinned to the StrongARM, memory
capacity respected), evaluates placements against a traffic profile, and
supports exactly the two modes the paper asks for:

- *transparent management*: :meth:`auto_place` with the ``greedy`` or
  ``balanced`` strategy;
- *control/override*: :meth:`pin` fixes a component to a PE before (or
  after) auto-placement, and :meth:`migrate` moves one at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.ixp.hardware import (
    DEFAULT_PROFILES,
    CostProfile,
    IxpBoard,
    ProcessingElement,
)
from repro.opencom.errors import PlacementError


@dataclass
class PlacedComponent:
    """One component under placement management."""

    name: str
    profile: CostProfile
    #: Fraction of the total packet stream this component touches.
    traffic_fraction: float = 1.0
    pe: str | None = None
    memory_level: str | None = None
    pinned: bool = False


@dataclass
class PlacementReport:
    """Evaluation of one complete placement."""

    assignment: dict[str, str]
    per_pe_time: dict[str, float]
    throughput_pps: float
    bottleneck: str
    utilisation_spread: float
    feasible: bool
    problems: list[str] = field(default_factory=list)


class PlacementMetaModel:
    """Placement management for one board and one component set."""

    def __init__(self, board: IxpBoard) -> None:
        self.board = board
        self._components: dict[str, PlacedComponent] = {}
        self.migrations: list[tuple[str, str | None, str]] = []

    # -- registration -------------------------------------------------------------

    def register(
        self,
        name: str,
        *,
        profile: CostProfile | None = None,
        component_type: str | None = None,
        traffic_fraction: float = 1.0,
    ) -> PlacedComponent:
        """Put a component under placement management.

        The cost profile comes from *profile*, or from
        :data:`~repro.ixp.hardware.DEFAULT_PROFILES` keyed by
        *component_type*.
        """
        if name in self._components:
            raise PlacementError(f"component {name!r} already registered")
        if profile is None:
            if component_type is None or component_type not in DEFAULT_PROFILES:
                raise PlacementError(
                    f"no cost profile for {name!r} (type {component_type!r})"
                )
            profile = DEFAULT_PROFILES[component_type]
        placed = PlacedComponent(name, profile, traffic_fraction)
        self._components[name] = placed
        return placed

    def components(self) -> dict[str, PlacedComponent]:
        """Snapshot of managed components."""
        return dict(self._components)

    # -- override interface ----------------------------------------------------------

    def pin(self, name: str, pe_name: str) -> None:
        """Override: fix a component to a PE (survives auto_place)."""
        placed = self._component(name)
        pe = self.board.pe(pe_name)
        self._check_feasible(placed, pe)
        self._assign(placed, pe)
        placed.pinned = True

    def unpin(self, name: str) -> None:
        """Release a pin (the component stays put until re-placement)."""
        self._component(name).pinned = False

    def migrate(self, name: str, pe_name: str) -> None:
        """Run-time move of one component (records the migration)."""
        placed = self._component(name)
        pe = self.board.pe(pe_name)
        self._check_feasible(placed, pe)
        previous = placed.pe
        self._assign(placed, pe)
        self.migrations.append((name, previous, pe_name))

    # -- transparent placement ----------------------------------------------------------

    def auto_place(self, strategy: str = "balanced") -> PlacementReport:
        """Place all unpinned components.

        Strategies
        ----------
        ``"control"``
            Everything on the StrongARM (the degenerate pre-port layout —
            useful as the baseline the paper's port motivates against).
        ``"greedy"``
            Heaviest component first onto the currently least-loaded
            feasible PE.
        ``"balanced"``
            Greedy seed, then pairwise-swap local search minimising the
            bottleneck PE time.
        """
        if strategy not in ("control", "greedy", "balanced"):
            raise PlacementError(f"unknown strategy {strategy!r}")
        movable = [c for c in self._components.values() if not c.pinned]
        for component in movable:
            self._unassign(component)

        if strategy == "control":
            sa = self.board.control_processor()
            for component in movable:
                self._assign(component, sa)
            return self.evaluate()

        loads: dict[str, float] = {name: 0.0 for name in self.board.pes}
        for component in self._components.values():
            if component.pe is not None:
                loads[component.pe] += self._load_of(component, component.pe)
        for component in sorted(
            movable, key=lambda c: -self._nominal_load(c)
        ):
            candidates = [
                pe for pe in self.board.pes.values()
                if self._feasibility_problem(component, pe) is None
            ]
            if not candidates:
                raise PlacementError(
                    f"no feasible PE for component {component.name!r}"
                )
            best = min(
                candidates,
                key=lambda pe: loads[pe.name] + self._load_of(component, pe.name),
            )
            self._assign(component, best)
            loads[best.name] += self._load_of(component, best.name)

        if strategy == "balanced":
            self._local_search(movable)
        return self.evaluate()

    def _local_search(self, movable: list[PlacedComponent], *, rounds: int = 50) -> None:
        for _ in range(rounds):
            report = self.evaluate()
            improved = False
            bottleneck_components = [
                c for c in movable if c.pe == report.bottleneck
            ]
            for component in bottleneck_components:
                current_pe = component.pe
                for pe in self.board.pes.values():
                    if pe.name == current_pe:
                        continue
                    if self._feasibility_problem(component, pe) is not None:
                        continue
                    self._reassign(component, pe)
                    candidate = self.evaluate()
                    if candidate.throughput_pps > report.throughput_pps:
                        improved = True
                        report = candidate
                        break
                    self._reassign(component, self.board.pe(current_pe))
                if improved:
                    break
            if not improved:
                return

    # -- evaluation -------------------------------------------------------------------------

    def evaluate(self) -> PlacementReport:
        """Score the current placement against the traffic profile.

        Per-PE time is the sum over its components of
        ``service_time * traffic_fraction``; throughput is the inverse of
        the bottleneck PE's per-packet time; spread is (max-min)/max over
        loaded PEs.
        """
        problems: list[str] = []
        per_pe: dict[str, float] = {name: 0.0 for name in self.board.pes}
        for component in self._components.values():
            if component.pe is None:
                problems.append(f"component {component.name!r} unplaced")
                continue
            per_pe[component.pe] += self._load_of(component, component.pe)
        bottleneck = max(per_pe, key=lambda name: per_pe[name])
        bottleneck_time = per_pe[bottleneck]
        throughput = 1.0 / bottleneck_time if bottleneck_time > 0 else float("inf")
        loaded = [t for t in per_pe.values() if t > 0]
        spread = (
            (max(loaded) - min(loaded)) / max(loaded) if len(loaded) > 1 else 0.0
        )
        return PlacementReport(
            assignment={
                name: c.pe or "?" for name, c in sorted(self._components.items())
            },
            per_pe_time=per_pe,
            throughput_pps=throughput,
            bottleneck=bottleneck,
            utilisation_spread=spread,
            feasible=not problems,
            problems=problems,
        )

    # -- internals ---------------------------------------------------------------------------

    def _component(self, name: str) -> PlacedComponent:
        try:
            return self._components[name]
        except KeyError:
            raise PlacementError(f"unknown component {name!r}") from None

    def _nominal_load(self, component: PlacedComponent) -> float:
        reference = self.board.microengines()[0]
        return (
            self.board.service_time(
                component.profile, reference, component.profile.memory_level
            )
            * component.traffic_fraction
        )

    def _load_of(self, component: PlacedComponent, pe_name: str) -> float:
        level = component.memory_level or component.profile.memory_level
        return (
            self.board.service_time(component.profile, self.board.pe(pe_name), level)
            * component.traffic_fraction
        )

    def _feasibility_problem(
        self, component: PlacedComponent, pe: ProcessingElement
    ) -> str | None:
        if component.profile.control_plane and not pe.control_capable:
            return (
                f"{component.name} is control-plane and {pe.name} is not "
                "control-capable"
            )
        return None

    def _check_feasible(self, component: PlacedComponent, pe: ProcessingElement) -> None:
        problem = self._feasibility_problem(component, pe)
        if problem is not None:
            raise PlacementError(problem)

    def _assign(self, component: PlacedComponent, pe: ProcessingElement) -> None:
        if component.memory_level is None:
            component.memory_level = self.board.place_state(component.profile)
        component.pe = pe.name

    def _reassign(self, component: PlacedComponent, pe: ProcessingElement) -> None:
        component.pe = pe.name

    def _unassign(self, component: PlacedComponent) -> None:
        if component.memory_level is not None:
            self.board.release_state(
                component.memory_level, component.profile.state_bytes
            )
            component.memory_level = None
        component.pe = None

    def describe(self) -> dict[str, Any]:
        """Assignment plus migration history."""
        return {
            "assignment": {
                name: {"pe": c.pe, "memory": c.memory_level, "pinned": c.pinned}
                for name, c in sorted(self._components.items())
            },
            "migrations": list(self.migrations),
        }


@dataclass
class ShardSlot:
    """One shard's place in the modelled deployment."""

    shard_index: int
    pe: str
    cluster: int


class ShardPlacement:
    """NUMA-style placement of sharded-datapath workers onto the board.

    The component-level meta-model above places *pipeline stages*; this
    model places whole *shards* — each worker of a
    :class:`~repro.osbase.sharding.ShardedDatapath` is one slot, mapped
    round-robin onto the board's micro-engines.  Engines are grouped
    into clusters of *cluster_size* (the IXP1200's two three-engine
    banks by default), and a steal that crosses a cluster boundary is
    charged *remote_penalty* — the virtual analogue of pulling a peer's
    ring and pool lines across a NUMA interconnect.

    Two consumers ride on it:

    - the **supervisor**'s steal/no-steal decision —
      :meth:`locality_penalty` plugs straight into
      ``ShardedDatapath(locality=...)``, scaling the steal watermark so
      a cross-cluster steal must be proportionally more profitable;
    - the **resizer**'s grow/shrink decision — :meth:`fleet_capacity_pps`
      models aggregate capacity (slots sharing an engine share its
      cycles, so capacity saturates once every engine hosts a slot) and
      :meth:`recommend` returns the smallest worker count that covers a
      measured load with headroom.
    """

    def __init__(
        self,
        board: IxpBoard | None = None,
        *,
        max_shards: int = 8,
        cluster_size: int = 3,
        remote_penalty: float = 2.5,
        profile: CostProfile | None = None,
        memory_level: str = "sram",
    ) -> None:
        if max_shards < 1:
            raise PlacementError(f"max_shards must be >= 1, got {max_shards}")
        if cluster_size < 1:
            raise PlacementError(f"cluster_size must be >= 1, got {cluster_size}")
        if remote_penalty < 1.0:
            raise PlacementError(
                f"a remote steal cannot be cheaper than a local one "
                f"(remote_penalty={remote_penalty})"
            )
        self.board = board if board is not None else IxpBoard()
        engines = self.board.microengines()
        if not engines:
            raise PlacementError("the board has no micro-engines to place on")
        self.max_shards = max_shards
        self.cluster_size = cluster_size
        self.remote_penalty = float(remote_penalty)
        self.memory_level = memory_level
        #: Per-packet cost of one shard worker: the forwarding pipeline's
        #: inner loop (classify + LPM + header rewrite), representative
        #: of the DEFAULT_PROFILES stratum-2 stages a shard fuses.
        self.profile = (
            profile
            if profile is not None
            else CostProfile(instructions=340, memory_references=33)
        )
        self._engines = engines
        self.slots = [
            ShardSlot(
                shard_index=i,
                pe=engines[i % len(engines)].name,
                cluster=(i % len(engines)) // cluster_size,
            )
            for i in range(max_shards)
        ]

    def slot(self, shard_index: int) -> ShardSlot:
        """The placement slot of shard *shard_index*."""
        if not 0 <= shard_index < self.max_shards:
            raise PlacementError(
                f"no slot for shard {shard_index} (max_shards={self.max_shards})"
            )
        return self.slots[shard_index]

    def locality_penalty(self, thief: int, victim: int) -> float:
        """Steal cost multiplier between two shards: 1.0 within a
        cluster, :attr:`remote_penalty` across clusters.  Plugs into
        ``ShardedDatapath(locality=...)``."""
        if self.slot(thief).cluster == self.slot(victim).cluster:
            return 1.0
        return self.remote_penalty

    def engine_capacity_pps(self, pe_name: str) -> float:
        """Packets per second one engine sustains running shard workers."""
        pe = self.board.pes[pe_name]
        return 1.0 / self.board.service_time(self.profile, pe, self.memory_level)

    def fleet_capacity_pps(self, shards: int) -> float:
        """Aggregate capacity with *shards* active workers.

        Slots sharing an engine share its cycles — an engine contributes
        its capacity once no matter how many slots land on it — so the
        curve saturates when every engine hosts a worker.  That
        diminishing-returns shape is what makes shrink decisions real.
        """
        if not 1 <= shards <= self.max_shards:
            raise PlacementError(
                f"fleet size {shards} outside [1, {self.max_shards}]"
            )
        active = {slot.pe for slot in self.slots[:shards]}
        return sum(self.engine_capacity_pps(pe) for pe in active)

    def recommend(self, load_pps: float, *, headroom: float = 1.25) -> int:
        """The smallest worker count whose capacity covers *load_pps*
        with *headroom*; :attr:`max_shards` when nothing does (an
        overloaded board deploys everything it has)."""
        if load_pps < 0:
            raise PlacementError(f"load must be >= 0, got {load_pps}")
        if headroom < 1.0:
            raise PlacementError(f"headroom must be >= 1.0, got {headroom}")
        need = load_pps * headroom
        for n in range(1, self.max_shards + 1):
            if self.fleet_capacity_pps(n) >= need:
                return n
        return self.max_shards

    def describe(self) -> dict[str, Any]:
        """Slot table plus the capacity curve (for reports)."""
        return {
            "slots": [
                {"shard": s.shard_index, "pe": s.pe, "cluster": s.cluster}
                for s in self.slots
            ],
            "remote_penalty": self.remote_penalty,
            "capacity_pps": {
                n: round(self.fleet_capacity_pps(n), 1)
                for n in range(1, self.max_shards + 1)
            },
        }


class FleetPlacement:
    """The fleet's aggregate capacity curve: one :class:`ShardPlacement`
    per capsule node.

    :class:`ShardPlacement` models one board; a multi-capsule fleet is
    many boards, and the edge admission tier
    (:class:`repro.coordination.rsvp.EdgeAdmission`) needs the *sum* —
    a new flow reserves against :meth:`aggregate_pps` before it is
    steered, and against its home capsule's :meth:`capacity_of` share.
    A node-kill calls :meth:`remove`, so the curve (and with it the
    edge's admission pool) shrinks with the fleet instead of admitting
    traffic the survivors cannot carry.
    """

    def __init__(self) -> None:
        self._members: dict[str, tuple[ShardPlacement, int]] = {}

    def add(
        self,
        name: str,
        *,
        shards: int,
        placement: ShardPlacement | None = None,
    ) -> ShardPlacement:
        """Register capsule *name* running *shards* workers on its own
        board (a default board when *placement* is omitted)."""
        if name in self._members:
            raise PlacementError(f"capsule {name!r} already placed")
        if shards < 1:
            raise PlacementError(f"shards must be >= 1, got {shards}")
        if placement is None:
            placement = ShardPlacement(max_shards=shards)
        self._members[name] = (placement, shards)
        return placement

    def remove(self, name: str) -> float:
        """Drop a (killed) capsule; returns the capacity it contributed."""
        capacity = self.capacity_of(name)
        del self._members[name]
        return capacity

    def members(self) -> list[str]:
        """Live capsules, in registration order."""
        return list(self._members)

    def placement_of(self, name: str) -> ShardPlacement:
        """The capsule's own board placement (locality wiring)."""
        try:
            return self._members[name][0]
        except KeyError:
            raise PlacementError(f"unknown capsule {name!r}") from None

    def capacity_of(self, name: str) -> float:
        """One capsule's sustained packets per second."""
        try:
            placement, shards = self._members[name]
        except KeyError:
            raise PlacementError(f"unknown capsule {name!r}") from None
        return placement.fleet_capacity_pps(shards)

    def aggregate_pps(self) -> float:
        """The fleet's total sustained packets per second (live capsules
        only — the admission ceiling)."""
        return sum(self.capacity_of(name) for name in self._members)

    def describe(self) -> dict[str, Any]:
        """Per-capsule capacities plus the aggregate."""
        return {
            "capsules": {
                name: round(self.capacity_of(name), 1) for name in self._members
            },
            "aggregate_pps": round(self.aggregate_pps(), 1),
        }
