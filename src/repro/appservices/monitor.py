"""Monitor CF: rule-governed signal sources for the adaptation stratum.

The control loop of ``coordination/adaptation.py`` adapts on *signals* —
pool watermarks, per-shard backlog divergence, drop counters, admission
depth.  Each signal source is an ordinary OpenCOM component providing
:class:`ISignalSource`, plugged into a :class:`MonitorCF` whose rules
guarantee the monitor's sample dictionary stays well-formed: every
plug-in must expose the interface, must declare its signal names up
front, and no two plug-ins may publish the same signal (a collision
would silently shadow one source's readings with another's).

Dead-worker tolerance
---------------------
A crashed worker (``inject_worker_crash`` / fault-injection ``kill``)
leaves its shard object — and any frames still ringed on it — in place
until recovery re-steers the bucket.  A naive monitor averaging raw
per-shard depths would read that stale backlog forever: divergence stays
pinned high, and the policy engine chases a shard no adaptation can
drain.  :class:`BacklogProbe` therefore samples through the datapath's
live-shard views (:meth:`~repro.osbase.sharding.ShardedDatapath.
live_shard_indices` / :meth:`~repro.osbase.sharding.ShardedDatapath.
backlog_divergence`), reporting dead workers and their stranded frames
as their own signals instead of folding them into the load picture.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from repro.cf.framework import ComponentFramework
from repro.cf.rules import ProvidesInterface, Rule
from repro.opencom.component import Component, Provided
from repro.opencom.interfaces import Interface


class ISignalSource(Interface):
    """A monitor plug-in: declares its signal names and samples them."""

    def signal_names(self) -> list[str]:
        """The signal keys this source publishes (fixed for its life)."""
        ...

    def sample(self) -> dict[str, float]:
        """One reading: signal name → current value."""
        ...


def monitor_rules() -> list[Rule]:
    """The Monitor CF's declarative rule set."""
    return [ProvidesInterface(ISignalSource)]


class MonitorCF(ComponentFramework):
    """CF over signal sources; :meth:`sample_all` is the merged reading.

    Extra (non-declarative) rule: a candidate's signal names must not
    collide with any already-accepted plug-in's — the merged sample dict
    must never silently shadow one source with another.
    """

    def __init__(self) -> None:
        super().__init__(rules=monitor_rules())

    def extra_checks(self, component: Component) -> list[str]:
        names_fn = getattr(component, "signal_names", None)
        if not callable(names_fn):
            return ["must implement signal_names()"]
        names = list(names_fn())
        failures: list[str] = []
        if len(names) != len(set(names)):
            failures.append(f"duplicate signal names within the source: {names}")
        published: dict[str, str] = {
            signal: plugin.name
            for plugin in self._plugins.values()
            if plugin is not component
            for signal in plugin.signal_names()
        }
        for signal in names:
            if signal in published:
                failures.append(
                    f"signal {signal!r} already published by plug-in "
                    f"{published[signal]!r}"
                )
        return failures

    def sample_all(self) -> dict[str, float]:
        """One merged reading across every accepted source (collision-free
        by the accept-time rule)."""
        merged: dict[str, float] = {}
        for plugin in self._plugins.values():
            merged.update(plugin.sample())
        return merged


class SignalProbe(Component):
    """Base for monitor plug-ins: ISignalSource over a fixed name list."""

    PROVIDES = (Provided("signals", ISignalSource),)

    #: Subclasses set the published signal keys.
    SIGNALS: tuple[str, ...] = ()

    def signal_names(self) -> list[str]:
        return list(self.SIGNALS)

    def sample(self) -> dict[str, float]:
        raise NotImplementedError


class PoolWatermarkProbe(SignalProbe):
    """Buffer-pool pressure: worst free fraction across the fleet's
    slices, total in-flight, and cumulative exhaustion events.

    *pools* is a zero-arg callable (the slice list changes identity on
    every resize re-carve, so the probe must re-read it per sample).
    """

    SIGNALS = ("pool_free_frac_min", "pool_in_flight", "pool_exhaustion_events")

    def __init__(self, pools: Callable[[], Iterable[Any]]) -> None:
        super().__init__()
        self.pools = pools

    def sample(self) -> dict[str, float]:
        free_frac = 1.0
        in_flight = 0
        exhaustion = 0
        for pool in self.pools():
            if pool is None or not pool.count:
                continue
            free_frac = min(free_frac, (pool.count - pool.in_flight) / pool.count)
            in_flight += pool.in_flight
            exhaustion += pool.exhaustion_events
        return {
            "pool_free_frac_min": free_frac,
            "pool_in_flight": float(in_flight),
            "pool_exhaustion_events": float(exhaustion),
        }


class BacklogProbe(SignalProbe):
    """Per-shard backlog shape over the *live* fleet.

    Dead-worker shards are excluded from load/divergence (their stale
    rings would pin divergence high forever — see module docstring) and
    surfaced as ``dead_workers`` / ``dead_backlog`` instead, so recovery
    pressure is its own signal rather than noise in the balance picture.
    """

    SIGNALS = (
        "backlog_total",
        "backlog_divergence",
        "live_shards",
        "dead_workers",
        "dead_backlog",
    )

    def __init__(self, datapath: Any) -> None:
        super().__init__()
        self.datapath = datapath

    def sample(self) -> dict[str, float]:
        datapath = self.datapath
        live = datapath.live_shard_indices()
        live_set = set(live)
        dead_backlog = sum(
            datapath.shards[index].backlog_depth
            for index in range(len(datapath.shards))
            if index not in live_set
        )
        return {
            "backlog_total": float(
                sum(datapath.shards[index].backlog_depth for index in live)
            ),
            "backlog_divergence": float(datapath.backlog_divergence()),
            "live_shards": float(len(live)),
            "dead_workers": float(len(datapath.shards) - len(live)),
            "dead_backlog": float(dead_backlog),
        }


class DropCounterProbe(SignalProbe):
    """Named cumulative drop/abandon counters (each a zero-arg callable,
    sampled fresh every reading)."""

    def __init__(self, counters: dict[str, Callable[[], int]]) -> None:
        super().__init__()
        self.counters = dict(counters)
        self.SIGNALS = tuple(self.counters)

    def sample(self) -> dict[str, float]:
        return {name: float(read()) for name, read in self.counters.items()}


class AdmissionQueueProbe(SignalProbe):
    """Edge admission tier: total/per-class depth, queue drops, and
    cumulative packets admitted (rate = window delta)."""

    def __init__(self, tier: Any) -> None:
        super().__init__()
        self.tier = tier
        self.SIGNALS = (
            "admission_depth",
            "admission_drops",
            "admitted_total",
            *(f"admission_depth:{klass}" for klass in tier.classes),
        )

    def sample(self) -> dict[str, float]:
        tier = self.tier
        depths = tier.class_depth()
        reading = {
            "admission_depth": float(sum(depths.values())),
            "admission_drops": float(tier.drop_total()),
            "admitted_total": float(tier.admitted_total),
        }
        for klass, depth in depths.items():
            reading[f"admission_depth:{klass}"] = float(depth)
        return reading
