"""Code security for the application-services stratum.

"Here, security is typically more of a concern than raw performance"
(section 3).  Active code is admitted by *signature*: a code publisher
holds a key, signs the serialised program (HMAC-SHA256), and the execution
environment verifies the signature against its registry of trusted
principals before running anything.  Per-principal resource policy (step
budget, soft-store quota) rides along with the trust grant.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.opencom.errors import AccessDenied, OpenComError


class SecurityError(OpenComError):
    """Signature verification or policy failure."""


def sign_code(key: bytes, code: bytes) -> str:
    """HMAC-SHA256 signature of serialised capsule code."""
    return hmac.new(key, code, hashlib.sha256).hexdigest()


def verify_signature(key: bytes, code: bytes, signature: str) -> bool:
    """Constant-time signature check."""
    return hmac.compare_digest(sign_code(key, code), signature)


@dataclass
class PrincipalPolicy:
    """Per-principal execution policy."""

    principal: str
    key: bytes
    step_budget: int = 512
    soft_store_quota: int = 128
    may_broadcast: bool = False


class CodeAdmission:
    """Registry of trusted code publishers and their policies."""

    def __init__(self) -> None:
        self._policies: dict[str, PrincipalPolicy] = {}
        self.admitted = 0
        self.rejected = 0

    def trust(
        self,
        principal: str,
        key: bytes,
        *,
        step_budget: int = 512,
        soft_store_quota: int = 128,
        may_broadcast: bool = False,
    ) -> PrincipalPolicy:
        """Grant trust to a publisher (records key + policy)."""
        policy = PrincipalPolicy(
            principal, key, step_budget, soft_store_quota, may_broadcast
        )
        self._policies[principal] = policy
        return policy

    def revoke(self, principal: str) -> None:
        """Withdraw trust."""
        self._policies.pop(principal, None)

    def is_trusted(self, principal: str) -> bool:
        """True when the principal has a live trust grant."""
        return principal in self._policies

    def admit(self, principal: str, code: bytes, signature: str) -> PrincipalPolicy:
        """Verify *code* was signed by *principal*; returns the policy.

        Raises
        ------
        AccessDenied
            Unknown principal.
        SecurityError
            Bad signature.
        """
        policy = self._policies.get(principal)
        if policy is None:
            self.rejected += 1
            raise AccessDenied(principal, "execute-active-code")
        if not verify_signature(policy.key, code, signature):
            self.rejected += 1
            raise SecurityError(
                f"signature verification failed for principal {principal!r}"
            )
        self.admitted += 1
        return policy

    def principals(self) -> list[str]:
        """Trusted principal names."""
        return sorted(self._policies)
