"""The active-network execution environment (stratum 3).

An EE is a Router-CF-compliant component: active packets enter by
IPacketPush, the carried program is admitted (signature check), executed
in the sandbox, and the program's requested actions are applied — forward
out of a named connection, broadcast, deliver locally, or drop.

Each EE keeps a per-principal *soft store* (ANTS terminology) with a quota
from the principal's policy, and execution statistics that the active-
network experiments read.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.appservices.capsules import decode_capsule, is_capsule_packet
from repro.appservices.sandbox import CapsuleVM, ExecutionResult
from repro.appservices.security import CodeAdmission, SecurityError
from repro.netsim.packet import Packet, PacketError, format_ipv4
from repro.opencom.errors import AccessDenied
from repro.router.components.base import PushComponent, release_dropped


class ExecutionEnvironment(PushComponent):
    """ANTS-style EE as a Router CF plug-in.

    Parameters
    ----------
    node_name:
        Exposed to programs as environment key ``"node"``.
    admission:
        The code-admission registry (shared across a network's EEs when
        trust is network-wide).
    environment:
        Extra read-only environment entries for programs.
    """

    def __init__(
        self,
        node_name: str,
        admission: CodeAdmission,
        *,
        environment: dict[str, Any] | None = None,
    ) -> None:
        super().__init__()
        self.node_name = node_name
        self.admission = admission
        self.extra_environment = dict(environment) if environment else {}
        self._soft_stores: dict[str, dict] = {}
        #: Local-delivery hook: called with (packet, capsule_data) on a
        #: ``deliver`` action.
        self.deliver_handler: Callable[[Packet, dict], None] | None = None
        self.executions: list[ExecutionResult] = []
        self.keep_results = 1000

    # -- data path --------------------------------------------------------------

    def process(self, packet: Packet) -> None:
        """Admit, execute, and apply the program's actions."""
        if not is_capsule_packet(packet):
            self.count("drop:not-active")
            release_dropped(packet)
            return
        try:
            capsule = decode_capsule(packet.payload)
        except PacketError:
            self.count("drop:malformed")
            release_dropped(packet)
            return
        try:
            policy = self.admission.admit(
                capsule.principal, capsule.code_bytes(), capsule.signature
            )
        except AccessDenied:
            self.count("drop:untrusted-principal")
            release_dropped(packet)
            return
        except SecurityError:
            self.count("drop:bad-signature")
            release_dropped(packet)
            return

        store = self._soft_stores.setdefault(capsule.principal, {})
        vm = CapsuleVM(step_budget=policy.step_budget)
        result = vm.execute(
            capsule.program,
            environment=self._environment_for(packet, capsule.data),
            soft_store=store,
        )
        if len(store) > policy.soft_store_quota:
            # Enforce the quota after the run: trim newest keys and flag it.
            overflow = len(store) - policy.soft_store_quota
            for key in list(store)[-overflow:]:
                del store[key]
            self.count("soft-store-trimmed")
        if len(self.executions) < self.keep_results:
            self.executions.append(result)
        if result.status != "ok":
            self.count("drop:program-error")
            release_dropped(packet)
            return
        self.count("executed")
        self._apply_actions(packet, result, policy.may_broadcast)

    def _environment_for(self, packet: Packet, data: dict) -> dict[str, Any]:
        env = {
            "node": self.node_name,
            "ttl": getattr(packet.net, "ttl", None),
            "src": format_ipv4(packet.net.src),
            "dst": format_ipv4(packet.net.dst),
            "ingress": packet.metadata.get("ingress_port"),
            "size": packet.size_bytes,
        }
        env.update(self.extra_environment)
        # Capsule-carried data rides in the environment under its own keys
        # (read-only to the program).
        for key, value in data.items():
            env[f"data.{key}"] = value
        return env

    def _apply_actions(
        self, packet: Packet, result: ExecutionResult, may_broadcast: bool
    ) -> None:
        out = self.receptacle("out")
        emitted_original = False
        delivered_original = False
        for action in result.actions:
            kind = action[0]
            if kind == "forward":
                port = str(action[1])
                if not packet.net.decrement_ttl():
                    self.count("drop:ttl-expired")
                    continue
                self.emit(packet, port)
                emitted_original = True
            elif kind == "broadcast":
                if not may_broadcast:
                    self.count("drop:broadcast-forbidden")
                    continue
                ingress = packet.metadata.get("ingress_port")
                if not packet.net.decrement_ttl():
                    self.count("drop:ttl-expired")
                    continue
                # Wire-resident packets fan out by reference (refcount
                # bump + copy-on-write divergence); materialised packets
                # still pay a real per-port copy.
                clone_ref = getattr(packet, "clone_ref", None)
                for port in out.connection_names():
                    if port == ingress:
                        continue
                    clone = clone_ref() if clone_ref is not None else packet.copy()
                    clone.metadata["ingress_port"] = packet.metadata.get("ingress_port")
                    self.emit(clone, port)
            elif kind == "deliver":
                self.count("delivered")
                if self.deliver_handler is not None:
                    try:
                        capsule = decode_capsule(packet.payload)
                        self.deliver_handler(packet, capsule.data)
                        delivered_original = True
                    except PacketError:
                        self.count("drop:malformed")
            elif kind == "drop":
                self.count("dropped-by-program")
        if not emitted_original and not delivered_original:
            # The EE consumed the packet without handing it on (its
            # traffic, if any, rides in broadcast clones): drop its
            # buffer reference so a pooled wire buffer returns to its
            # pool and clones never copy-on-write against a pinned
            # original.
            release_dropped(packet)

    # -- introspection -----------------------------------------------------------------

    def soft_store(self, principal: str) -> dict:
        """The (live) soft store of one principal."""
        return self._soft_stores.setdefault(principal, {})

    def execution_count(self) -> int:
        """Successful executions so far."""
        return self.counters["executed"]
