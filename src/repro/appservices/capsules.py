"""Active capsules: packets carrying code (ANTS-style).

A capsule packet is an ordinary IPv4 packet with protocol
``PROTO_ACTIVE`` whose payload encodes ``(principal, signature, program,
data)``.  Encoding uses ``repr``/``ast.literal_eval`` — safe (literals
only), readable, and honest about size: programs really travel the wire
and really get re-parsed at every hop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any

from repro.appservices.sandbox import Program, validate_program
from repro.appservices.security import sign_code
from repro.netsim.packet import PROTO_ACTIVE, IPv4Header, Packet, PacketError, ipv4


@dataclass
class CapsulePayload:
    """Decoded contents of an active packet."""

    principal: str
    signature: str
    program: Program
    data: dict[str, Any]

    def code_bytes(self) -> bytes:
        """The signed byte representation of the program."""
        return repr(self.program).encode()


def encode_capsule(
    principal: str,
    key: bytes,
    program: Program,
    data: dict[str, Any] | None = None,
) -> bytes:
    """Serialise and sign a capsule payload."""
    problems = validate_program(program)
    if problems:
        raise PacketError("invalid capsule program: " + "; ".join(problems))
    code = repr(program).encode()
    signature = sign_code(key, code)
    envelope = {
        "principal": principal,
        "signature": signature,
        "program": program,
        "data": data or {},
    }
    return repr(envelope).encode()


def decode_capsule(payload: bytes | memoryview) -> CapsulePayload:
    """Parse a capsule payload (literals only — never executes anything).

    Accepts the zero-copy path's memoryview payloads; decoding is a
    delivery-edge operation, so the one materialisation here is fine.
    """
    if isinstance(payload, memoryview):
        payload = payload.tobytes()
    try:
        envelope = ast.literal_eval(payload.decode())
    except (ValueError, SyntaxError, UnicodeDecodeError) as exc:
        raise PacketError(f"malformed capsule payload: {exc}") from exc
    if not isinstance(envelope, dict):
        raise PacketError("capsule payload is not a dict")
    try:
        return CapsulePayload(
            principal=envelope["principal"],
            signature=envelope["signature"],
            program=envelope["program"],
            data=envelope["data"],
        )
    except KeyError as exc:
        raise PacketError(f"capsule payload missing field {exc}") from exc


def make_capsule_packet(
    src: str | int,
    dst: str | int,
    principal: str,
    key: bytes,
    program: Program,
    *,
    data: dict[str, Any] | None = None,
    ttl: int = 32,
    created_at: float = 0.0,
) -> Packet:
    """Build an IPv4 active packet carrying a signed capsule."""
    payload = encode_capsule(principal, key, program, data)
    net = IPv4Header(src=ipv4(src), dst=ipv4(dst), ttl=ttl, protocol=PROTO_ACTIVE)
    return Packet(net, None, payload, created_at=created_at)


def is_capsule_packet(packet: Packet) -> bool:
    """True for IPv4 packets carrying the active-network protocol number."""
    return isinstance(packet.net, IPv4Header) and packet.net.protocol == PROTO_ACTIVE
