"""Stratum 3 — application services: the active-network execution
environment, capsule programs, code security, per-flow dispatch, and
media filters."""

from repro.appservices.capsules import (
    CapsulePayload,
    decode_capsule,
    encode_capsule,
    is_capsule_packet,
    make_capsule_packet,
)
from repro.appservices.ee import ExecutionEnvironment
from repro.appservices.flowmgr import FlowManager
from repro.appservices.monitor import (
    AdmissionQueueProbe,
    BacklogProbe,
    DropCounterProbe,
    ISignalSource,
    MonitorCF,
    PoolWatermarkProbe,
    SignalProbe,
    monitor_rules,
)
from repro.appservices.media_filter import (
    FEC_PARITY_FLAG,
    FecDecoder,
    FecEncoder,
    MediaDownsampler,
    PayloadTruncator,
)
from repro.appservices.sandbox import (
    CapsuleVM,
    ExecutionResult,
    validate_program,
)
from repro.appservices.security import (
    CodeAdmission,
    PrincipalPolicy,
    SecurityError,
    sign_code,
    verify_signature,
)

__all__ = [
    "AdmissionQueueProbe",
    "BacklogProbe",
    "CapsulePayload",
    "CapsuleVM",
    "CodeAdmission",
    "ExecutionEnvironment",
    "DropCounterProbe",
    "ExecutionResult",
    "FEC_PARITY_FLAG",
    "FecDecoder",
    "FecEncoder",
    "FlowManager",
    "ISignalSource",
    "MediaDownsampler",
    "MonitorCF",
    "PayloadTruncator",
    "PoolWatermarkProbe",
    "PrincipalPolicy",
    "SecurityError",
    "SignalProbe",
    "decode_capsule",
    "encode_capsule",
    "is_capsule_packet",
    "make_capsule_packet",
    "monitor_rules",
    "sign_code",
    "validate_program",
    "verify_signature",
]
