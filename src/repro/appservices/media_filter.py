"""Per-flow media filters (stratum 3).

The paper's example of application services: "per-flow media filters".
These are Router-CF-compliant push components that transform media-like
payloads:

- :class:`MediaDownsampler` — drops every k-th media frame (rate
  adaptation for constrained links);
- :class:`PayloadTruncator` — quality reduction by payload truncation
  (layered-codec analogue: keep the base layer);
- :class:`FecEncoder` / :class:`FecDecoder` — XOR parity across groups of
  *k* packets; the decoder reconstructs a single missing packet per group,
  which is what the adaptive-wireless experiment (C9) switches on when the
  link-layer loss signal rises.
"""

from __future__ import annotations

from repro.netsim.packet import Packet, UDPHeader
from repro.router.components.base import PushComponent

#: Metadata/flow marker carried by parity packets.
FEC_PARITY_FLAG = "fec-parity"


class MediaDownsampler(PushComponent):
    """Forward ``keep`` of every ``out_of`` packets per flow (temporal
    downsampling)."""

    STATE_ATTRS = ("_positions",)

    def __init__(self, *, keep: int = 1, out_of: int = 2) -> None:
        if not 0 < keep <= out_of:
            raise ValueError("need 0 < keep <= out_of")
        super().__init__()
        self.keep = keep
        self.out_of = out_of
        self._positions: dict[tuple, int] = {}

    def process(self, packet: Packet) -> None:
        """Keep the first *keep* of each *out_of*-packet window."""
        key = packet.flow_key()
        position = self._positions.get(key, 0)
        self._positions[key] = (position + 1) % self.out_of
        if position < self.keep:
            self.count("kept")
            self.emit(packet)
        else:
            self.count("downsampled")


class PayloadTruncator(PushComponent):
    """Truncate payloads to *max_payload* bytes (keep the base layer)."""

    def __init__(self, *, max_payload: int = 256) -> None:
        super().__init__()
        self.max_payload = max_payload

    def process(self, packet: Packet) -> None:
        """Truncate oversized payloads, fixing lengths and checksums."""
        if len(packet.payload) > self.max_payload:
            packet.payload = packet.payload[: self.max_payload]
            if isinstance(packet.transport, UDPHeader):
                packet.transport.length = UDPHeader.HEADER_LEN + len(packet.payload)
            packet._refresh_lengths()
            self.count("truncated")
        else:
            self.count("untouched")
        self.emit(packet)


class FecEncoder(PushComponent):
    """XOR-parity FEC: after every *group_size* data packets of a flow,
    emit one parity packet covering the group."""

    STATE_ATTRS = ("_groups",)

    def __init__(self, *, group_size: int = 4) -> None:
        if group_size < 2:
            raise ValueError("group_size must be >= 2")
        super().__init__()
        self.group_size = group_size
        self._groups: dict[tuple, list[Packet]] = {}

    def process(self, packet: Packet) -> None:
        """Forward the data packet; emit parity at group boundaries."""
        packet.metadata.setdefault("fec-group-seq", {})
        key = packet.flow_key()
        group = self._groups.setdefault(key, [])
        packet.metadata["fec-index"] = len(group)
        group.append(packet)
        self.count("data")
        self.emit(packet)
        if len(group) >= self.group_size:
            parity = self._make_parity(group)
            self._groups[key] = []
            self.count("parity")
            self.emit(parity)

    def _make_parity(self, group: list[Packet]) -> Packet:
        width = max(len(p.payload) for p in group)
        parity_payload = bytearray(width)
        for member in group:
            for i, byte in enumerate(member.payload):
                parity_payload[i] ^= byte
        template = group[-1]
        parity = template.copy()
        parity.payload = bytes(parity_payload)
        if isinstance(parity.transport, UDPHeader):
            parity.transport.length = UDPHeader.HEADER_LEN + len(parity.payload)
        parity._refresh_lengths()
        parity.metadata[FEC_PARITY_FLAG] = True
        parity.metadata["fec-covers"] = len(group)
        return parity


class FecDecoder(PushComponent):
    """Reconstruct one missing packet per FEC group from the parity.

    Tracks groups by flow; when a parity packet arrives and exactly one
    data packet of its group is missing, the payload is recovered by XOR
    and a reconstructed packet is emitted (counted ``recovered``).
    """

    STATE_ATTRS = ("_groups",)

    def __init__(self, *, group_size: int = 4) -> None:
        super().__init__()
        self.group_size = group_size
        self._groups: dict[tuple, dict[int, Packet]] = {}

    def process(self, packet: Packet) -> None:
        """Pass data through (recording it); consume parity packets."""
        key = packet.flow_key()
        if packet.metadata.get(FEC_PARITY_FLAG):
            self._handle_parity(key, packet)
            return
        index = packet.metadata.get("fec-index")
        if index is not None:
            group = self._groups.setdefault(key, {})
            group[index] = packet
        self.count("data")
        self.emit(packet)

    def _handle_parity(self, key: tuple, parity: Packet) -> None:
        covers = parity.metadata.get("fec-covers", self.group_size)
        group = self._groups.pop(key, {})
        received = {i: p for i, p in group.items() if i < covers}
        missing = [i for i in range(covers) if i not in received]
        if not missing:
            self.count("parity-unneeded")
            return
        if len(missing) > 1:
            self.count("parity-insufficient")
            return
        width = len(parity.payload)
        recovered_payload = bytearray(parity.payload)
        for member in received.values():
            for i, byte in enumerate(member.payload[:width]):
                recovered_payload[i] ^= byte
        template = next(iter(received.values()), parity)
        recovered = template.copy()
        recovered.payload = bytes(recovered_payload)
        if isinstance(recovered.transport, UDPHeader):
            recovered.transport.length = UDPHeader.HEADER_LEN + len(recovered.payload)
        recovered._refresh_lengths()
        recovered.metadata["fec-recovered"] = True
        recovered.metadata.pop(FEC_PARITY_FLAG, None)
        self.count("recovered")
        self.emit(recovered)
