"""Per-flow module dispatch (Washington University "router plugins" style).

Section 6 cites Decasper et al.'s pluggable per-flow modules as the
stratum-3 comparison point; :class:`FlowManager` reproduces the pattern as
a Router CF plug-in: flows are bound to named processing chains by filter
match, with an LRU-bounded flow table so state cannot grow without bound.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.netsim.packet import Packet
from repro.router.components.base import PushComponent, release_dropped
from repro.router.filters import FilterTable


class FlowManager(PushComponent):
    """Flow-table dispatch to named per-flow outputs.

    The first packet of a flow is classified by the filter table and the
    decision is cached under the flow key; subsequent packets hit the
    cache.  Evicted or unmatched flows go to *default_output* (or are
    dropped when it is None).
    """

    STATE_ATTRS = ("_flow_table",)

    def __init__(self, *, max_flows: int = 1024, default_output: str | None = None) -> None:
        super().__init__()
        self.filters = FilterTable()
        self.max_flows = max_flows
        self.default_output = default_output
        self._flow_table: OrderedDict[tuple, str] = OrderedDict()

    def bind_flow_class(self, spec_text: str) -> int:
        """Install a filter mapping matching flows to an output chain."""
        return self.filters.add(spec_text)

    def process(self, packet: Packet) -> None:
        """Dispatch by cached flow decision (classifying on first sight)."""
        key = packet.flow_key()
        output = self._flow_table.get(key)
        if output is not None:
            self._flow_table.move_to_end(key)
            self.count("hit")
        else:
            self.count("miss")
            spec = self.filters.classify(packet)
            output = spec.output if spec is not None else self.default_output
            if output is None:
                self.count("drop:no-flow-class")
                release_dropped(packet)
                return
            self._flow_table[key] = output
            if len(self._flow_table) > self.max_flows:
                self._flow_table.popitem(last=False)
                self.count("evicted")
        packet.metadata["flow_class"] = output
        self.emit(packet, output)

    @property
    def flow_count(self) -> int:
        """Live entries in the flow table."""
        return len(self._flow_table)
