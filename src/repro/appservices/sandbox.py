"""A sandboxed interpreter for active-network capsule programs.

ANTS-style active packets carry *programs* executed at every visited node.
Arbitrary Python is not a sandbox, so capsule code here is a tiny
register-based instruction language interpreted under hard resource
limits: a step budget, a register/stack cap, and an environment API that
exposes only deliberate node capabilities (soft-store get/put, route
lookup, forward, spawn).

Instructions are tuples ``(op, *args)``.  Registers are named by strings.

Core ops
--------
``("set", reg, value)``            load a constant
``("mov", dst, src)``              copy register
``("add"|"sub"|"mul", dst, a, b)`` arithmetic over registers/constants
``("cmp", dst, a, op, b)``         comparison ('<', '<=', '==', '!=', '>', '>=')
``("jmp", offset)``                relative jump
``("jif", reg, offset)``           jump when register is truthy
``("env", dst, key)``              read environment value (node name, ttl, ...)
``("load", dst, key)``             soft-store read (None when absent)
``("store", key, reg)``            soft-store write
``("forward", port_reg_or_name)``  request forwarding out of a port
``("broadcast",)``                 request flooding to all ports but ingress
``("deliver",)``                   request local delivery of the payload
``("drop",)``                      discard the capsule
``("trace", reg)``                 append a value to the execution trace
``("halt",)``                      stop

The VM never raises into the EE: all failures (bad op, budget exhausted,
type errors) terminate execution with ``status="error"`` and a reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

Instruction = tuple
Program = list


@dataclass
class ExecutionResult:
    """Outcome of running one capsule program at one node."""

    status: str  # "ok" | "error"
    reason: str = ""
    steps: int = 0
    #: Actions the program requested, in order: ("forward", port),
    #: ("broadcast",), ("deliver",), ("drop",).
    actions: list[tuple] = field(default_factory=list)
    trace: list[Any] = field(default_factory=list)
    registers: dict[str, Any] = field(default_factory=dict)


_COMPARATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_MAX_REGISTERS = 64
_MAX_VALUE_LEN = 4096


class CapsuleVM:
    """The sandboxed interpreter.

    Parameters
    ----------
    step_budget:
        Maximum instructions executed per run; exceeding it is an error
        (runaway active code cannot monopolise a node).
    """

    def __init__(self, *, step_budget: int = 512) -> None:
        self.step_budget = step_budget

    def execute(
        self,
        program: Program,
        *,
        environment: dict[str, Any] | None = None,
        soft_store: dict[str, Any] | None = None,
    ) -> ExecutionResult:
        """Run *program*; returns an :class:`ExecutionResult`.

        ``environment`` is read-only to the program; ``soft_store`` is the
        node's per-protocol persistent store, mutated in place by
        ``store`` ops.
        """
        env = environment or {}
        store = soft_store if soft_store is not None else {}
        result = ExecutionResult(status="ok")
        registers: dict[str, Any] = {}
        pc = 0

        def value_of(operand: Any) -> Any:
            if isinstance(operand, str) and operand in registers:
                return registers[operand]
            return operand

        def set_register(name: Any, value: Any) -> str | None:
            if not isinstance(name, str):
                return f"register name must be a string, got {name!r}"
            if name not in registers and len(registers) >= _MAX_REGISTERS:
                return f"register limit ({_MAX_REGISTERS}) exceeded"
            if isinstance(value, (bytes, str)) and len(value) > _MAX_VALUE_LEN:
                return "value too large"
            registers[name] = value
            return None

        while pc < len(program):
            if result.steps >= self.step_budget:
                result.status = "error"
                result.reason = f"step budget ({self.step_budget}) exhausted"
                break
            result.steps += 1
            instruction = program[pc]
            if not isinstance(instruction, tuple) or not instruction:
                result.status = "error"
                result.reason = f"malformed instruction at {pc}: {instruction!r}"
                break
            op = instruction[0]
            error: str | None = None
            jump: int | None = None
            try:
                if op == "set":
                    error = set_register(instruction[1], instruction[2])
                elif op == "mov":
                    error = set_register(instruction[1], value_of(instruction[2]))
                elif op in ("add", "sub", "mul"):
                    a, b = value_of(instruction[2]), value_of(instruction[3])
                    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                        error = f"{op} needs numbers, got {a!r}, {b!r}"
                    else:
                        combined = (
                            a + b if op == "add" else a - b if op == "sub" else a * b
                        )
                        error = set_register(instruction[1], combined)
                elif op == "cmp":
                    comparator = _COMPARATORS.get(instruction[3])
                    if comparator is None:
                        error = f"unknown comparator {instruction[3]!r}"
                    else:
                        a = value_of(instruction[2])
                        b = value_of(instruction[4])
                        error = set_register(instruction[1], bool(comparator(a, b)))
                elif op == "jmp":
                    jump = int(instruction[1])
                elif op == "jif":
                    if value_of(instruction[1]):
                        jump = int(instruction[2])
                elif op == "env":
                    error = set_register(instruction[1], env.get(instruction[2]))
                elif op == "load":
                    error = set_register(instruction[1], store.get(value_of(instruction[2])))
                elif op == "store":
                    key = value_of(instruction[1])
                    if not isinstance(key, (str, int)):
                        error = f"store key must be str or int, got {key!r}"
                    else:
                        store[key] = value_of(instruction[2])
                elif op == "forward":
                    result.actions.append(("forward", value_of(instruction[1])))
                elif op == "broadcast":
                    result.actions.append(("broadcast",))
                elif op == "deliver":
                    result.actions.append(("deliver",))
                elif op == "drop":
                    result.actions.append(("drop",))
                    break
                elif op == "trace":
                    result.trace.append(value_of(instruction[1]))
                elif op == "halt":
                    break
                else:
                    error = f"unknown op {op!r}"
            except (TypeError, ValueError, IndexError) as exc:
                error = f"{op} failed: {exc}"
            if error is not None:
                result.status = "error"
                result.reason = f"at {pc}: {error}"
                break
            pc = pc + 1 + jump if jump is not None else pc + 1
            if pc < 0:
                result.status = "error"
                result.reason = "jump before program start"
                break
        result.registers = registers
        return result


def validate_program(program: Any) -> list[str]:
    """Static checks run before accepting a capsule program: structure,
    op names, jump targets.  Returns problems (empty = acceptable)."""
    problems: list[str] = []
    if not isinstance(program, list):
        return [f"program must be a list, got {type(program).__name__}"]
    known_ops = {
        "set", "mov", "add", "sub", "mul", "cmp", "jmp", "jif", "env",
        "load", "store", "forward", "broadcast", "deliver", "drop",
        "trace", "halt",
    }
    for index, instruction in enumerate(program):
        if not isinstance(instruction, tuple) or not instruction:
            problems.append(f"instruction {index} is not a non-empty tuple")
            continue
        if instruction[0] not in known_ops:
            problems.append(f"instruction {index}: unknown op {instruction[0]!r}")
        if instruction[0] in ("jmp", "jif"):
            offset = instruction[-1]
            if not isinstance(offset, int):
                problems.append(f"instruction {index}: jump offset must be int")
            else:
                target = index + 1 + offset
                if not 0 <= target <= len(program):
                    problems.append(
                        f"instruction {index}: jump target {target} out of range"
                    )
    return problems
