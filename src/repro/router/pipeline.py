"""Pipeline assembly: standard router data paths from the component
library, including the exact Figure-3 composite.

These builders return a :class:`RouterPipeline` handle exposing the entry
push interface, the per-stage components, and a ``service`` pump for the
pull-side (queues → link scheduler) half of the path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.cf.composite import CompositeComponent
from repro.cf.constraints import acyclic
from repro.opencom.capsule import Capsule
from repro.opencom.component import Component
from repro.osbase.clock import VirtualClock
from repro.router.components.classifier import Classifier
from repro.router.components.forwarding import Forwarder
from repro.router.components.headerproc import (
    IPv4HeaderProcessor,
    IPv6HeaderProcessor,
    ProtocolRecognizer,
)
from repro.router.components.meters import CollectorSink
from repro.router.components.queues import FifoQueue
from repro.router.components.scheduling import PriorityLinkScheduler
from repro.router.router_cf import RouterCF


class DrainExhausted(RuntimeWarning):
    """``drain`` hit its round limit with packets still being serviced."""


@dataclass
class RouterPipeline:
    """Handle over an assembled data path."""

    capsule: Capsule
    cf: RouterCF
    entry: Component
    stages: dict[str, Component] = field(default_factory=dict)
    scheduler: Component | None = None
    composite: CompositeComponent | None = None
    #: Per-hop TX adapters (when the pipeline egresses through NICs);
    #: :meth:`flush_tx` drains their wire side so pooled buffers recycle.
    tx_adapters: dict[str, Component] = field(default_factory=dict)
    #: Cached entry vtable (the push interfaces never change identity for
    #: the life of a pipeline handle, so the lookup is paid once).
    _entry_vtable: Any = field(default=None, init=False, repr=False, compare=False)
    #: Active compiled-chain plan (see :meth:`compile`); ``None`` while
    #: the pipeline dispatches interpreted.
    _compiled_plan: Any = field(default=None, init=False, repr=False, compare=False)

    def _vtable(self) -> Any:
        vtable = self._entry_vtable
        if vtable is None:
            vtable = self._entry_vtable = self.entry.interface("in0").vtable
        return vtable

    def push(self, packet: Any) -> None:
        """Inject one packet at the pipeline entry."""
        self._vtable().invoke("push", packet)

    def push_batch(self, packets: list) -> None:
        """Inject a whole batch at the pipeline entry.

        Batches travel the component graph as batches (each stage's
        ``push_batch``), subject to the usual interception guarantee: an
        interceptor on any stage's ``in0`` sees per-packet calls.  When a
        compiled chain is installed the batch enters through its handle
        instead — same contract: any interceptor appearing in the region
        revokes the handle, which then transparently dispatches through
        the (interposed) entry vtable.
        """
        plan = self._compiled_plan
        if plan is not None:
            plan.handle(packets)
            return
        self._vtable().invoke_batch("push", packets)

    # -- compiled hot path (see repro.opencom.compile) ---------------------

    def compile(
        self,
        *,
        mode: str = "closure",
        strict: bool = True,
        fusion_plan: Any = None,
    ) -> Any:
        """Compile the push chain into one specialised per-batch callable.

        Replaces any previous compiled plan.  With ``strict=False`` a
        region that cannot be compiled (interceptors present) returns
        ``None`` and the pipeline stays interpreted — the form the
        sharded datapath uses when rebuilding after resize/recovery.
        """
        from repro.opencom.compile import CompileError, compile_push_chain

        self.decompile()
        try:
            plan = compile_push_chain(
                self.entry, interface="in0", method="push",
                mode=mode, fusion_plan=fusion_plan,
            )
        except CompileError:
            if strict:
                raise
            return None
        self._compiled_plan = plan
        return plan

    def decompile(self) -> None:
        """Tear down the compiled chain (idempotent); dispatch reverts to
        the interpreted entry vtable."""
        plan = self._compiled_plan
        if plan is not None:
            self._compiled_plan = None
            plan.revert()

    @property
    def compiled_plan(self) -> Any:
        """The installed :class:`~repro.opencom.compile.CompilationPlan`
        (possibly revoked), or ``None`` when interpreted."""
        return self._compiled_plan

    @property
    def compiled_active(self) -> bool:
        """True while an unrevoked compiled chain handles ``push_batch``."""
        plan = self._compiled_plan
        return plan is not None and plan.active

    def service(self, budget: int = 64) -> int:
        """Pump the pull side (scheduler) for up to *budget* packets.

        The whole round is batched end to end: the scheduler draws its
        budget through the queues' ``pull_batch`` port handles and hands
        the serviced list downstream as one ``push_batch``, so with the
        push side already batched no crossing in the pipeline is paid
        per packet.  Interceptors on any ``pull``/``push`` slot still see
        per-packet calls (the vtable degrades batch dispatch on
        interception).
        """
        if self.scheduler is None:
            return 0
        return self.scheduler.service(budget)

    def drain(self, *, max_rounds: int = 10_000, budget: int = 64) -> int:
        """Service until the scheduler finds nothing more; returns packets
        serviced.

        If every one of *max_rounds* rounds still found packets, one extra
        probe round decides whether the queues really hold more: if so, a
        :class:`DrainExhausted` warning reports the partial count instead
        of letting it masquerade as a full drain.  (The probe's packets
        are included in the returned total.)
        """
        total = 0
        for _ in range(max_rounds):
            serviced = self.service(budget)
            total += serviced
            if serviced == 0:
                return total
        probe = self.service(budget)
        total += probe
        if probe:
            warnings.warn(
                f"drain stopped after max_rounds={max_rounds} with packets "
                f"still queued ({total} serviced so far)",
                DrainExhausted,
                stacklevel=2,
            )
        return total

    def flush_tx(
        self,
        *,
        budget: int | None = None,
        handler: Any = None,
    ) -> int:
        """Drain every TX adapter's wire side; returns frames drained.

        This is the release half of the pooled buffer lifecycle: each
        drained frame has left the simulated machine, so its buffer goes
        back to the pool it was acquired from at NIC ingress.  A
        *handler* takes ownership of each frame instead (and must
        release it when done) — how the sharded benchmarks record
        per-flow egress order before recycling.  A pipeline without TX
        adapters returns 0.
        """
        total = 0
        for adapter in self.tx_adapters.values():
            total += adapter.drain_wire(budget=budget, handler=handler)
        return total

    def swap_stage(
        self,
        stage: str,
        factory: Any,
        *,
        new_name: str | None = None,
        transfer_state: Any = None,
    ) -> Component:
        """Hot-swap one named stage through the architecture meta-model.

        The capsule's :meth:`~repro.opencom.metamodel.architecture.
        ArchitectureMetaModel.replace_component` does the quiesce →
        unbind → swap → rebind → resume sequence (rolled back on
        failure); this wrapper keeps the pipeline handle causally
        connected: a live compiled chain is torn down first (a vtable
        mutation must never race a specialised region — the caller
        recompiles once the swap settles), the ``stages`` map and the
        ``entry``/``scheduler`` handles follow the replacement, and CF
        plug-in membership transfers from the old component to the new.

        *transfer_state* defaults to
        :func:`~repro.cf.constraints.component_state_transfer`, so a
        queue swap carries its backlog across (``STATE_ATTRS``).
        """
        from repro.cf.constraints import component_state_transfer

        if stage not in self.stages:
            raise KeyError(f"pipeline has no stage {stage!r}")
        old = self.stages[stage]
        self.decompile()
        replacement = self.capsule.architecture.replace_component(
            old,
            factory,
            name=new_name,
            transfer_state=(
                component_state_transfer
                if transfer_state is None
                else transfer_state
            ),
        )
        self.stages[stage] = replacement
        if old is self.entry:
            self.entry = replacement
            self._entry_vtable = None
        if old is self.scheduler:
            self.scheduler = replacement
        if self.cf.plugins().get(old.name) is old:
            self.cf.eject(old.name)
            self.cf.accept(replacement)
        return replacement

    def stage_stats(self) -> dict[str, dict[str, int]]:
        """Counters of every stage, keyed by stage name."""
        stats = {}
        for name, stage in self.stages.items():
            stage_stats = getattr(stage, "stats", None)
            stats[name] = stage_stats() if callable(stage_stats) else {}
        return stats


def _normalise_compiled(compiled: Any) -> str | None:
    """Builder ``compiled=`` option → compile mode (or None for off).

    ``True`` means closure composition; ``"source"`` selects the
    generated-source variant (`compile()` of one merged loop).
    """
    if compiled is True:
        return "closure"
    if compiled in ("closure", "source"):
        return compiled
    if not compiled:
        return None
    raise ValueError(
        f"compiled= must be False, True, 'closure' or 'source', got {compiled!r}"
    )


def build_figure3_composite(
    capsule: Capsule,
    *,
    name: str = "gateway",
    queue_capacity: int = 256,
    classes: tuple[str, ...] = ("expedited", "best-effort"),
) -> tuple[CompositeComponent, RouterPipeline]:
    """Assemble the composite of Figure 3 inside *capsule*.

    Topology (all constituents conforming to the Router CF, managed by the
    composite's controller, internal topology kept acyclic by a
    controller-installed constraint)::

        protocol-recogniser --ipv4--> ipv4-processor -\\
                            --ipv6--> ipv6-processor --+--> classifier
        classifier --<class>--> queue:<class>  (one queueing gateway per class)
        link-scheduler  <--pull-- queues; pushes --> forward-sink

    The composite exports the recogniser's ``in0`` as ``input`` and the
    classifier's IClassifier as ``classifier`` ("Access to IClassifier
    interfaces" in the figure).
    """
    cf = RouterCF()
    capsule.adopt(cf, f"{name}-cf")
    composite = capsule.instantiate(lambda: CompositeComponent(capsule), name)

    recogniser = composite.add_member(ProtocolRecognizer, "protocol-recogniser")
    v4 = composite.add_member(IPv4HeaderProcessor, "ipv4-processor")
    v6 = composite.add_member(IPv6HeaderProcessor, "ipv6-processor")
    classifier = composite.add_member(
        lambda: Classifier(default_output=classes[-1]), "classifier"
    )
    queues: dict[str, Component] = {}
    for klass in classes:
        queues[klass] = composite.add_member(
            lambda: FifoQueue(queue_capacity), f"queue:{klass}"
        )
    scheduler = composite.add_member(
        lambda: PriorityLinkScheduler(list(classes)), "link-scheduler"
    )
    sink = composite.add_member(CollectorSink, "forward-sink")

    composite.bind_internal(
        "protocol-recogniser", "out", "ipv4-processor", "in0",
        connection_name=ProtocolRecognizer.OUT_V4,
    )
    composite.bind_internal(
        "protocol-recogniser", "out", "ipv6-processor", "in0",
        connection_name=ProtocolRecognizer.OUT_V6,
    )
    composite.bind_internal("ipv4-processor", "out", "classifier", "in0")
    composite.bind_internal("ipv6-processor", "out", "classifier", "in0")
    for klass in classes:
        composite.bind_internal(
            "classifier", "out", f"queue:{klass}", "in0", connection_name=klass
        )
        composite.bind_internal(
            "link-scheduler", "inputs", f"queue:{klass}", "pull0",
            connection_name=klass,
        )
    composite.bind_internal("link-scheduler", "out", "forward-sink", "in0")

    composite.controller.add_constraint("acyclic", acyclic())
    composite.export("input", "protocol-recogniser", "in0")
    composite.export("classifier", "classifier", "classifier")
    cf.accept(composite)

    pipeline = RouterPipeline(
        capsule=capsule,
        cf=cf,
        entry=recogniser,
        stages={
            "recogniser": recogniser,
            "ipv4": v4,
            "ipv6": v6,
            "classifier": classifier,
            **{f"queue:{k}": q for k, q in queues.items()},
            "scheduler": scheduler,
            "sink": sink,
        },
        scheduler=scheduler,
        composite=composite,
    )
    return composite, pipeline


def build_forwarding_pipeline(
    capsule: Capsule,
    *,
    routes: dict[str, str],
    next_hop_sinks: dict[str, Component] | None = None,
    tx_nics: dict[str, Any] | None = None,
    clock: VirtualClock | None = None,
    queue_capacity: int = 256,
    validate_checksums: bool = True,
    compiled: Any = False,
) -> RouterPipeline:
    """A flat (non-composite) IPv4 forwarding path used by the data-path
    benchmarks: recogniser → v4 processor → forwarder → per-hop sinks.

    ``next_hop_sinks`` maps next-hop names to sink components (created as
    :class:`CollectorSink` when omitted).  ``tx_nics`` maps next-hop
    names to stratum-1 :class:`~repro.osbase.nic.Nic` instances instead:
    those hops terminate in a
    :class:`~repro.router.components.nicadapters.TransmitAdapter`
    (registered in ``pipeline.tx_adapters``), so
    :meth:`RouterPipeline.flush_tx` closes the pooled buffer lifecycle
    through the TX rings.

    ``compiled`` installs the specialised per-batch chain over the
    assembled path (``True``/"closure" for closure composition,
    "source" for the generated-source variant); any interceptor
    appearing in the region revokes it back to interpreted dispatch.
    """
    from repro.router.components.nicadapters import TransmitAdapter

    cf = RouterCF()
    capsule.adopt(cf, "router-cf")
    recogniser = capsule.instantiate(ProtocolRecognizer, "recogniser")
    v4 = capsule.instantiate(
        lambda: IPv4HeaderProcessor(validate_checksum=validate_checksums), "ipv4"
    )
    v6 = capsule.instantiate(IPv6HeaderProcessor, "ipv6")
    forwarder = capsule.instantiate(Forwarder, "forwarder")
    forwarder.load_routes(routes)

    hops = sorted(set(routes.values()))
    sinks: dict[str, Component] = {}
    tx_adapters: dict[str, Component] = {}
    for hop in hops:
        if tx_nics and hop in tx_nics:
            adapter = capsule.instantiate(
                lambda nic=tx_nics[hop]: TransmitAdapter(nic), f"tx:{hop}"
            )
            sinks[hop] = adapter
            tx_adapters[hop] = adapter
        elif next_hop_sinks and hop in next_hop_sinks:
            sinks[hop] = next_hop_sinks[hop]
        else:
            sinks[hop] = capsule.instantiate(CollectorSink, f"sink:{hop}")

    capsule.bind(
        recogniser.receptacle("out"), v4.interface("in0"),
        connection_name=ProtocolRecognizer.OUT_V4,
    )
    capsule.bind(
        recogniser.receptacle("out"), v6.interface("in0"),
        connection_name=ProtocolRecognizer.OUT_V6,
    )
    capsule.bind(v4.receptacle("out"), forwarder.interface("in0"))
    capsule.bind(v6.receptacle("out"), forwarder.interface("in0"))
    for hop, sink in sinks.items():
        capsule.bind(
            forwarder.receptacle("out"), sink.interface("in0"), connection_name=hop
        )

    for component in (recogniser, v4, v6, forwarder):
        cf.accept(component)

    pipeline = RouterPipeline(
        capsule=capsule,
        cf=cf,
        entry=recogniser,
        stages={
            "recogniser": recogniser,
            "ipv4": v4,
            "ipv6": v6,
            "forwarder": forwarder,
            **{f"sink:{hop}": sink for hop, sink in sinks.items()},
        },
        tx_adapters=tx_adapters,
    )
    mode = _normalise_compiled(compiled)
    if mode is not None:
        pipeline.compile(mode=mode)
    return pipeline


def build_sharded_forwarding_datapath(
    *,
    routes: dict[str, str],
    shards: int,
    threads: Any,
    pools: list | None = None,
    batch: int = 32,
    rx_ring_size: int | None = None,
    tx_ring_size: int | None = None,
    fused: bool = False,
    compiled: Any = False,
    validate_checksums: bool = True,
    tx_handler: Any = None,
    supervise: bool = True,
    steal_watermark: int | None = None,
    buffer_size: int = 2048,
    pool_buffers: int = 256,
    exhaustion_policy: str = "drop-newest",
    buckets: int | None = None,
    locality: Any = None,
    name: str = "sharded-datapath",
):
    """Assemble the sharded multi-worker forwarding datapath: *shards*
    share-nothing copies of the flat forwarding pipeline behind one
    RSS-style flow-hash steering stage, as cooperative workers under the
    thread-management CF *threads* (which must have a scheduler
    installed).

    Per shard: its own :class:`~repro.opencom.capsule.Capsule` (worker
    isolation mirrors the paper's capsule boundaries), an RX
    :class:`~repro.osbase.nic.Nic` bound to that shard's private pool
    slice, a :func:`build_forwarding_pipeline` with per-hop TX NICs, and
    a flush that drains those TX rings back to the shard's pool.
    *pools* supplies the slices (length must equal *shards* — typically
    :func:`~repro.osbase.buffers.carve_shard_pools`); when omitted, a
    fresh budget of *pool_buffers* × *buffer_size*-byte buffers is
    carved here under *exhaustion_policy*.

    *tx_handler* is an optional factory ``shard_index -> frame
    consumer``; the consumer takes ownership of each egressing frame
    (release it when done) — how C15 records per-flow egress order.
    Returns the :class:`~repro.osbase.sharding.ShardedDatapath`; each
    shard's pipeline rides along as ``shard.engine``.

    The datapath is built *elastic*: the per-shard assembly doubles as
    its ``shard_factory``, so ``resize(n)`` can grow the fleet with
    identically-shaped pipelines at run time (the factory is re-invoked
    with the grown index and its fresh pool slice; *tx_handler* is
    called again for each grown shard).  *buckets* sizes the RSS
    indirection table (default: one bucket per initial shard — the
    historical ``hash % N`` steering; elastic deployments want several
    buckets per shard so a resize moves few flows).  *locality* is an
    optional ``(thief, victim) -> penalty`` steal cost model, typically
    :meth:`repro.ixp.placement.ShardPlacement.locality_penalty`.

    *name* identifies this datapath (and prefixes its shard capsules and
    worker threads) — a fleet of capsule nodes builds one datapath per
    node, so nothing here may assume it is the only datapath in the
    process.
    """
    from repro.netsim.wire import PacketError, flow_hash_of
    from repro.opencom.fusion import fuse_pipeline
    from repro.osbase.buffers import carve_shard_pools
    from repro.osbase.nic import Nic
    from repro.osbase.sharding import Shard, ShardedDatapath, ShardingError

    if shards < 1:
        raise ShardingError(f"shards must be >= 1, got {shards}")
    if pools is None:
        pools = carve_shard_pools(
            buffer_size, pool_buffers, shards, exhaustion_policy=exhaustion_policy
        )
    if len(pools) != shards:
        raise ShardingError(
            f"need one pool slice per shard: {len(pools)} pools for {shards} shards"
        )
    rx_ring = rx_ring_size if rx_ring_size is not None else 8 * batch
    tx_ring = tx_ring_size if tx_ring_size is not None else 4 * batch
    hops = sorted(set(routes.values()))

    compile_mode = _normalise_compiled(compiled)

    def make_shard(index: int, pool: Any) -> Shard:
        capsule = Capsule(f"{name}:shard{index}")
        pipeline = build_forwarding_pipeline(
            capsule,
            routes=routes,
            tx_nics={hop: Nic(tx_ring_size=tx_ring) for hop in hops},
            validate_checksums=validate_checksums,
        )
        fusion_plan = None
        if fused:
            fusion_plan = fuse_pipeline(list(capsule.components().values()))
        if compile_mode is not None:
            pipeline.compile(mode=compile_mode, fusion_plan=fusion_plan)
        handler = tx_handler(index) if tx_handler is not None else None
        return Shard(
            index,
            nic=Nic(rx_ring_size=rx_ring, pool=pool),
            pool=pool,
            push_batch=pipeline.push_batch,
            flush=lambda p=pipeline, h=handler: p.flush_tx(handler=h),
            engine=pipeline,
            # Reconfiguration hooks: the sharded datapath de-specialises
            # every shard while a resize/recovery round is in flight and
            # rebuilds the compiled chain on commit/rollback.
            decompile=pipeline.decompile,
            recompile=(
                None
                if compile_mode is None
                else (lambda p=pipeline, m=compile_mode: p.compile(mode=m, strict=False))
            ),
        )

    built = [make_shard(index, pools[index]) for index in range(shards)]
    return ShardedDatapath(
        built,
        threads=threads,
        hash_fn=flow_hash_of,
        batch=batch,
        steal_watermark=steal_watermark,
        supervise=supervise,
        # Frames the hash cannot parse are counted malformed refusals,
        # matching the NIC's own malformed-drop policy.
        reject=(PacketError,),
        buckets=buckets,
        # The same assembly grows the fleet at run time (elastic resize).
        shard_factory=make_shard,
        locality=locality,
        name=name,
    )
