"""Packet-filter specifications and the filter expression language.

A :class:`FilterSpec` matches packets on the classic five-tuple-plus
fields and names the outgoing connection on which matches must be
emitted — the semantics IClassifier components are contractually bound to
honour (Router CF rule 2, section 5 of the paper).

Specs can be built directly or parsed from a compact text form::

    version=4 and dst=10.3.0.0/16 and proto=udp and dport=2000-2999 -> video priority=20

Grammar (informal): ``clause ('and' clause)* '->' OUTPUT ['priority=' INT]``
with clauses ``version=4|6``, ``src=PREFIX``, ``dst=PREFIX``,
``proto=udp|tcp|icmp|INT``, ``sport=N[-M]``, ``dport=N[-M]``, ``dscp=N``.
``*`` as a clause matches everything.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.netsim.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Header,
    Packet,
    ipv4,
    ipv6,
)
from repro.opencom.errors import OpenComError

_FILTER_IDS = itertools.count(1)

_PROTO_NAMES = {"udp": PROTO_UDP, "tcp": PROTO_TCP, "icmp": PROTO_ICMP}


class FilterError(OpenComError):
    """Malformed filter specification."""


def parse_prefix(text: str, *, version: int | None = None) -> tuple[int, int, int]:
    """Parse ``addr/len`` into (version, network_int, prefix_len).

    A bare address is a host prefix (/32 or /128).  The version is
    inferred from the address form unless forced.
    """
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        try:
            prefix_len = int(len_text)
        except ValueError:
            raise FilterError(f"bad prefix length in {text!r}") from None
    else:
        addr_text, prefix_len = text, -1
    if ":" in addr_text:
        ver, bits = 6, 128
        address = ipv6(addr_text)
    else:
        ver, bits = 4, 32
        address = ipv4(addr_text)
    if version is not None and version != ver:
        raise FilterError(f"address {text!r} is not IPv{version}")
    if prefix_len < 0:
        prefix_len = bits
    if not 0 <= prefix_len <= bits:
        raise FilterError(f"prefix length {prefix_len} out of range for IPv{ver}")
    mask = ((1 << prefix_len) - 1) << (bits - prefix_len) if prefix_len else 0
    return ver, address & mask, prefix_len


def _prefix_matches(address: int, version: int, prefix: tuple[int, int, int]) -> bool:
    pver, network, length = prefix
    if version != pver:
        return False
    bits = 32 if pver == 4 else 128
    if length == 0:
        return True
    mask = ((1 << length) - 1) << (bits - length)
    return (address & mask) == network


@dataclass
class FilterSpec:
    """One packet filter: match fields -> output connection name.

    ``None`` fields are wildcards.  Port fields are inclusive
    ``(low, high)`` ranges.  Higher ``priority`` wins; ties break by
    installation order (earlier wins).
    """

    output: str
    version: int | None = None
    src: tuple[int, int, int] | None = None
    dst: tuple[int, int, int] | None = None
    protocol: int | None = None
    sport: tuple[int, int] | None = None
    dport: tuple[int, int] | None = None
    dscp: int | None = None
    priority: int = 0
    filter_id: int = field(default_factory=lambda: next(_FILTER_IDS))

    def matches(self, packet: Packet) -> bool:
        """True when *packet* satisfies every non-wildcard field."""
        if self.version is not None and packet.version != self.version:
            return False
        net = packet.net
        if self.src is not None and not _prefix_matches(
            net.src, packet.version, self.src
        ):
            return False
        if self.dst is not None and not _prefix_matches(
            net.dst, packet.version, self.dst
        ):
            return False
        if self.protocol is not None:
            proto = net.protocol if isinstance(net, IPv4Header) else net.next_header
            if proto != self.protocol:
                return False
        if self.sport is not None:
            sport = getattr(packet.transport, "sport", None)
            if sport is None or not self.sport[0] <= sport <= self.sport[1]:
                return False
        if self.dport is not None:
            dport = getattr(packet.transport, "dport", None)
            if dport is None or not self.dport[0] <= dport <= self.dport[1]:
                return False
        if self.dscp is not None and packet.dscp != self.dscp:
            return False
        return True

    def describe(self) -> dict[str, Any]:
        """Plain-dict rendering (used by IClassifier.list_filters)."""
        def prefix_text(p: tuple[int, int, int] | None) -> str | None:
            if p is None:
                return None
            ver, network, length = p
            if ver == 4:
                from repro.netsim.packet import format_ipv4
                return f"{format_ipv4(network)}/{length}"
            from repro.netsim.packet import format_ipv6
            return f"{format_ipv6(network)}/{length}"

        return {
            "id": self.filter_id,
            "output": self.output,
            "priority": self.priority,
            "version": self.version,
            "src": prefix_text(self.src),
            "dst": prefix_text(self.dst),
            "protocol": self.protocol,
            "sport": self.sport,
            "dport": self.dport,
            "dscp": self.dscp,
        }


def _parse_port_range(text: str) -> tuple[int, int]:
    if "-" in text:
        low_text, _, high_text = text.partition("-")
    else:
        low_text = high_text = text
    try:
        low, high = int(low_text), int(high_text)
    except ValueError:
        raise FilterError(f"bad port range {text!r}") from None
    if not (0 <= low <= high <= 65535):
        raise FilterError(f"port range {text!r} out of order or range")
    return low, high


def parse_filter(text: str) -> FilterSpec:
    """Parse the compact filter language into a :class:`FilterSpec`."""
    head, arrow, tail = text.partition("->")
    if not arrow:
        raise FilterError(f"filter {text!r} lacks '-> output'")
    tail_parts = tail.split()
    if not tail_parts:
        raise FilterError(f"filter {text!r} names no output")
    output = tail_parts[0]
    priority = 0
    for extra in tail_parts[1:]:
        key, eq, value = extra.partition("=")
        if key != "priority" or not eq:
            raise FilterError(f"unexpected trailing token {extra!r}")
        try:
            priority = int(value)
        except ValueError:
            raise FilterError(f"bad priority {value!r}") from None

    spec = FilterSpec(output=output, priority=priority)
    clauses = [c.strip() for c in head.split(" and ")]
    for clause in clauses:
        clause = clause.strip()
        if not clause or clause == "*":
            continue
        key, eq, value = clause.partition("=")
        if not eq:
            raise FilterError(f"bad clause {clause!r}")
        key, value = key.strip(), value.strip()
        if key == "version":
            if value not in ("4", "6"):
                raise FilterError(f"bad version {value!r}")
            spec.version = int(value)
        elif key == "src":
            spec.src = parse_prefix(value)
        elif key == "dst":
            spec.dst = parse_prefix(value)
        elif key == "proto":
            if value in _PROTO_NAMES:
                spec.protocol = _PROTO_NAMES[value]
            else:
                try:
                    spec.protocol = int(value)
                except ValueError:
                    raise FilterError(f"unknown protocol {value!r}") from None
        elif key == "sport":
            spec.sport = _parse_port_range(value)
        elif key == "dport":
            spec.dport = _parse_port_range(value)
        elif key == "dscp":
            try:
                spec.dscp = int(value)
            except ValueError:
                raise FilterError(f"bad dscp {value!r}") from None
        else:
            raise FilterError(f"unknown clause key {key!r}")
    # Consistency: src/dst version agreement.
    for prefix in (spec.src, spec.dst):
        if prefix is not None and spec.version is not None and prefix[0] != spec.version:
            raise FilterError(
                f"clause address family IPv{prefix[0]} conflicts with "
                f"version={spec.version}"
            )
    return spec


class FilterTable:
    """An ordered set of filters with first-match-by-priority semantics."""

    def __init__(self) -> None:
        self._filters: list[FilterSpec] = []

    def add(self, spec: FilterSpec | str) -> int:
        """Install a spec (or parse one from text); returns the filter id."""
        if isinstance(spec, str):
            spec = parse_filter(spec)
        self._filters.append(spec)
        # Highest priority first; stable sort keeps install order for ties.
        self._filters.sort(key=lambda s: -s.priority)
        return spec.filter_id

    def remove(self, filter_id: int) -> None:
        """Remove by id; unknown ids raise FilterError."""
        for index, spec in enumerate(self._filters):
            if spec.filter_id == filter_id:
                del self._filters[index]
                return
        raise FilterError(f"no filter with id {filter_id}")

    def classify(self, packet: Packet) -> FilterSpec | None:
        """First matching spec in priority order, or None."""
        for spec in self._filters:
            if spec.matches(packet):
                return spec
        return None

    def __len__(self) -> int:
        return len(self._filters)

    def __bool__(self) -> bool:
        """True when any filter is installed (batch paths use this to skip
        per-packet classification against an empty table)."""
        return bool(self._filters)

    def describe(self) -> list[dict[str, Any]]:
        """All specs, highest priority first."""
        return [spec.describe() for spec in self._filters]

    def __len__(self) -> int:
        return len(self._filters)

    def outputs(self) -> set[str]:
        """Every output name referenced by installed filters."""
        return {spec.output for spec in self._filters}
