"""The Router CF's packet-passing and classification interfaces.

Straight from section 5 of the paper: compliant components "must support
appropriate numbers and combinations of specific packet-passing
interfaces/receptacles (called IPacketPush and IPacketPull: these
respectively enable push- and pull-oriented inter-component
communication)", and "may (optionally) support an IClassifier interface
which exports an operation register_filter() that is used to install
packet-filters".
"""

from __future__ import annotations

from repro.opencom.interfaces import Interface


class IPacketPush(Interface):
    """Push-oriented packet passing: the caller drives the packet."""

    def push(self, packet) -> None:
        """Hand one packet to the component for processing."""
        ...


class IPacketPull(Interface):
    """Pull-oriented packet passing: the caller asks for the next packet.

    Batched pulls
    -------------
    Providers may additionally implement a native
    ``pull_batch(max_n) -> list`` that dequeues up to *max_n* packets in
    one cross-component call (bulk deque slicing, one counter bump).  It
    is deliberately a *discovered* convention rather than a declared
    interface method: declaring it would give ``pull_batch`` a vtable slot
    — and an interception point — of its own, letting batched callers
    bypass interceptors registered on ``pull``.  Instead the vtable's
    pull-batch machinery
    (:meth:`~repro.opencom.vtable.VTable.invoke_pull_batch` and the
    ``pull_batch`` handles materialised on ports) uses the native method
    only while the ``pull`` slot is unintercepted, degrading to per-item
    interposed ``pull`` calls the moment an interceptor appears.  A native
    ``pull_batch`` must be observationally equivalent to calling ``pull``
    until *max_n* packets or the first ``None``: same packet order, same
    counter totals, same residual queue depth.

    This is one of the two load-bearing dispatch invariants of the repo
    (the other — batch dispatch degrading to interposed per-item calls
    under interception — lives in :mod:`repro.opencom.vtable`); both are
    summarised with the datapath walkthrough in ``docs/architecture.md``.
    """

    def pull(self):
        """Return the next packet, or None when none is available."""
        ...


class IClassifier(Interface):
    """Optional classification interface of Router CF plug-ins.

    Components honouring IClassifier must emit each matching packet on the
    *named outgoing* IPacketPush/IPacketPull connection given by the filter
    specification.
    """

    def register_filter(self, spec) -> int:
        """Install a packet filter; returns a filter id."""
        ...

    def remove_filter(self, filter_id: int) -> None:
        """Remove a previously installed filter."""
        ...

    def list_filters(self) -> list:
        """Describe installed filters (highest priority first)."""
        ...


class IPacketSink(IPacketPush):
    """A terminal IPacketPush: accepts packets and never emits them.

    Sub-typing IPacketPush lets sinks plug into any push receptacle while
    still being recognisable to rule checks that need a terminal stage.
    """

    def collected_count(self) -> int:
        """Number of packets absorbed so far."""
        ...
