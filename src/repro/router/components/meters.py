"""Measurement and terminal components: counters, meters, sinks, sources.

These are the "standard components" a pipeline is instrumented with, and
the terminals tests and benchmarks use to observe what a data path
actually delivered.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import Packet
from repro.opencom.component import Provided
from repro.osbase.clock import VirtualClock
from repro.router.components.base import (
    PacketComponent,
    PushComponent,
    bulk_dequeue,
    release_dropped,
)
from repro.router.interfaces import IPacketPull, IPacketSink


class PacketCounterTap(PushComponent):
    """Transparent pass-through counting packets and bytes."""

    def __init__(self) -> None:
        super().__init__()
        self.bytes_seen = 0

    def process(self, packet: Packet) -> None:
        """Count and forward."""
        self.bytes_seen += packet.size_bytes
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Count the batch and forward it whole."""
        self.count("rx", len(packets))
        self.bytes_seen += sum(p.size_bytes for p in packets)
        self.emit_batch(packets)


class RateMeter(PushComponent):
    """Pass-through measuring throughput over a sliding window of virtual
    time."""

    def __init__(self, clock: VirtualClock, *, window_s: float = 1.0) -> None:
        super().__init__()
        self.clock = clock
        self.window_s = window_s
        self._events: deque[tuple[float, int]] = deque()

    def process(self, packet: Packet) -> None:
        """Record and forward."""
        now = self.clock.now
        self._events.append((now, packet.size_bytes))
        horizon = now - self.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()
        self.emit(packet)

    def rate_pps(self) -> float:
        """Packets/second over the current window."""
        return len(self._events) / self.window_s

    def rate_bps(self) -> float:
        """Bits/second over the current window."""
        return sum(size for _, size in self._events) * 8 / self.window_s


class CollectorSink(PacketComponent):
    """Terminal sink retaining (optionally bounded) delivered packets.

    A sink is the last holder of each packet's buffer reference, so a
    packet it does *not* retain — past the ``keep`` bound, or any packet
    when ``recycle`` is set — has its pooled buffer released on arrival.
    ``recycle=True`` is the steady-state egress mode: the sink counts and
    measures every delivery but returns the buffer to its pool at once.
    """

    PROVIDES = (Provided("in0", IPacketSink),)

    def __init__(self, *, keep: int | None = None, recycle: bool = False) -> None:
        super().__init__()
        self.keep = keep
        self.recycle = recycle
        self.packets: list[Packet] = []
        self.bytes_received = 0

    def push(self, packet: Packet) -> None:
        """Absorb one packet."""
        self.count("rx")
        self.bytes_received += packet.size_bytes
        if not self.recycle and (self.keep is None or len(self.packets) < self.keep):
            self.packets.append(packet)
        else:
            release_dropped(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Absorb a whole batch (bulk extend, bounded by ``keep``)."""
        self.count("rx", len(packets))
        self.bytes_received += sum(p.size_bytes for p in packets)
        if self.recycle:
            for packet in packets:
                release_dropped(packet)
            return
        if self.keep is None:
            self.packets.extend(packets)
        else:
            room = self.keep - len(self.packets)
            if room > 0:
                self.packets.extend(packets[:room])
            for packet in packets[max(room, 0):]:
                release_dropped(packet)

    def collected_count(self) -> int:
        """Packets absorbed so far."""
        return self.counters["rx"]

    def clear(self) -> None:
        """Reset retained packets and byte count (counters survive)."""
        self.packets.clear()
        self.bytes_received = 0


class DropSink(PacketComponent):
    """Terminal sink that discards everything (but counts it)."""

    PROVIDES = (Provided("in0", IPacketSink),)

    def push(self, packet: Packet) -> None:
        """Discard one packet (returning any pooled wire buffer)."""
        self.count("rx")
        release_dropped(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Discard a whole batch (one counter bump)."""
        self.count("rx", len(packets))
        for packet in packets:
            release_dropped(packet)

    def collected_count(self) -> int:
        """Packets discarded so far."""
        return self.counters["rx"]


class PullSource(PacketComponent):
    """IPacketPull provider over a pre-loaded packet list (test feeder for
    pull-side components such as link schedulers)."""

    PROVIDES = (Provided("pull0", IPacketPull),)

    def __init__(self, packets: list[Packet] | None = None) -> None:
        super().__init__()
        self._queue: deque[Packet] = deque(packets or [])

    def load(self, packets: list[Packet]) -> None:
        """Append packets to the feed."""
        self._queue.extend(packets)

    def pull(self) -> Packet | None:
        """Hand out the next packet."""
        if not self._queue:
            return None
        self.count("tx")
        return self._queue.popleft()

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Hand out up to *max_n* packets in one call (bulk feed,
        equivalent to repeated ``pull()``)."""
        got = bulk_dequeue(self._queue, max_n)
        if got:
            self.count("tx", len(got))
        return got

    @property
    def remaining(self) -> int:
        """Packets still queued."""
        return len(self._queue)
