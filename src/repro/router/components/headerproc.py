"""Header-processing components: the Figure-3 pipeline stages.

- :class:`ProtocolRecognizer` — fans packets out by IP version (the
  "protocol recogn" box of Figure 3);
- :class:`ChecksumValidator` — verifies IPv4 header checksums over real
  bytes, dropping corrupt packets;
- :class:`IPv4HeaderProcessor` — validation + TTL decrement + checksum
  refresh (drops TTL-expired packets);
- :class:`IPv6HeaderProcessor` — hop-limit handling for the v6 path.

Byte handling is polymorphic through the header objects: on materialised
:class:`~repro.netsim.packet.Packet` headers, validation packs 20 bytes
and ageing re-sums the header; on wire-resident packets
(:mod:`repro.netsim.wire`) the same calls checksum the memoryview in
place and patch TTL changes with RFC 1624 incremental updates — the
components themselves are byte-path agnostic.
"""

from __future__ import annotations

from repro.netsim.packet import IPv4Header, IPv6Header, Packet
from repro.router.components.base import PushComponent, release_dropped


class ProtocolRecognizer(PushComponent):
    """Emit v4 packets on connection ``ipv4``, v6 on ``ipv6``.

    Unrecognised packets (neither header type) are dropped and counted
    ``drop:unknown-version``.
    """

    OUT_V4 = "ipv4"
    OUT_V6 = "ipv6"

    def process(self, packet: Packet) -> None:
        """Dispatch by IP version."""
        if isinstance(packet.net, IPv4Header):
            self.count("v4")
            self.emit(packet, self.OUT_V4)
        elif isinstance(packet.net, IPv6Header):
            self.count("v6")
            self.emit(packet, self.OUT_V6)
        else:
            self.count("drop:unknown-version")
            release_dropped(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Partition the batch by IP version and emit each family once."""
        self.count("rx", len(packets))
        v4: list[Packet] = []
        v6: list[Packet] = []
        unknown = 0
        for packet in packets:
            net = packet.net
            if isinstance(net, IPv4Header):
                v4.append(packet)
            elif isinstance(net, IPv6Header):
                v6.append(packet)
            else:
                unknown += 1
                release_dropped(packet)
        if v4:
            self.count("v4", len(v4))
            self.emit_batch(v4, self.OUT_V4)
        if v6:
            self.count("v6", len(v6))
            self.emit_batch(v6, self.OUT_V6)
        if unknown:
            self.count("drop:unknown-version", unknown)


class ChecksumValidator(PushComponent):
    """Drop IPv4 packets whose header checksum does not verify.

    IPv6 packets pass through untouched (v6 has no header checksum).
    The check runs over the packed header bytes — a real RFC 1071
    computation per packet.
    """

    def process(self, packet: Packet) -> None:
        """Verify and forward or drop."""
        if isinstance(packet.net, IPv4Header) and not packet.net.checksum_ok():
            self.count("drop:bad-checksum")
            release_dropped(packet)
            return
        self.count("ok")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Verify per packet, emit the survivors as one batch."""
        self.count("rx", len(packets))
        survivors: list[Packet] = []
        bad = 0
        for packet in packets:
            net = packet.net
            if isinstance(net, IPv4Header) and not net.checksum_ok():
                bad += 1
                release_dropped(packet)
                continue
            survivors.append(packet)
        if bad:
            self.count("drop:bad-checksum", bad)
        if survivors:
            self.count("ok", len(survivors))
            self.emit_batch(survivors)


class IPv4HeaderProcessor(PushComponent):
    """IPv4 forwarding-path header handling.

    Validates the checksum, decrements TTL, drops expired packets
    (``drop:ttl-expired``), refreshes the checksum, forwards.
    """

    def __init__(self, *, validate_checksum: bool = True) -> None:
        super().__init__()
        self.validate_checksum = validate_checksum

    def process(self, packet: Packet) -> None:
        """Validate, age, and forward one IPv4 packet."""
        net = packet.net
        if not isinstance(net, IPv4Header):
            self.count("drop:not-ipv4")
            release_dropped(packet)
            return
        if self.validate_checksum and not net.checksum_ok():
            self.count("drop:bad-checksum")
            release_dropped(packet)
            return
        # decrement_ttl is polymorphic byte handling: full checksum
        # recomputation on materialised headers, in-place RFC 1624
        # incremental update on wire-resident views.
        if not net.decrement_ttl():
            self.count("drop:ttl-expired")
            release_dropped(packet)
            return
        self.count("forwarded")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Header work stays per-packet; dispatch and emission amortise."""
        self.count("rx", len(packets))
        counters = self.counters
        validate = self.validate_checksum
        survivors: list[Packet] = []
        for packet in packets:
            net = packet.net
            if not isinstance(net, IPv4Header):
                counters["drop:not-ipv4"] += 1
                release_dropped(packet)
                continue
            if validate and not net.checksum_ok():
                counters["drop:bad-checksum"] += 1
                release_dropped(packet)
                continue
            if not net.decrement_ttl():
                counters["drop:ttl-expired"] += 1
                release_dropped(packet)
                continue
            survivors.append(packet)
        if survivors:
            self.count("forwarded", len(survivors))
            self.emit_batch(survivors)


class IPv6HeaderProcessor(PushComponent):
    """IPv6 forwarding-path header handling (hop-limit decrement)."""

    def process(self, packet: Packet) -> None:
        """Age and forward one IPv6 packet."""
        net = packet.net
        if not isinstance(net, IPv6Header):
            self.count("drop:not-ipv6")
            release_dropped(packet)
            return
        if not net.decrement_hop_limit():
            self.count("drop:hop-limit-expired")
            release_dropped(packet)
            return
        self.count("forwarded")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Hop-limit work per packet, one emission for the survivors."""
        self.count("rx", len(packets))
        counters = self.counters
        survivors: list[Packet] = []
        for packet in packets:
            net = packet.net
            if not isinstance(net, IPv6Header):
                counters["drop:not-ipv6"] += 1
                release_dropped(packet)
                continue
            if not net.decrement_hop_limit():
                counters["drop:hop-limit-expired"] += 1
                release_dropped(packet)
                continue
            survivors.append(packet)
        if survivors:
            self.count("forwarded", len(survivors))
            self.emit_batch(survivors)
