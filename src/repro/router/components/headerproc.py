"""Header-processing components: the Figure-3 pipeline stages.

- :class:`ProtocolRecognizer` — fans packets out by IP version (the
  "protocol recogn" box of Figure 3);
- :class:`ChecksumValidator` — verifies IPv4 header checksums over real
  bytes, dropping corrupt packets;
- :class:`IPv4HeaderProcessor` — validation + TTL decrement + checksum
  refresh (drops TTL-expired packets);
- :class:`IPv6HeaderProcessor` — hop-limit handling for the v6 path.

Byte handling is polymorphic through the header objects: on materialised
:class:`~repro.netsim.packet.Packet` headers, validation packs 20 bytes
and ageing re-sums the header; on wire-resident packets
(:mod:`repro.netsim.wire`) the same calls checksum the memoryview in
place and patch TTL changes with RFC 1624 incremental updates — the
components themselves are byte-path agnostic.
"""

from __future__ import annotations

from repro.netsim.packet import IPv4Header, IPv6Header, Packet
from repro.router.components.base import PushComponent, release_dropped


class ProtocolRecognizer(PushComponent):
    """Emit v4 packets on connection ``ipv4``, v6 on ``ipv6``.

    Unrecognised packets (neither header type) are dropped and counted
    ``drop:unknown-version``.
    """

    OUT_V4 = "ipv4"
    OUT_V6 = "ipv6"

    def process(self, packet: Packet) -> None:
        """Dispatch by IP version."""
        if isinstance(packet.net, IPv4Header):
            self.count("v4")
            self.emit(packet, self.OUT_V4)
        elif isinstance(packet.net, IPv6Header):
            self.count("v6")
            self.emit(packet, self.OUT_V6)
        else:
            self.count("drop:unknown-version")
            release_dropped(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Partition the batch by IP version and emit each family once."""
        self.count("rx", len(packets))
        v4: list[Packet] = []
        v6: list[Packet] = []
        unknown = 0
        for packet in packets:
            net = packet.net
            if isinstance(net, IPv4Header):
                v4.append(packet)
            elif isinstance(net, IPv6Header):
                v6.append(packet)
            else:
                unknown += 1
                release_dropped(packet)
        if v4:
            self.count("v4", len(v4))
            self.emit_batch(v4, self.OUT_V4)
        if v6:
            self.count("v6", len(v6))
            self.emit_batch(v6, self.OUT_V6)
        if unknown:
            self.count("drop:unknown-version", unknown)

    # -- compiled hot path (see repro.opencom.compile) ---------------------

    def compiled_batch_kernel(self, next_map):
        """Closure-composed ``push_batch``: partition, call kernels direct.

        Observationally identical to :meth:`push_batch` — same counters
        under the same conditions, same emission order (v4 family before
        v6), same per-drop releases — with the downstream vtable/port
        frames replaced by direct kernel calls.
        """
        v4_kernel = next_map.get(self.OUT_V4)
        v6_kernel = next_map.get(self.OUT_V6)
        if v4_kernel is None or v6_kernel is None:
            return None  # unbound family: keep the native emit_batch path
        counters = self.counters

        def kernel(
            packets,
            _c=counters,
            _k4=v4_kernel,
            _k6=v6_kernel,
            _v4=IPv4Header,
            _v6=IPv6Header,
            _release=release_dropped,
        ):
            _c["rx"] += len(packets)
            v4: list[Packet] = []
            v6: list[Packet] = []
            unknown = 0
            a4 = v4.append
            a6 = v6.append
            for packet in packets:
                net = packet.net
                if isinstance(net, _v4):
                    a4(packet)
                elif isinstance(net, _v6):
                    a6(packet)
                else:
                    unknown += 1
                    _release(packet)
            if v4:
                _c["v4"] += len(v4)
                _k4(v4)
                _c["tx"] += len(v4)
            if v6:
                _c["v6"] += len(v6)
                _k6(v6)
                _c["tx"] += len(v6)
            if unknown:
                _c["drop:unknown-version"] += unknown

        return kernel

    def compiled_source(self, ctx, next_map):
        """Contribute the version-partition stage to the merged loop.

        The v4 family *is* the spine (the common case the compiler
        specialises); v6 packets divert to a side list flushed through
        the v6 closure kernel after the spine's own flush blocks.
        """
        v6_kernel = next_map.get(self.OUT_V6)
        if self.OUT_V4 not in next_map or v6_kernel is None:
            return NotImplemented
        c = ctx.bind("rec_counters", self.counters)
        v4_cls = ctx.bind("IPv4Header", IPv4Header)
        v6_cls = ctx.bind("IPv6Header", IPv6Header)
        release = ctx.bind("release_dropped", release_dropped)
        k6 = ctx.bind("v6_kernel", v6_kernel)
        v6_list = ctx.fresh("v6_side")
        unknown = ctx.fresh("unknown")
        n_v4 = ctx.fresh("n_v4")
        ctx.prologue += [f"{v6_list} = []", f"{unknown} = 0"]
        ctx.loop += [
            "net = pkt.net",
            "net_cls = net.__class__",
            f"if net_cls is not {v4_cls} and not isinstance(net, {v4_cls}):",
            f"    if isinstance(net, {v6_cls}):",
            f"        {v6_list}.append(pkt)",
            "        continue",
            f"    {unknown} += 1",
            f"    {release}(pkt)",
            "    continue",
        ]
        ctx.epilogue += [
            # Arrivals are derived, not counted per packet: everything
            # that neither diverted nor dropped stayed on the spine.
            f"{n_v4} = n - len({v6_list}) - {unknown}",
            f"{c}['rx'] += n",
            f"if {n_v4}:",
            f"    {c}['v4'] += {n_v4}",
            f"    {c}['tx'] += {n_v4}",
            f"if {unknown}:",
            f"    {c}['drop:unknown-version'] += {unknown}",
        ]
        ctx.flush.append([
            f"if {v6_list}:",
            f"    {c}['v6'] += len({v6_list})",
            f"    {k6}({v6_list})",
            f"    {c}['tx'] += len({v6_list})",
        ])
        ctx.facts["net_var"] = "net"
        ctx.facts["net_class_var"] = "net_cls"
        ctx.facts["version"] = 4
        ctx.facts["arrivals_var"] = n_v4
        return self.OUT_V4


class ChecksumValidator(PushComponent):
    """Drop IPv4 packets whose header checksum does not verify.

    IPv6 packets pass through untouched (v6 has no header checksum).
    The check runs over the packed header bytes — a real RFC 1071
    computation per packet.
    """

    def process(self, packet: Packet) -> None:
        """Verify and forward or drop."""
        if isinstance(packet.net, IPv4Header) and not packet.net.checksum_ok():
            self.count("drop:bad-checksum")
            release_dropped(packet)
            return
        self.count("ok")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Verify per packet, emit the survivors as one batch."""
        self.count("rx", len(packets))
        survivors: list[Packet] = []
        bad = 0
        for packet in packets:
            net = packet.net
            if isinstance(net, IPv4Header) and not net.checksum_ok():
                bad += 1
                release_dropped(packet)
                continue
            survivors.append(packet)
        if bad:
            self.count("drop:bad-checksum", bad)
        if survivors:
            self.count("ok", len(survivors))
            self.emit_batch(survivors)


class IPv4HeaderProcessor(PushComponent):
    """IPv4 forwarding-path header handling.

    Validates the checksum, decrements TTL, drops expired packets
    (``drop:ttl-expired``), refreshes the checksum, forwards.
    """

    def __init__(self, *, validate_checksum: bool = True) -> None:
        super().__init__()
        self.validate_checksum = validate_checksum

    def process(self, packet: Packet) -> None:
        """Validate, age, and forward one IPv4 packet."""
        net = packet.net
        if not isinstance(net, IPv4Header):
            self.count("drop:not-ipv4")
            release_dropped(packet)
            return
        if self.validate_checksum and not net.checksum_ok():
            self.count("drop:bad-checksum")
            release_dropped(packet)
            return
        # decrement_ttl is polymorphic byte handling: full checksum
        # recomputation on materialised headers, in-place RFC 1624
        # incremental update on wire-resident views.
        if not net.decrement_ttl():
            self.count("drop:ttl-expired")
            release_dropped(packet)
            return
        self.count("forwarded")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Header work stays per-packet; dispatch and emission amortise."""
        self.count("rx", len(packets))
        counters = self.counters
        validate = self.validate_checksum
        survivors: list[Packet] = []
        for packet in packets:
            net = packet.net
            if not isinstance(net, IPv4Header):
                counters["drop:not-ipv4"] += 1
                release_dropped(packet)
                continue
            if validate and not net.checksum_ok():
                counters["drop:bad-checksum"] += 1
                release_dropped(packet)
                continue
            if not net.decrement_ttl():
                counters["drop:ttl-expired"] += 1
                release_dropped(packet)
                continue
            survivors.append(packet)
        if survivors:
            self.count("forwarded", len(survivors))
            self.emit_batch(survivors)

    # -- compiled hot path (see repro.opencom.compile) ---------------------
    #
    # The specialised kernels treat the *exact* materialised
    # :class:`IPv4Header` arithmetically: the word sum of the packed
    # header is computed straight from the fields (the same words
    # ``_pack`` would serialise), validated by folding, and the
    # post-decrement checksum is derived from the same unfolded sum
    # (``total - 0x100`` — the TTL word dropped by one) — bit-identical
    # to ``compute_checksum()`` over the repacked header, without
    # serialising 20 bytes twice per packet.  Subclasses (the
    # wire-resident ``V4View`` with its own incremental update) take the
    # generic branch and go through the very same ``checksum_ok`` /
    # ``decrement_ttl`` calls the interpreted path uses.

    def compiled_batch_kernel(self, next_map):
        """Closure-composed ``push_batch`` with the arithmetic fast branch."""
        if len(next_map) != 1:
            return None
        (downstream,) = next_map.values()
        counters = self.counters

        def kernel(
            packets,
            _c=counters,
            _k=downstream,
            _self=self,
            _v4=IPv4Header,
            _release=release_dropped,
        ):
            _c["rx"] += len(packets)
            validate = _self.validate_checksum
            survivors: list[Packet] = []
            append = survivors.append
            not4 = bad = expired = 0
            for packet in packets:
                net = packet.net
                if net.__class__ is _v4:
                    ttl = net.ttl
                    src = net.src
                    dst = net.dst
                    total = (
                        (0x4500 | ((net.dscp & 0x3F) << 2) | (net.ecn & 0x3))
                        + net.total_length
                        + net.identification
                        + ((ttl << 8) | net.protocol)
                        + (src >> 16)
                        + (src & 0xFFFF)
                        + (dst >> 16)
                        + (dst & 0xFFFF)
                    )
                    if validate:
                        # Two folds always reach the one's-complement
                        # fixed point for a sum of nine 16-bit words.
                        folded = (total & 0xFFFF) + (total >> 16)
                        folded = (folded & 0xFFFF) + (folded >> 16)
                        if net.checksum != (~folded) & 0xFFFF:
                            bad += 1
                            _release(packet)
                            continue
                    if ttl <= 1:
                        expired += 1
                        _release(packet)
                        continue
                    new_sum = total - 0x100
                    new_sum = (new_sum & 0xFFFF) + (new_sum >> 16)
                    new_sum = (new_sum & 0xFFFF) + (new_sum >> 16)
                    net.ttl = ttl - 1
                    net.checksum = (~new_sum) & 0xFFFF
                else:
                    if not isinstance(net, _v4):
                        not4 += 1
                        _release(packet)
                        continue
                    if validate and not net.checksum_ok():
                        bad += 1
                        _release(packet)
                        continue
                    if not net.decrement_ttl():
                        expired += 1
                        _release(packet)
                        continue
                append(packet)
            if not4:
                _c["drop:not-ipv4"] += not4
            if bad:
                _c["drop:bad-checksum"] += bad
            if expired:
                _c["drop:ttl-expired"] += expired
            if survivors:
                _c["forwarded"] += len(survivors)
                _k(survivors)
                _c["tx"] += len(survivors)

        return kernel

    def compiled_source(self, ctx, next_map):
        """Inline validate/age into the merged loop (spine stage)."""
        if len(next_map) != 1:
            return NotImplemented
        arrivals = ctx.facts.get("arrivals_var")
        if (
            arrivals is None
            or ctx.facts.get("version") != 4
            or ctx.facts.get("net_var") != "net"
            or ctx.facts.get("net_class_var") != "net_cls"
        ):
            # Upstream did not establish the v4-only contract (e.g. this
            # stage is the region entry): the arithmetic branch would
            # still be safe, but the drop:not-ipv4 replication is not
            # worth a second code shape — decline, closure mode covers it.
            return NotImplemented
        c = ctx.bind("v4_counters", self.counters)
        comp = ctx.bind("v4_proc", self)
        v4_cls = ctx.bind("IPv4Header", IPv4Header)
        release = ctx.bind("release_dropped", release_dropped)
        validate = ctx.fresh("validate")
        bad = ctx.fresh("bad")
        expired = ctx.fresh("expired")
        n_fwd = ctx.fresh("n_fwd")
        ctx.prologue += [
            f"{validate} = {comp}.validate_checksum",
            f"{bad} = 0",
            f"{expired} = 0",
        ]
        ctx.loop += [
            f"if net_cls is {v4_cls}:",
            "    ttl = net.ttl",
            "    src = net.src",
            "    dst = net.dst",
            "    total = ("
            "(0x4500 | ((net.dscp & 0x3F) << 2) | (net.ecn & 0x3))"
            " + net.total_length + net.identification"
            " + ((ttl << 8) | net.protocol)"
            " + (src >> 16) + (src & 0xFFFF)"
            " + (dst >> 16) + (dst & 0xFFFF))",
            f"    if {validate}:",
            "        folded = (total & 0xFFFF) + (total >> 16)",
            "        folded = (folded & 0xFFFF) + (folded >> 16)",
            "        if net.checksum != (~folded) & 0xFFFF:",
            f"            {bad} += 1",
            f"            {release}(pkt)",
            "            continue",
            "    if ttl <= 1:",
            f"        {expired} += 1",
            f"        {release}(pkt)",
            "        continue",
            "    new_sum = total - 0x100",
            "    new_sum = (new_sum & 0xFFFF) + (new_sum >> 16)",
            "    new_sum = (new_sum & 0xFFFF) + (new_sum >> 16)",
            "    net.ttl = ttl - 1",
            "    net.checksum = (~new_sum) & 0xFFFF",
            "else:",
            f"    if {validate} and not net.checksum_ok():",
            f"        {bad} += 1",
            f"        {release}(pkt)",
            "        continue",
            "    if not net.decrement_ttl():",
            f"        {expired} += 1",
            f"        {release}(pkt)",
            "        continue",
            "    dst = net.dst",
        ]
        ctx.epilogue += [
            f"{n_fwd} = {arrivals} - {bad} - {expired}",
            f"if {arrivals}:",
            f"    {c}['rx'] += {arrivals}",
            f"if {bad}:",
            f"    {c}['drop:bad-checksum'] += {bad}",
            f"if {expired}:",
            f"    {c}['drop:ttl-expired'] += {expired}",
            f"if {n_fwd}:",
            f"    {c}['forwarded'] += {n_fwd}",
            f"    {c}['tx'] += {n_fwd}",
        ]
        ctx.facts["arrivals_var"] = n_fwd
        ctx.facts["dst_var"] = "dst"
        return next(iter(next_map))


class IPv6HeaderProcessor(PushComponent):
    """IPv6 forwarding-path header handling (hop-limit decrement)."""

    def process(self, packet: Packet) -> None:
        """Age and forward one IPv6 packet."""
        net = packet.net
        if not isinstance(net, IPv6Header):
            self.count("drop:not-ipv6")
            release_dropped(packet)
            return
        if not net.decrement_hop_limit():
            self.count("drop:hop-limit-expired")
            release_dropped(packet)
            return
        self.count("forwarded")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Hop-limit work per packet, one emission for the survivors."""
        self.count("rx", len(packets))
        counters = self.counters
        survivors: list[Packet] = []
        for packet in packets:
            net = packet.net
            if not isinstance(net, IPv6Header):
                counters["drop:not-ipv6"] += 1
                release_dropped(packet)
                continue
            if not net.decrement_hop_limit():
                counters["drop:hop-limit-expired"] += 1
                release_dropped(packet)
                continue
            survivors.append(packet)
        if survivors:
            self.count("forwarded", len(survivors))
            self.emit_batch(survivors)

    # -- compiled hot path (see repro.opencom.compile) ---------------------

    def compiled_batch_kernel(self, next_map):
        """Closure-composed ``push_batch`` (hop-limit work stays on the
        header's own polymorphic methods — v6 has no checksum to
        specialise arithmetically)."""
        if len(next_map) != 1:
            return None
        (downstream,) = next_map.values()
        counters = self.counters

        def kernel(
            packets,
            _c=counters,
            _k=downstream,
            _v6=IPv6Header,
            _release=release_dropped,
        ):
            _c["rx"] += len(packets)
            survivors: list[Packet] = []
            append = survivors.append
            not6 = expired = 0
            for packet in packets:
                net = packet.net
                if not isinstance(net, _v6):
                    not6 += 1
                    _release(packet)
                    continue
                if not net.decrement_hop_limit():
                    expired += 1
                    _release(packet)
                    continue
                append(packet)
            if not6:
                _c["drop:not-ipv6"] += not6
            if expired:
                _c["drop:hop-limit-expired"] += expired
            if survivors:
                _c["forwarded"] += len(survivors)
                _k(survivors)
                _c["tx"] += len(survivors)

        return kernel
