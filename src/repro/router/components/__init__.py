"""The Router CF's standard component library (stratum 2)."""

from repro.router.components.base import PacketComponent, PushComponent
from repro.router.components.classifier import Classifier
from repro.router.components.forwarding import Forwarder, LpmTable, Stride8LpmTable
from repro.router.components.headerproc import (
    ChecksumValidator,
    IPv4HeaderProcessor,
    IPv6HeaderProcessor,
    ProtocolRecognizer,
)
from repro.router.components.meters import (
    CollectorSink,
    DropSink,
    PacketCounterTap,
    PullSource,
    RateMeter,
)
from repro.router.components.nat import SourceNat
from repro.router.components.nicadapters import NicEgress, NicIngress, TransmitAdapter
from repro.router.components.queues import FifoQueue, RedQueue
from repro.router.components.scheduling import (
    DrrScheduler,
    LinkSchedulerBase,
    PriorityLinkScheduler,
    WfqScheduler,
)
from repro.router.components.shaper import Policer, TokenBucketShaper

__all__ = [
    "ChecksumValidator",
    "Classifier",
    "CollectorSink",
    "DropSink",
    "DrrScheduler",
    "FifoQueue",
    "Forwarder",
    "IPv4HeaderProcessor",
    "IPv6HeaderProcessor",
    "LinkSchedulerBase",
    "LpmTable",
    "NicEgress",
    "NicIngress",
    "TransmitAdapter",
    "PacketComponent",
    "PacketCounterTap",
    "Policer",
    "PriorityLinkScheduler",
    "ProtocolRecognizer",
    "PullSource",
    "PushComponent",
    "RateMeter",
    "RedQueue",
    "SourceNat",
    "Stride8LpmTable",
    "TokenBucketShaper",
]
