"""Link schedulers: diffserv-style service of multiple queues.

The "Link scheduler" of Figure 3.  A link scheduler *pulls* from a set of
named queue connections (multi-receptacle ``inputs`` of IPacketPull) and
pushes serviced packets downstream through ``out``.  Disciplines:

- :class:`PriorityLinkScheduler` — strict priority by input order;
- :class:`DrrScheduler` — deficit round robin (byte-fair);
- :class:`WfqScheduler` — weighted fair queueing via virtual finish times
  approximated per-connection (start-time fair queueing flavour).

Schedulers are themselves IPacketPull providers, so they cascade; calling
:meth:`service` drives up to a packet budget through to the output.

The whole service loop is batch-aware: :meth:`LinkSchedulerBase.service`
draws its budget through the scheduler's native ``pull_batch`` (strict
priority drains whole runs per input via the queues' port-level
``pull_batch`` handles; DRR/WFQ serve whole rounds with per-round quanta)
and hands the serviced list downstream as one ``push_batch``, so the
queue→scheduler and scheduler→NIC crossings are paid once per budget
rather than once per packet.  Every ``pull_batch`` is observationally
equivalent to repeated ``pull()``: identical packet order, identical
per-input ``served:*`` counters, identical residual queue depths.
"""

from __future__ import annotations

from repro.netsim.packet import Packet
from repro.opencom.component import Provided, Required
from repro.router.components.base import PacketComponent, release_dropped
from repro.router.interfaces import IPacketPull, IPacketPush


class LinkSchedulerBase(PacketComponent):
    """Common plumbing: pull-from-inputs, push-to-out, service loop."""

    PROVIDES = (Provided("pull0", IPacketPull),)
    RECEPTACLES = (
        Required("inputs", IPacketPull, min_connections=0, max_connections=None),
        Required("out", IPacketPush, min_connections=0, max_connections=1),
    )

    def pull(self) -> Packet | None:
        """Select and return the next packet across all inputs.

        Must return ``None`` only when every input is genuinely empty —
        an input that merely cannot be served *yet* (e.g. a DRR deficit
        still building) is skipped explicitly, never reported as
        exhaustion.  :meth:`service` relies on this: a ``None`` ends the
        service round, so a transient ``None`` would strand packets in
        other inputs.
        """
        raise NotImplementedError

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Draw up to *max_n* packets in scheduling order as one batch.

        Base implementation: a collect loop over :meth:`pull`.
        Disciplines override it to amortise per-packet work (bulk input
        drains, hoisted ring/deficit state) while preserving exact
        ``pull()``-loop equivalence.
        """
        out: list[Packet] = []
        pull = self.pull
        while len(out) < max_n:
            packet = pull()
            if packet is None:
                break
            out.append(packet)
        return out

    def service(self, budget: int = 1) -> int:
        """Pull up to *budget* packets and push them to ``out``.

        Returns the number of packets actually serviced; stops only when
        every input is empty (see :meth:`pull`).  The whole budget is
        drawn through :meth:`pull_batch` and leaves as one
        ``push_batch`` per service call (scheduling order preserved), so
        both the input and the output crossings are paid per budget, not
        per packet.
        """
        batch = self.pull_batch(budget)
        if batch:
            self.count("tx", len(batch))
            out = self.receptacle("out")
            if out.bound:
                out.push_batch(batch)
            else:
                self.count("drop:no-output", len(batch))
                for packet in batch:
                    release_dropped(packet)
        return len(batch)

    def input_names(self) -> list[str]:
        """Names of connected queue inputs."""
        return self.receptacle("inputs").connection_names()


class PriorityLinkScheduler(LinkSchedulerBase):
    """Strict priority: inputs served in the order given by *priorities*
    (connection names, most important first); unlisted inputs come last in
    name order."""

    def __init__(self, priorities: list[str] | None = None) -> None:
        super().__init__()
        self.priorities = list(priorities) if priorities else []

    def _ordered_inputs(self) -> list[str]:
        names = self.input_names()
        listed = [n for n in self.priorities if n in names]
        rest = sorted(n for n in names if n not in self.priorities)
        return listed + rest

    def pull(self) -> Packet | None:
        """Serve the highest-priority non-empty input."""
        inputs = self.receptacle("inputs")
        for name in self._ordered_inputs():
            packet = inputs.port(name).pull()
            if packet is not None:
                self.count(f"served:{name}")
                return packet
        return None

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Drain whole runs per input, highest priority first.

        Equivalent to repeated ``pull()``: the scalar path rescans from
        the top priority on every call, but within one batch (no pushes
        interleave) an input that is empty stays empty, so draining each
        input in priority order yields the identical packet sequence —
        while the queue crossing is one ``pull_batch`` per input instead
        of one ``pull`` per packet.
        """
        inputs = self.receptacle("inputs")
        out: list[Packet] = []
        remaining = max_n
        for name in self._ordered_inputs():
            if remaining <= 0:
                break
            got = inputs.port(name).pull_batch(remaining)
            if got:
                self.count(f"served:{name}", len(got))
                out.extend(got)
                remaining -= len(got)
        return out


class DrrScheduler(LinkSchedulerBase):
    """Deficit round robin: byte-fair service with per-input quanta.

    ``quantum`` bytes are added to an input's deficit each visit; packets
    are served while the deficit covers them.  Weights are expressed by
    per-input quantum overrides (all quanta must be positive — a zero
    quantum could never cover a packet and would stall the ring).
    """

    def __init__(self, *, quantum: int = 1500, quanta: dict[str, int] | None = None) -> None:
        super().__init__()
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quanta = dict(quanta) if quanta else {}
        if any(q <= 0 for q in self.quanta.values()):
            raise ValueError("per-input quanta must be positive")
        self.quantum = quantum
        self._deficits: dict[str, float] = {}
        self._ring: list[str] = []
        self._cursor = 0
        #: Head-of-line stash: a pulled packet too big for the current
        #: deficit waits here rather than being re-queued.
        self._pending: dict[str, Packet] = {}

    def _refresh_ring(self) -> None:
        names = self.input_names()
        if names != self._ring:
            self._ring = names
            self._cursor = self._cursor % len(names) if names else 0

    def _head(self, name: str) -> Packet | None:
        if name in self._pending:
            return self._pending[name]
        packet = self.receptacle("inputs").port(name).pull()
        if packet is not None:
            self._pending[name] = packet
        return packet

    def pull(self) -> Packet | None:
        """Serve per deficit round robin.

        The walk distinguishes *empty* inputs (no head: deficit reset,
        skipped explicitly) from inputs whose deficit merely hasn't
        covered the head yet (quantum added, revisited next lap).  It
        returns ``None`` only after a full lap finds every input empty,
        so a large packet that needs several quanta to afford is a few
        more lap iterations — never a premature end of service while
        other inputs still hold packets.  Terminates because each
        non-empty visit adds a positive quantum to that input's deficit.
        """
        self._refresh_ring()
        ring = self._ring
        if not ring:
            return None
        deficits = self._deficits
        quanta = self.quanta
        empty_streak = 0
        while empty_streak < len(ring):
            name = ring[self._cursor]
            head = self._head(name)
            if head is None:
                # Explicit empty-input skip: reset its deficit, move on.
                deficits[name] = 0.0
                self._cursor = (self._cursor + 1) % len(ring)
                empty_streak += 1
                continue
            empty_streak = 0
            deficit = deficits.get(name, 0.0)
            if deficit < head.size_bytes:
                deficits[name] = deficit + quanta.get(name, self.quantum)
                self._cursor = (self._cursor + 1) % len(ring)
                continue
            deficits[name] = deficit - head.size_bytes
            del self._pending[name]
            self.count(f"served:{name}")
            return head
        return None

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Serve whole rounds: one quantum top-up per visit, then a burst
        of consecutive heads while the deficit covers them.

        This is exactly the packet sequence of repeated ``pull()`` (the
        scalar path leaves the cursor on a served input, so consecutive
        pulls drain the same burst) with the ring walk, deficit lookups
        and counter bumps hoisted out of the per-packet path.
        """
        out: list[Packet] = []
        self._refresh_ring()
        ring = self._ring
        if not ring:
            return out
        deficits = self._deficits
        quanta = self.quanta
        pending = self._pending
        empty_streak = 0
        while len(out) < max_n and empty_streak < len(ring):
            name = ring[self._cursor]
            head = self._head(name)
            if head is None:
                deficits[name] = 0.0
                self._cursor = (self._cursor + 1) % len(ring)
                empty_streak += 1
                continue
            empty_streak = 0
            deficit = deficits.get(name, 0.0)
            served = 0
            exhausted = False
            while head is not None and deficit >= head.size_bytes:
                deficit -= head.size_bytes
                del pending[name]
                out.append(head)
                served += 1
                if len(out) >= max_n:
                    # Batch full: stop without prefetching the next head
                    # (a scalar pull loop that stopped here would not
                    # have touched the input again).
                    break
                head = self._head(name)
                exhausted = head is None
            if served:
                self.count(f"served:{name}", served)
            if len(out) >= max_n:
                deficits[name] = deficit
                break
            if exhausted:
                # Input went empty mid-burst: explicit skip, reset.
                deficits[name] = 0.0
                self._cursor = (self._cursor + 1) % len(ring)
                empty_streak += 1
                continue
            deficits[name] = deficit + quanta.get(name, self.quantum)
            self._cursor = (self._cursor + 1) % len(ring)
        return out


class WfqScheduler(LinkSchedulerBase):
    """Start-time fair queueing: weighted fair service by virtual tags.

    When a packet becomes an input's head it receives its tags *once*:
    ``start = max(v, last_finish[input])``, ``finish = start +
    size/weight``, and ``last_finish`` advances immediately so the input's
    next packet queues behind.  The head with the earliest finish tag is
    served, and the virtual clock ``v`` advances to the *start* tag of the
    served packet (assigning tags at service time and racing ``v`` to
    finish tags is the classic starvation bug this avoids).
    """

    def __init__(self, *, weights: dict[str, float] | None = None, default_weight: float = 1.0) -> None:
        super().__init__()
        self.weights = dict(weights) if weights else {}
        self.default_weight = default_weight
        self._virtual_time = 0.0
        self._last_finish: dict[str, float] = {}
        self._pending: dict[str, Packet] = {}
        #: input name -> (start_tag, finish_tag) of the pending head.
        self._tags: dict[str, tuple[float, float]] = {}

    def _head(self, name: str) -> Packet | None:
        if name in self._pending:
            return self._pending[name]
        packet = self.receptacle("inputs").port(name).pull()
        if packet is not None:
            weight = max(self.weights.get(name, self.default_weight), 1e-9)
            start = max(self._virtual_time, self._last_finish.get(name, 0.0))
            finish = start + packet.size_bytes / weight
            self._last_finish[name] = finish
            self._pending[name] = packet
            self._tags[name] = (start, finish)
        return packet

    def _select(self, names: list[str]) -> str | None:
        """Name of the input whose head has the earliest finish tag."""
        tags = self._tags
        best_name: str | None = None
        best_finish = float("inf")
        for name in names:
            if self._head(name) is None:
                continue
            finish = tags[name][1]
            if finish < best_finish:
                best_finish = finish
                best_name = name
        return best_name

    def pull(self) -> Packet | None:
        """Serve the head with the earliest virtual finish tag."""
        best_name = self._select(self.input_names())
        if best_name is None:
            return None
        packet = self._pending.pop(best_name)
        start, _ = self._tags.pop(best_name)
        self._virtual_time = max(self._virtual_time, start)
        self.count(f"served:{best_name}")
        return packet

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Serve whole rounds of earliest-finish selections.

        Tags are computed once per head (scalar behaviour) and the input
        enumeration is hoisted out of the per-packet loop; the emitted
        sequence is identical to repeated ``pull()``.
        """
        out: list[Packet] = []
        names = self.input_names()
        if not names:
            return out
        pending = self._pending
        tags = self._tags
        while len(out) < max_n:
            best_name = self._select(names)
            if best_name is None:
                break
            packet = pending.pop(best_name)
            start, _ = tags.pop(best_name)
            if start > self._virtual_time:
                self._virtual_time = start
            self.count(f"served:{best_name}")
            out.append(packet)
        return out
