"""Link schedulers: diffserv-style service of multiple queues.

The "Link scheduler" of Figure 3.  A link scheduler *pulls* from a set of
named queue connections (multi-receptacle ``inputs`` of IPacketPull) and
pushes serviced packets downstream through ``out``.  Disciplines:

- :class:`PriorityLinkScheduler` — strict priority by input order;
- :class:`DrrScheduler` — deficit round robin (byte-fair);
- :class:`WfqScheduler` — weighted fair queueing via virtual finish times
  approximated per-connection (start-time fair queueing flavour).

Schedulers are themselves IPacketPull providers, so they cascade; calling
:meth:`service` drives up to a packet budget through to the output.
"""

from __future__ import annotations

from repro.netsim.packet import Packet
from repro.opencom.component import Provided, Required
from repro.router.components.base import PacketComponent
from repro.router.interfaces import IPacketPull, IPacketPush


class LinkSchedulerBase(PacketComponent):
    """Common plumbing: pull-from-inputs, push-to-out, service loop."""

    PROVIDES = (Provided("pull0", IPacketPull),)
    RECEPTACLES = (
        Required("inputs", IPacketPull, min_connections=0, max_connections=None),
        Required("out", IPacketPush, min_connections=0, max_connections=1),
    )

    def pull(self) -> Packet | None:
        """Select and return the next packet across all inputs."""
        raise NotImplementedError

    def service(self, budget: int = 1) -> int:
        """Pull up to *budget* packets and push them to ``out``.

        Returns the number of packets actually serviced; stops early when
        every input is empty.  Serviced packets leave as one batch per
        service call (scheduling order preserved), so the downstream
        crossing is paid once per budget rather than once per packet.
        """
        out = self.receptacle("out")
        pull = self.pull
        batch: list[Packet] = []
        while len(batch) < budget:
            packet = pull()
            if packet is None:
                break
            batch.append(packet)
        if batch:
            self.count("tx", len(batch))
            if out.bound:
                out.push_batch(batch)
            else:
                self.count("drop:no-output", len(batch))
        return len(batch)

    def input_names(self) -> list[str]:
        """Names of connected queue inputs."""
        return self.receptacle("inputs").connection_names()


class PriorityLinkScheduler(LinkSchedulerBase):
    """Strict priority: inputs served in the order given by *priorities*
    (connection names, most important first); unlisted inputs come last in
    name order."""

    def __init__(self, priorities: list[str] | None = None) -> None:
        super().__init__()
        self.priorities = list(priorities) if priorities else []

    def _ordered_inputs(self) -> list[str]:
        names = self.input_names()
        listed = [n for n in self.priorities if n in names]
        rest = sorted(n for n in names if n not in self.priorities)
        return listed + rest

    def pull(self) -> Packet | None:
        """Serve the highest-priority non-empty input."""
        inputs = self.receptacle("inputs")
        for name in self._ordered_inputs():
            packet = inputs.port(name).pull()
            if packet is not None:
                self.count(f"served:{name}")
                return packet
        return None


class DrrScheduler(LinkSchedulerBase):
    """Deficit round robin: byte-fair service with per-input quanta.

    ``quantum`` bytes are added to an input's deficit each visit; packets
    are served while the deficit covers them.  Weights are expressed by
    per-input quantum overrides.
    """

    def __init__(self, *, quantum: int = 1500, quanta: dict[str, int] | None = None) -> None:
        super().__init__()
        self.quantum = quantum
        self.quanta = dict(quanta) if quanta else {}
        self._deficits: dict[str, float] = {}
        self._ring: list[str] = []
        self._cursor = 0
        #: Head-of-line stash: a pulled packet too big for the current
        #: deficit waits here rather than being re-queued.
        self._pending: dict[str, Packet] = {}

    def _refresh_ring(self) -> None:
        names = self.input_names()
        if names != self._ring:
            self._ring = names
            self._cursor = self._cursor % len(names) if names else 0

    def _head(self, name: str) -> Packet | None:
        if name in self._pending:
            return self._pending[name]
        packet = self.receptacle("inputs").port(name).pull()
        if packet is not None:
            self._pending[name] = packet
        return packet

    def pull(self) -> Packet | None:
        """Serve per deficit round robin."""
        self._refresh_ring()
        if not self._ring:
            return None
        for _ in range(2 * len(self._ring)):
            name = self._ring[self._cursor]
            head = self._head(name)
            if head is None:
                # Empty input: reset its deficit, move on.
                self._deficits[name] = 0.0
                self._cursor = (self._cursor + 1) % len(self._ring)
                continue
            deficit = self._deficits.get(name, 0.0)
            if deficit < head.size_bytes:
                self._deficits[name] = deficit + self.quanta.get(name, self.quantum)
                self._cursor = (self._cursor + 1) % len(self._ring)
                continue
            self._deficits[name] = deficit - head.size_bytes
            del self._pending[name]
            self.count(f"served:{name}")
            return head
        return None


class WfqScheduler(LinkSchedulerBase):
    """Start-time fair queueing: weighted fair service by virtual tags.

    When a packet becomes an input's head it receives its tags *once*:
    ``start = max(v, last_finish[input])``, ``finish = start +
    size/weight``, and ``last_finish`` advances immediately so the input's
    next packet queues behind.  The head with the earliest finish tag is
    served, and the virtual clock ``v`` advances to the *start* tag of the
    served packet (assigning tags at service time and racing ``v`` to
    finish tags is the classic starvation bug this avoids).
    """

    def __init__(self, *, weights: dict[str, float] | None = None, default_weight: float = 1.0) -> None:
        super().__init__()
        self.weights = dict(weights) if weights else {}
        self.default_weight = default_weight
        self._virtual_time = 0.0
        self._last_finish: dict[str, float] = {}
        self._pending: dict[str, Packet] = {}
        #: input name -> (start_tag, finish_tag) of the pending head.
        self._tags: dict[str, tuple[float, float]] = {}

    def _head(self, name: str) -> Packet | None:
        if name in self._pending:
            return self._pending[name]
        packet = self.receptacle("inputs").port(name).pull()
        if packet is not None:
            weight = max(self.weights.get(name, self.default_weight), 1e-9)
            start = max(self._virtual_time, self._last_finish.get(name, 0.0))
            finish = start + packet.size_bytes / weight
            self._last_finish[name] = finish
            self._pending[name] = packet
            self._tags[name] = (start, finish)
        return packet

    def pull(self) -> Packet | None:
        """Serve the head with the earliest virtual finish tag."""
        best_name: str | None = None
        best_finish = float("inf")
        for name in self.input_names():
            if self._head(name) is None:
                continue
            _, finish = self._tags[name]
            if finish < best_finish:
                best_finish = finish
                best_name = name
        if best_name is None:
            return None
        packet = self._pending.pop(best_name)
        start, _ = self._tags.pop(best_name)
        self._virtual_time = max(self._virtual_time, start)
        self.count(f"served:{best_name}")
        return packet
