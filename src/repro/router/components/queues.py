"""Queueing components: the "Gw CF instance (queueing)" of Figure 3.

Queues provide ``in0`` (IPacketPush) on the arrival side and ``pull0``
(IPacketPull) on the service side, so link schedulers *pull* from them.
Disciplines: drop-tail FIFO and RED (random early detection with the
standard EWMA average-queue estimator).
"""

from __future__ import annotations

import random
from collections import deque

from repro.netsim.packet import Packet
from repro.opencom.component import Provided
from repro.router.components.base import (
    PacketComponent,
    bulk_dequeue,
    release_dropped,
)
from repro.router.interfaces import IPacketPull, IPacketPush


class FifoQueue(PacketComponent):
    """Bounded drop-tail FIFO queue."""

    PROVIDES = (
        Provided("in0", IPacketPush),
        Provided("pull0", IPacketPull),
    )

    #: Attributes migrated on hot swap (the 24x7 story: a queue swap
    #: carries its backlog across).
    STATE_ATTRS = ("_queue",)

    def __init__(self, capacity: int = 128) -> None:
        super().__init__()
        self.capacity = capacity
        self._queue: deque[Packet] = deque()

    def push(self, packet: Packet) -> None:
        """Enqueue; drop-tail when full (``drop:overflow``)."""
        self.count("rx")
        if len(self._queue) >= self.capacity:
            self.count("drop:overflow")
            release_dropped(packet)
            return
        self._queue.append(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Bulk enqueue with exact drop-tail semantics: the packets that
        fit are appended in order, the tail of the batch overflows."""
        n = len(packets)
        self.count("rx", n)
        queue = self._queue
        room = self.capacity - len(queue)
        if room >= n:
            queue.extend(packets)
            return
        if room > 0:
            queue.extend(packets[:room])
            self.count("drop:overflow", n - room)
            overflowed = packets[room:]
        else:
            self.count("drop:overflow", n)
            overflowed = packets
        for packet in overflowed:
            release_dropped(packet)

    def pull(self) -> Packet | None:
        """Dequeue the head packet (None when empty)."""
        if not self._queue:
            return None
        self.count("tx")
        return self._queue.popleft()

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Bulk dequeue up to *max_n* head packets in one call.

        Exactly equivalent to *max_n* ``pull()`` calls (same order, same
        ``tx`` total, same residual depth) with the per-packet dispatch
        and counter cost paid once.
        """
        got = bulk_dequeue(self._queue, max_n)
        if got:
            self.count("tx", len(got))
        return got

    # -- compiled hot path (see repro.opencom.compile) ---------------------

    def compiled_batch_kernel(self, next_map):
        """Closure kernel for the arrival side (terminal: no receptacles).

        ``self._queue`` / ``self.capacity`` are read per batch so hot
        swap state migration and capacity changes stay live.
        """
        if next_map:
            return None
        counters = self.counters

        def kernel(packets, _c=counters, _self=self, _release=release_dropped):
            n = len(packets)
            _c["rx"] += n
            queue = _self._queue
            room = _self.capacity - len(queue)
            if room >= n:
                queue.extend(packets)
                return
            if room > 0:
                queue.extend(packets[:room])
                _c["drop:overflow"] += n - room
                overflowed = packets[room:]
            else:
                _c["drop:overflow"] += n
                overflowed = packets
            for packet in overflowed:
                _release(packet)

        return kernel

    def compiled_source(self, ctx, next_map):
        """Terminal spine stage: buffer in the loop, bulk-append on flush."""
        if next_map:
            return NotImplemented
        arrivals = ctx.facts.get("arrivals_var")
        if arrivals is None:
            return NotImplemented
        c = ctx.bind("queue_counters", self.counters)
        comp = ctx.bind("queue", self)
        release = ctx.bind("release_dropped", release_dropped)
        staged = ctx.fresh("staged")
        ctx.prologue += [f"{staged} = []"]
        ctx.loop += [f"{staged}.append(pkt)"]
        ctx.epilogue += [
            f"if {arrivals}:",
            f"    {c}['rx'] += {arrivals}",
        ]
        ctx.flush.append([
            f"if {staged}:",
            f"    _queue = {comp}._queue",
            f"    _room = {comp}.capacity - len(_queue)",
            f"    if _room >= len({staged}):",
            f"        _queue.extend({staged})",
            "    else:",
            "        if _room > 0:",
            f"            _queue.extend({staged}[:_room])",
            f"            {c}['drop:overflow'] += len({staged}) - _room",
            f"            _overflowed = {staged}[_room:]",
            "        else:",
            f"            {c}['drop:overflow'] += len({staged})",
            f"            _overflowed = {staged}",
            "        for pkt in _overflowed:",
            f"            {release}(pkt)",
        ])
        return None

    def compiled_pull_kernel(self):
        """Specialised ``pull_batch`` twin for the compiled pull shape."""
        counters = self.counters

        def kernel(max_n, _c=counters, _self=self, _bulk=bulk_dequeue):
            got = _bulk(_self._queue, max_n)
            if got:
                _c["tx"] += len(got)
            return got

        return kernel

    @property
    def depth(self) -> int:
        """Packets currently queued."""
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued."""
        return sum(p.size_bytes for p in self._queue)


class RedQueue(PacketComponent):
    """Random Early Detection queue (Floyd & Jacobson).

    Maintains an EWMA of queue depth; drops probabilistically between
    ``min_threshold`` and ``max_threshold``, always above.  Deterministic
    via seeded RNG.
    """

    PROVIDES = (
        Provided("in0", IPacketPush),
        Provided("pull0", IPacketPull),
    )

    STATE_ATTRS = ("_queue", "_avg")

    def __init__(
        self,
        capacity: int = 128,
        *,
        min_threshold: float = 16,
        max_threshold: float = 64,
        max_drop_probability: float = 0.1,
        weight: float = 0.002,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0 < min_threshold < max_threshold:
            raise ValueError("thresholds must satisfy 0 < min < max")
        self.capacity = capacity
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_drop_probability = max_drop_probability
        self.weight = weight
        self._queue: deque[Packet] = deque()
        self._avg = 0.0
        self._rng = random.Random(seed)

    def push(self, packet: Packet) -> None:
        """Enqueue with RED early-drop behaviour."""
        self.count("rx")
        self._avg = (1 - self.weight) * self._avg + self.weight * len(self._queue)
        if len(self._queue) >= self.capacity:
            self.count("drop:overflow")
            release_dropped(packet)
            return
        if self._avg >= self.max_threshold:
            self.count("drop:red-forced")
            release_dropped(packet)
            return
        if self._avg > self.min_threshold:
            fraction = (self._avg - self.min_threshold) / (
                self.max_threshold - self.min_threshold
            )
            if self._rng.random() < fraction * self.max_drop_probability:
                self.count("drop:red-early")
                release_dropped(packet)
                return
        self._queue.append(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Per-packet RED admission (the EWMA advances on every arrival,
        so batches cannot be bulk-admitted without changing drop maths)."""
        push = self.push
        for packet in packets:
            push(packet)

    def pull(self) -> Packet | None:
        """Dequeue the head packet (None when empty)."""
        if not self._queue:
            return None
        self.count("tx")
        return self._queue.popleft()

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Bulk dequeue up to *max_n* head packets (RED only gates
        *admission*; the service side is a plain FIFO, so bulk dequeue is
        exactly equivalent to repeated ``pull()``)."""
        got = bulk_dequeue(self._queue, max_n)
        if got:
            self.count("tx", len(got))
        return got

    @property
    def depth(self) -> int:
        """Packets currently queued."""
        return len(self._queue)

    @property
    def average_depth(self) -> float:
        """Current EWMA depth estimate."""
        return self._avg
