"""Route lookup and forwarding: longest-prefix match over a binary trie.

:class:`LpmTable` is a real bit-trie (inserts ``addr/len`` prefixes, walks
bits on lookup) so lookup cost scales with prefix length exactly as in a
software router.  :class:`Forwarder` resolves each packet's next hop and
emits it on the outgoing connection named after the next hop.
"""

from __future__ import annotations

from typing import Any

from repro.netsim.packet import Packet
from repro.router.components.base import PushComponent
from repro.router.filters import FilterError, parse_prefix


class _TrieNode:
    __slots__ = ("children", "value")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.value: Any = None


class LpmTable:
    """Longest-prefix-match table over a binary trie.

    Keys are ``"a.b.c.d/len"`` (or IPv6 ``"x::/len"``) strings; values are
    arbitrary (normally next-hop names).  Separate tries per address
    family.
    """

    def __init__(self) -> None:
        self._roots: dict[int, _TrieNode] = {4: _TrieNode(), 6: _TrieNode()}
        self._sizes: dict[int, int] = {4: 0, 6: 0}

    def insert(self, prefix: str, value: Any) -> None:
        """Insert or replace a prefix route."""
        version, network, length = parse_prefix(prefix)
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        for i in range(length):
            bit = (network >> (bits - 1 - i)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.value is None:
            self._sizes[version] += 1
        node.value = value

    def remove(self, prefix: str) -> None:
        """Remove a prefix route (unknown prefixes raise FilterError)."""
        version, network, length = parse_prefix(prefix)
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        for i in range(length):
            bit = (network >> (bits - 1 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                raise FilterError(f"prefix {prefix!r} not in table")
            node = nxt
        if node.value is None:
            raise FilterError(f"prefix {prefix!r} not in table")
        node.value = None
        self._sizes[version] -= 1

    def lookup(self, address: int, *, version: int = 4) -> Any:
        """Longest-prefix match; returns the stored value or None."""
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        best = node.value
        for i in range(bits):
            bit = (address >> (bits - 1 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                break
            node = nxt
            if node.value is not None:
                best = node.value
        return best

    def load(self, routes: dict[str, Any]) -> None:
        """Bulk-insert a prefix -> value mapping."""
        for prefix, value in routes.items():
            self.insert(prefix, value)

    def size(self, *, version: int = 4) -> int:
        """Number of live prefixes in one family's trie."""
        return self._sizes[version]


class Forwarder(PushComponent):
    """Next-hop resolution and per-hop emission.

    The outgoing connection for a packet is the next-hop value from the
    LPM table (so ``out`` connections are named after next hops, e.g.
    neighbour node names).  A ``default_route`` value catches everything
    when set.  Unroutable packets count ``drop:no-route-entry``.
    """

    STATE_ATTRS = ("table",)

    def __init__(self, *, default_route: str | None = None) -> None:
        super().__init__()
        self.table = LpmTable()
        self.default_route = default_route

    def add_route(self, prefix: str, next_hop: str) -> None:
        """Install one route."""
        self.table.insert(prefix, next_hop)

    def load_routes(self, routes: dict[str, str]) -> None:
        """Install many routes."""
        self.table.load(routes)

    def process(self, packet: Packet) -> None:
        """Resolve the next hop and emit on its named connection."""
        version = packet.version
        dst = packet.net.dst
        next_hop = self.table.lookup(dst, version=version)
        if next_hop is None:
            next_hop = self.default_route
        if next_hop is None:
            self.count("drop:no-route-entry")
            return
        packet.metadata["next_hop"] = next_hop
        self.count(f"hop:{next_hop}")
        self.emit(packet, next_hop)
