"""Route lookup and forwarding: longest-prefix match tries.

Two LPM implementations with the same API:

- :class:`LpmTable` is a real bit-trie (inserts ``addr/len`` prefixes,
  walks bits on lookup) so lookup cost scales with prefix length exactly
  as in a software router;
- :class:`Stride8LpmTable` walks a byte at a time (stride-8 with
  controlled prefix expansion inside each node — the classic multibit-trie
  trade: 256-wide nodes for a 4-step IPv4 walk), and adds a bounded
  ``lookup_cached`` per-destination result cache that route changes
  invalidate.

:class:`Forwarder` resolves each packet's next hop over the stride-8 table
and emits it on the outgoing connection named after the next hop;
:meth:`Forwarder.push_batch` groups a batch per hop so each downstream
connection is crossed once per batch.  The lookup key (``packet.net.dst``)
is byte-path agnostic: on wire-resident packets it is a single
``struct.unpack_from`` on the packet's memoryview
(:class:`repro.netsim.wire.V4View.dst`), so route resolution never
materialises a header.
"""

from __future__ import annotations

from typing import Any

from repro.netsim.packet import Packet
from repro.router.components.base import PushComponent, release_dropped
from repro.router.filters import FilterError, parse_prefix


class _TrieNode:
    __slots__ = ("children", "value")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.value: Any = None


class LpmTable:
    """Longest-prefix-match table over a binary trie.

    Keys are ``"a.b.c.d/len"`` (or IPv6 ``"x::/len"``) strings; values are
    arbitrary (normally next-hop names).  Separate tries per address
    family.
    """

    def __init__(self) -> None:
        self._roots: dict[int, _TrieNode] = {4: _TrieNode(), 6: _TrieNode()}
        self._sizes: dict[int, int] = {4: 0, 6: 0}

    def insert(self, prefix: str, value: Any) -> None:
        """Insert or replace a prefix route."""
        version, network, length = parse_prefix(prefix)
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        for i in range(length):
            bit = (network >> (bits - 1 - i)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.value is None:
            self._sizes[version] += 1
        node.value = value

    def remove(self, prefix: str) -> None:
        """Remove a prefix route (unknown prefixes raise FilterError)."""
        version, network, length = parse_prefix(prefix)
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        for i in range(length):
            bit = (network >> (bits - 1 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                raise FilterError(f"prefix {prefix!r} not in table")
            node = nxt
        if node.value is None:
            raise FilterError(f"prefix {prefix!r} not in table")
        node.value = None
        self._sizes[version] -= 1

    def lookup(self, address: int, *, version: int = 4) -> Any:
        """Longest-prefix match; returns the stored value or None."""
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        best = node.value
        for i in range(bits):
            bit = (address >> (bits - 1 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                break
            node = nxt
            if node.value is not None:
                best = node.value
        return best

    def load(self, routes: dict[str, Any]) -> None:
        """Bulk-insert a prefix -> value mapping."""
        for prefix, value in routes.items():
            self.insert(prefix, value)

    def size(self, *, version: int = 4) -> int:
        """Number of live prefixes in one family's trie."""
        return self._sizes[version]


#: Cache-miss sentinel (``None`` is a legitimate cached lookup result).
_MISS = object()


class _Stride8Node:
    """One 8-bit-stride trie node: 256 children plus 256 expanded entries
    ``(prefix_len, value)`` for prefixes ending within this node's byte."""

    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: list[_Stride8Node | None] = [None] * 256
        self.entries: list[tuple[int, Any] | None] = [None] * 256


class Stride8LpmTable:
    """Longest-prefix-match table over an 8-bit multibit trie.

    API-compatible with :class:`LpmTable` (insert/remove/lookup/load/size)
    but a lookup walks at most 4 bytes for IPv4 (16 for IPv6) instead of
    up to 32 (128) bits.  Prefixes whose length is not a byte multiple are
    expanded across the covered entry range of their final node
    (controlled prefix expansion); longer prefixes always win an entry.

    ``remove`` rebuilds the family's trie from the retained exact-prefix
    store — route withdrawal is control-plane-rate, lookups are not.

    :meth:`lookup_cached` adds a bounded per-destination result cache so
    flow-locality traffic skips the walk entirely; every table mutation
    invalidates it.
    """

    #: Destination-cache bound; the cache is cleared wholesale when full
    #: (cheap, and steady-state traffic re-warms it in one batch).
    CACHE_CAP = 8192

    def __init__(self) -> None:
        self._roots: dict[int, _Stride8Node] = {4: _Stride8Node(), 6: _Stride8Node()}
        #: /0 routes per family, stored as (0, value) to distinguish "no
        #: default" from "default of None".
        self._defaults: dict[int, tuple[int, Any] | None] = {4: None, 6: None}
        #: Exact prefixes per family: (network, length) -> value.
        self._prefixes: dict[int, dict[tuple[int, int], Any]] = {4: {}, 6: {}}
        self._cache: dict[tuple[int, int], Any] = {}

    def insert(self, prefix: str, value: Any) -> None:
        """Insert or replace a prefix route."""
        version, network, length = parse_prefix(prefix)
        self._prefixes[version][(network, length)] = value
        self._insert_raw(version, network, length, value)
        self._cache.clear()

    def _insert_raw(self, version: int, network: int, length: int, value: Any) -> None:
        if length == 0:
            self._defaults[version] = (0, value)
            return
        bits = 32 if version == 4 else 128
        node = self._roots[version]
        last = (length - 1) // 8
        for i in range(last):
            byte = (network >> (bits - 8 * (i + 1))) & 0xFF
            child = node.children[byte]
            if child is None:
                child = node.children[byte] = _Stride8Node()
            node = child
        rem = length - 8 * last  # 1..8 bits land in the final byte
        byte = (network >> (bits - 8 * (last + 1))) & 0xFF
        lo = byte & ((0xFF << (8 - rem)) & 0xFF)
        entries = node.entries
        for b in range(lo, lo + (1 << (8 - rem))):
            current = entries[b]
            if current is None or current[0] <= length:
                entries[b] = (length, value)

    def remove(self, prefix: str) -> None:
        """Remove a prefix route (unknown prefixes raise FilterError)."""
        version, network, length = parse_prefix(prefix)
        store = self._prefixes[version]
        if (network, length) not in store:
            raise FilterError(f"prefix {prefix!r} not in table")
        del store[(network, length)]
        # Rebuild the family trie: expanded entries shadowed by the removed
        # prefix must fall back to the next-longest cover, which the
        # insert-time max rule recomputes for free.
        self._roots[version] = _Stride8Node()
        self._defaults[version] = None
        for (net, plen), value in store.items():
            self._insert_raw(version, net, plen, value)
        self._cache.clear()

    def lookup(self, address: int, *, version: int = 4) -> Any:
        """Longest-prefix match; returns the stored value or None."""
        default = self._defaults[version]
        best = default[1] if default is not None else None
        node = self._roots[version]
        shift = 24 if version == 4 else 120
        while shift >= 0:
            byte = (address >> shift) & 0xFF
            entry = node.entries[byte]
            if entry is not None:
                # Entries deeper in the walk always belong to longer
                # prefixes, so the latest hit is the longest match.
                best = entry[1]
            node = node.children[byte]
            if node is None:
                break
            shift -= 8
        return best

    def lookup_cached(self, address: int, *, version: int = 4) -> Any:
        """:meth:`lookup` through the per-destination result cache."""
        key = (version, address)
        cache = self._cache
        value = cache.get(key, _MISS)
        if value is _MISS:
            value = self.lookup(address, version=version)
            if len(cache) >= self.CACHE_CAP:
                cache.clear()
            cache[key] = value
        return value

    def load(self, routes: dict[str, Any]) -> None:
        """Bulk-insert a prefix -> value mapping."""
        for prefix, value in routes.items():
            self.insert(prefix, value)

    def size(self, *, version: int = 4) -> int:
        """Number of live prefixes in one family's table."""
        return len(self._prefixes[version])


class Forwarder(PushComponent):
    """Next-hop resolution and per-hop emission.

    The outgoing connection for a packet is the next-hop value from the
    LPM table (so ``out`` connections are named after next hops, e.g.
    neighbour node names).  A ``default_route`` value catches everything
    when set.  Unroutable packets count ``drop:no-route-entry``.

    Lookups run over a :class:`Stride8LpmTable` through its
    per-destination cache, so per-flow traffic pays the trie walk once.
    """

    STATE_ATTRS = ("table",)

    def __init__(self, *, default_route: str | None = None) -> None:
        super().__init__()
        self.table = Stride8LpmTable()
        self.default_route = default_route

    def add_route(self, prefix: str, next_hop: str) -> None:
        """Install one route."""
        self.table.insert(prefix, next_hop)

    def load_routes(self, routes: dict[str, str]) -> None:
        """Install many routes."""
        self.table.load(routes)

    def process(self, packet: Packet) -> None:
        """Resolve the next hop and emit on its named connection."""
        next_hop = self.table.lookup_cached(packet.net.dst, version=packet.version)
        if next_hop is None:
            next_hop = self.default_route
        if next_hop is None:
            self.count("drop:no-route-entry")
            release_dropped(packet)
            return
        packet.metadata["next_hop"] = next_hop
        self.count(f"hop:{next_hop}")
        self.emit(packet, next_hop)

    def push_batch(self, packets: list[Packet]) -> None:
        """Resolve per packet, emit one grouped batch per next hop."""
        self.count("rx", len(packets))
        lookup = self.table.lookup_cached
        default = self.default_route
        groups: dict[str, list[Packet]] = {}
        unroutable = 0
        for packet in packets:
            next_hop = lookup(packet.net.dst, version=packet.version)
            if next_hop is None:
                next_hop = default
            if next_hop is None:
                unroutable += 1
                release_dropped(packet)
                continue
            packet.metadata["next_hop"] = next_hop
            group = groups.get(next_hop)
            if group is None:
                group = groups[next_hop] = []
            group.append(packet)
        for next_hop, group in groups.items():
            self.count(f"hop:{next_hop}", len(group))
            self.emit_batch(group, next_hop)
        if unroutable:
            self.count("drop:no-route-entry", unroutable)

    # -- compiled hot path (see repro.opencom.compile) ---------------------
    #
    # Both kernels read ``self.table`` / ``self.default_route`` per batch
    # (not at compile time), so route-table swaps and route changes reach
    # the compiled path immediately — ``Stride8LpmTable`` already clears
    # its destination cache on every mutation, no revocation needed.

    def compiled_batch_kernel(self, next_map):
        """Closure-composed ``push_batch``: group per hop, call kernels.

        A hop value with no bound connection replicates ``emit_batch``'s
        unbound-connection accounting (``drop:no-route`` plus the
        per-connection key, every packet released).
        """
        if not next_map:
            return None
        kernels = dict(next_map)
        counters = self.counters

        def kernel(
            packets,
            _c=counters,
            _kernels=kernels,
            _self=self,
            _release=release_dropped,
        ):
            _c["rx"] += len(packets)
            lookup = _self.table.lookup_cached
            default = _self.default_route
            groups: dict[str, list[Packet]] = {}
            unroutable = 0
            for packet in packets:
                next_hop = lookup(packet.net.dst, version=packet.version)
                if next_hop is None:
                    next_hop = default
                if next_hop is None:
                    unroutable += 1
                    _release(packet)
                    continue
                packet.metadata["next_hop"] = next_hop
                group = groups.get(next_hop)
                if group is None:
                    group = groups[next_hop] = []
                group.append(packet)
            for next_hop, group in groups.items():
                _c[f"hop:{next_hop}"] += len(group)
                sink = _kernels.get(next_hop)
                if sink is None:
                    _c["drop:no-route"] += len(group)
                    _c[f"drop:no-route:{next_hop}"] += len(group)
                    for packet in group:
                        _release(packet)
                    continue
                sink(group)
                _c["tx"] += len(group)
            if unroutable:
                _c["drop:no-route-entry"] += unroutable

        return kernel

    def compiled_source(self, ctx, next_map):
        """Inline LPM resolution into the merged loop (spine terminal).

        Per-hop groups flush through the sink closure kernels; because
        this block is appended last it renders *first* (flush blocks emit
        in reverse), so hop groups reach the sinks before any upstream
        side list — the interpreted emission order.
        """
        if not next_map:
            return NotImplemented
        arrivals = ctx.facts.get("arrivals_var")
        if arrivals is None or ctx.facts.get("net_var") != "net":
            return NotImplemented
        c = ctx.bind("fwd_counters", self.counters)
        comp = ctx.bind("forwarder", self)
        release = ctx.bind("release_dropped", release_dropped)
        sinks = ctx.bind("hop_kernels", dict(next_map))
        lookup = ctx.fresh("lookup")
        default = ctx.fresh("default")
        groups = ctx.fresh("groups")
        unroutable = ctx.fresh("unroutable")
        ctx.prologue += [
            f"{lookup} = {comp}.table.lookup_cached",
            f"{default} = {comp}.default_route",
            f"{groups} = {{}}",
            f"{unroutable} = 0",
        ]
        if ctx.facts.get("version") == 4:
            # v4-only spine: skip the version kwarg build per packet and
            # probe the destination cache inline (its identity is stable
            # — mutations clear it in place — and it is re-read from
            # ``self.table`` each batch, so table swaps stay live).  A
            # miss takes the full ``lookup_cached`` call, which also
            # handles insertion and the eviction bound.
            dst = ctx.facts.get("dst_var", "net.dst")
            cache = ctx.fresh("lpm_cache")
            miss = ctx.bind("lpm_miss", _MISS)
            ctx.prologue += [f"{cache} = {comp}.table._cache"]
            lookup_lines = [
                f"next_hop = {cache}.get((4, {dst}), {miss})",
                f"if next_hop is {miss}:",
                f"    next_hop = {lookup}({dst})",
            ]
        else:
            lookup_lines = [f"next_hop = {lookup}(net.dst, version=pkt.version)"]
        ctx.loop += lookup_lines + [
            "if next_hop is None:",
            f"    next_hop = {default}",
            "if next_hop is None:",
            f"    {unroutable} += 1",
            f"    {release}(pkt)",
            "    continue",
            "pkt.metadata['next_hop'] = next_hop",
            f"group = {groups}.get(next_hop)",
            "if group is None:",
            f"    group = {groups}[next_hop] = []",
            "group.append(pkt)",
        ]
        ctx.epilogue += [
            f"if {arrivals}:",
            f"    {c}['rx'] += {arrivals}",
            f"if {unroutable}:",
            f"    {c}['drop:no-route-entry'] += {unroutable}",
        ]
        ctx.flush.append([
            f"for next_hop, group in {groups}.items():",
            f"    {c}['hop:' + next_hop] += len(group)",
            f"    sink = {sinks}.get(next_hop)",
            "    if sink is None:",
            f"        {c}['drop:no-route'] += len(group)",
            f"        {c}['drop:no-route:' + next_hop] += len(group)",
            "        for pkt in group:",
            f"            {release}(pkt)",
            "        continue",
            "    sink(group)",
            f"    {c}['tx'] += len(group)",
        ])
        return None
