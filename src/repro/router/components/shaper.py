"""Traffic shaping and policing: token buckets over virtual time.

- :class:`TokenBucketShaper` — delays (queues) non-conforming packets and
  releases them as tokens accrue; drive with :meth:`release_due` or a
  timer;
- :class:`Policer` — drops (or DSCP-remarks) non-conforming packets
  immediately, never queues.

Both are exact token buckets over the shared virtual clock, so conformance
results are deterministic.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import IPv4Header, Packet
from repro.osbase.clock import VirtualClock
from repro.router.components.base import PushComponent, release_dropped


class _TokenBucket:
    """rate tokens/second, up to *burst* capacity (token = byte)."""

    def __init__(self, clock: VirtualClock, rate: float, burst: float) -> None:
        self.clock = clock
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_refill = clock.now

    def refill(self) -> None:
        now = self.clock.now
        self.tokens = min(self.burst, self.tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now

    def try_consume(self, amount: float) -> bool:
        self.refill()
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def time_until(self, amount: float) -> float:
        """Seconds until *amount* tokens will be available.

        Requests above the burst capacity can never be satisfied: the
        bucket caps at *burst*, so the answer is infinity (callers must
        drop such packets rather than wait).
        """
        if amount > self.burst:
            return float("inf")
        self.refill()
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class TokenBucketShaper(PushComponent):
    """Shape to *rate_bytes_per_s* with *burst_bytes* tolerance.

    Conforming packets pass straight through; the rest wait in a bounded
    backlog released by :meth:`release_due` (call it as time advances, or
    wire it to a :class:`~repro.osbase.timers.TimerWheel`).
    """

    def __init__(
        self,
        clock: VirtualClock,
        *,
        rate_bytes_per_s: float,
        burst_bytes: float,
        backlog_capacity: int = 256,
    ) -> None:
        super().__init__()
        self.clock = clock
        self.bucket = _TokenBucket(clock, rate_bytes_per_s, burst_bytes)
        self.backlog_capacity = backlog_capacity
        self._backlog: deque[Packet] = deque()

    def process(self, packet: Packet) -> None:
        """Pass conforming packets; queue the rest (drop when the backlog
        is full).  Packets larger than the burst can never conform and
        would stall the backlog head forever — they are dropped."""
        if packet.size_bytes > self.bucket.burst:
            self.count("drop:oversize-burst")
            release_dropped(packet)
            return
        if not self._backlog and self.bucket.try_consume(packet.size_bytes):
            self.count("conforming")
            self.emit(packet)
            return
        if len(self._backlog) >= self.backlog_capacity:
            self.count("drop:shaper-overflow")
            release_dropped(packet)
            return
        self.count("shaped")
        self._backlog.append(packet)

    def release_due(self) -> int:
        """Release backlogged packets now affordable; returns count.

        Released packets leave as one batch (order preserved), so a timer
        tick that frees many packets crosses the downstream binding once.
        Admission (:meth:`process` via the inherited per-packet
        ``push_batch`` fallback) stays per-packet: every arrival consults
        the token bucket individually.
        """
        released: list[Packet] = []
        while self._backlog:
            head = self._backlog[0]
            if not self.bucket.try_consume(head.size_bytes):
                break
            self._backlog.popleft()
            released.append(head)
        if released:
            self.emit_batch(released)
            self.count("released", len(released))
        return len(released)

    def next_release_in(self) -> float | None:
        """Seconds until the head packet conforms (None when idle)."""
        if not self._backlog:
            return None
        return self.bucket.time_until(self._backlog[0].size_bytes)

    @property
    def backlog_depth(self) -> int:
        """Packets currently held back."""
        return len(self._backlog)


class Policer(PushComponent):
    """Police to a token bucket: violating packets are dropped, or
    re-marked to *remark_dscp* and forwarded when remarking is configured."""

    def __init__(
        self,
        clock: VirtualClock,
        *,
        rate_bytes_per_s: float,
        burst_bytes: float,
        remark_dscp: int | None = None,
    ) -> None:
        super().__init__()
        self.bucket = _TokenBucket(clock, rate_bytes_per_s, burst_bytes)
        self.remark_dscp = remark_dscp

    def process(self, packet: Packet) -> None:
        """Forward conforming traffic; drop or remark the excess."""
        if self.bucket.try_consume(packet.size_bytes):
            self.count("conforming")
            self.emit(packet)
            return
        if self.remark_dscp is not None and isinstance(packet.net, IPv4Header):
            packet.net.dscp = self.remark_dscp
            packet.net.refresh_checksum()
            self.count("remarked")
            self.emit(packet)
            return
        self.count("drop:police")
        release_dropped(packet)
