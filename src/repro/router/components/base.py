"""Shared machinery for Router CF plug-in components.

Conventions used throughout the stratum-2 component library:

- push-style processors provide an ``IPacketPush`` interface named
  ``in0`` and emit downstream through a multi-receptacle named ``out``
  whose *connection names* are the "named outgoing interfaces" that filter
  specifications refer to;
- every component keeps a ``counters`` dict (packets seen, dropped,
  emitted, per-reason drops) so experiments read consistent statistics;
- drops are never silent: they are counted, and optionally handed to a
  dead-letter connection named ``drop`` when one is bound.
"""

from __future__ import annotations

from collections import defaultdict

from repro.netsim.packet import Packet
from repro.opencom.component import Component, Provided, Required
from repro.opencom.errors import ReceptacleError
from repro.router.interfaces import IPacketPush


class PacketComponent(Component):
    """Base for all packet-processing components: counter bookkeeping."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        super().__init__()

    def count(self, key: str, increment: int = 1) -> None:
        """Bump a named counter."""
        self.counters[key] += increment

    def stats(self) -> dict[str, int]:
        """Counter snapshot."""
        return dict(self.counters)


class PushComponent(PacketComponent):
    """Base for push-style processors: ``in0`` in, ``out`` fan-out.

    Subclasses implement :meth:`process`; the default :meth:`push` counts
    the packet and delegates.  :meth:`emit` routes to a named outgoing
    connection (or the sole connection when unambiguous), counting drops
    when the requested connection is unbound.
    """

    PROVIDES = (Provided("in0", IPacketPush),)
    RECEPTACLES = (
        Required("out", IPacketPush, min_connections=0, max_connections=None),
    )

    def push(self, packet: Packet) -> None:
        """IPacketPush entry point."""
        self.count("rx")
        self.process(packet)

    def process(self, packet: Packet) -> None:
        """Subclass hook: handle one packet (default: pass through)."""
        self.emit(packet)

    def emit(self, packet: Packet, connection: str | None = None) -> bool:
        """Send *packet* on the named outgoing connection.

        With ``connection=None`` the sole connection is used.  Unbound or
        ambiguous emission drops the packet (counted as
        ``drop:no-route``) — a mis-plumbed pipeline is observable, not
        fatal.
        """
        out = self.receptacle("out")
        if connection is None:
            ports = out.connections()
            if len(ports) == 1:
                ports[0].push(packet)
                self.count("tx")
                return True
            self.count("drop:no-route")
            return False
        try:
            port = out.port(connection)
        except ReceptacleError:
            self.count("drop:no-route")
            self.count(f"drop:no-route:{connection}")
            return False
        port.push(packet)
        self.count("tx")
        return True

    def output_names(self) -> list[str]:
        """Names of currently bound outgoing connections."""
        return self.receptacle("out").connection_names()
