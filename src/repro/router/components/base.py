"""Shared machinery for Router CF plug-in components.

Conventions used throughout the stratum-2 component library:

- push-style processors provide an ``IPacketPush`` interface named
  ``in0`` and emit downstream through a multi-receptacle named ``out``
  whose *connection names* are the "named outgoing interfaces" that filter
  specifications refer to;
- every component keeps a ``counters`` dict (packets seen, dropped,
  emitted, per-reason drops) so experiments read consistent statistics;
- drops are never silent: they are counted, and optionally handed to a
  dead-letter connection named ``drop`` when one is bound;
- every push-style component also accepts *batches*: ``push_batch(list)``
  must be observationally equivalent to calling ``push`` once per element
  (same counter totals, same per-connection emission order) while
  amortising per-call dispatch cost.  See :meth:`PushComponent.push_batch`
  for the exact protocol.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.netsim.packet import Packet
from repro.opencom.component import Component, Provided, Required
from repro.opencom.errors import ReceptacleError

# The canonical drop-path hand-back lives at stratum 1 with the pools it
# feeds (the NIC and the netsim link/node edge call it too); re-exported
# here because every stratum-2 component drops through it.
from repro.osbase.buffers import release_dropped  # noqa: F401 (re-export)
from repro.router.interfaces import IPacketPush


def bulk_dequeue(queue: deque, max_n: int) -> list:
    """Pop up to *max_n* items off the head of *queue*, in order.

    The shared body of every native ``pull_batch``: identical to *max_n*
    ``popleft()`` calls with the length probe and bound-method lookup paid
    once.  Callers own the counter bookkeeping (bump ``tx`` by the length
    of the returned list to match the scalar ``pull`` contract).
    """
    n = min(max_n, len(queue))
    if n <= 0:
        return []
    popleft = queue.popleft
    return [popleft() for _ in range(n)]


class PacketComponent(Component):
    """Base for all packet-processing components: counter bookkeeping."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        super().__init__()

    def count(self, key: str, increment: int = 1) -> None:
        """Bump a named counter."""
        self.counters[key] += increment

    def stats(self) -> dict[str, int]:
        """Counter snapshot."""
        return dict(self.counters)


class PushComponent(PacketComponent):
    """Base for push-style processors: ``in0`` in, ``out`` fan-out.

    Subclasses implement :meth:`process`; the default :meth:`push` counts
    the packet and delegates.  :meth:`emit` routes to a named outgoing
    connection (or the sole connection when unambiguous), counting drops
    when the requested connection is unbound.
    """

    PROVIDES = (Provided("in0", IPacketPush),)
    RECEPTACLES = (
        Required("out", IPacketPush, min_connections=0, max_connections=None),
    )

    def push(self, packet: Packet) -> None:
        """IPacketPush entry point."""
        self.count("rx")
        self.process(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Batch IPacketPush entry point: process a whole list of packets.

        Protocol (the contract every override must honour):

        - counter totals after ``push_batch(pkts)`` equal those after
          ``for p in pkts: push(p)``;
        - packets forwarded on any one outgoing connection leave in their
          arrival order (per-connection FIFO).  A batching component *may*
          group packets per connection, so the interleaving *across*
          different outgoing connections can differ from per-packet
          operation — exactly like a fan-out NIC queue;
        - interception is the vtable's concern, not the component's: when
          an interceptor sits on the ``in0`` slot the vtable delivers the
          batch item-by-item through the interposed closure and this method
          is bypassed entirely.

        The default loops :meth:`process`; subclasses override it to
        amortise per-call work (bulk queue appends, grouped emission,
        shared lookups).
        """
        self.count("rx", len(packets))
        process = self.process
        for packet in packets:
            process(packet)

    def process(self, packet: Packet) -> None:
        """Subclass hook: handle one packet (default: pass through)."""
        self.emit(packet)

    def emit(self, packet: Packet, connection: str | None = None) -> bool:
        """Send *packet* on the named outgoing connection.

        With ``connection=None`` the sole connection is used.  Unbound or
        ambiguous emission drops the packet (counted as
        ``drop:no-route``) — a mis-plumbed pipeline is observable, not
        fatal.
        """
        out = self.receptacle("out")
        if connection is None:
            ports = out.connections()
            if len(ports) == 1:
                ports[0].push(packet)
                self.count("tx")
                return True
            self.count("drop:no-route")
            release_dropped(packet)
            return False
        try:
            port = out.port(connection)
        except ReceptacleError:
            self.count("drop:no-route")
            self.count(f"drop:no-route:{connection}")
            release_dropped(packet)
            return False
        port.push(packet)
        self.count("tx")
        return True

    def emit_batch(self, packets: list[Packet], connection: str | None = None) -> bool:
        """Send a whole list of packets down one outgoing connection.

        The batch analogue of :meth:`emit`: one ``push_batch`` call on the
        port instead of a per-packet ``push``, with identical counter
        semantics (``tx``/``drop:no-route`` bumped by the batch size).
        Empty batches are a no-op.
        """
        if not packets:
            return True
        out = self.receptacle("out")
        if connection is None:
            ports = out.connections()
            if len(ports) == 1:
                ports[0].push_batch(packets)
                self.count("tx", len(packets))
                return True
            self.count("drop:no-route", len(packets))
            for packet in packets:
                release_dropped(packet)
            return False
        try:
            port = out.port(connection)
        except ReceptacleError:
            self.count("drop:no-route", len(packets))
            self.count(f"drop:no-route:{connection}", len(packets))
            for packet in packets:
                release_dropped(packet)
            return False
        port.push_batch(packets)
        self.count("tx", len(packets))
        return True

    def output_names(self) -> list[str]:
        """Names of currently bound outgoing connections."""
        return self.receptacle("out").connection_names()
