"""Source NAT: a stateful in-band function.

Demonstrates that the Router CF accommodates stateful per-flow plug-ins:
outbound packets are rewritten to a public address with a translated
source port; inbound packets matching a translation are rewritten back.
Translation state is declared in ``STATE_ATTRS`` so a NAT component can be
hot-swapped without dropping established flows.
"""

from __future__ import annotations

from repro.netsim.packet import IPv4Header, Packet, ipv4
from repro.router.components.base import PushComponent, release_dropped


class SourceNat(PushComponent):
    """IPv4 source NAT with port translation.

    Packets entering ``in0`` are treated as *outbound*: their source
    address becomes *public_address* and their source port a translated
    port; they leave on connection ``out-wan``.  Packets entering the
    second provided interface ``in-wan`` are *inbound*: a reverse lookup
    restores the original address/port, and they leave on ``out-lan``.
    """

    OUT_WAN = "out-wan"
    OUT_LAN = "out-lan"

    STATE_ATTRS = ("_forward", "_reverse", "_next_port")

    def __init__(self, public_address: str | int, *, port_base: int = 30000) -> None:
        super().__init__()
        self.public_address = ipv4(public_address)
        self.port_base = port_base
        self._next_port = port_base
        #: (orig_src, orig_sport) -> translated sport
        self._forward: dict[tuple[int, int], int] = {}
        #: translated sport -> (orig_src, orig_sport)
        self._reverse: dict[int, tuple[int, int]] = {}
        self.expose("in-wan", type(self).PROVIDES[0].itype, impl=_InboundSide(self))

    def process(self, packet: Packet) -> None:
        """Outbound translation."""
        net = packet.net
        transport = packet.transport
        if not isinstance(net, IPv4Header) or transport is None:
            self.count("drop:not-natable")
            release_dropped(packet)
            return
        key = (net.src, transport.sport)
        translated = self._forward.get(key)
        if translated is None:
            translated = self._allocate_port()
            if translated is None:
                self.count("drop:port-exhausted")
                release_dropped(packet)
                return
            self._forward[key] = translated
            self._reverse[translated] = key
        # rewrite_src refreshes the checksum itself: a full re-sum on
        # materialised headers, two RFC 1624 incremental updates in place
        # on wire-resident views (the sport lives outside the IP checksum).
        net.rewrite_src(self.public_address)
        transport.sport = translated
        self.count("translated-out")
        self.emit(packet, self.OUT_WAN)

    def process_inbound(self, packet: Packet) -> None:
        """Inbound reverse translation."""
        self.count("rx")
        net = packet.net
        transport = packet.transport
        if not isinstance(net, IPv4Header) or transport is None:
            self.count("drop:not-natable")
            release_dropped(packet)
            return
        original = self._reverse.get(transport.dport)
        if original is None:
            self.count("drop:no-translation")
            release_dropped(packet)
            return
        original_dst, original_dport = original
        net.rewrite_dst(original_dst)
        transport.dport = original_dport
        self.count("translated-in")
        self.emit(packet, self.OUT_LAN)

    def _allocate_port(self) -> int | None:
        for _ in range(65535 - self.port_base):
            port = self._next_port
            self._next_port += 1
            if self._next_port >= 65536:
                self._next_port = self.port_base
            if port not in self._reverse:
                return port
        return None

    def translation_count(self) -> int:
        """Number of live translations."""
        return len(self._forward)


class _InboundSide:
    """IPacketPush implementation for the NAT's WAN-facing interface."""

    def __init__(self, nat: SourceNat) -> None:
        self._nat = nat

    def push(self, packet: Packet) -> None:
        """Reverse-translate one inbound packet."""
        self._nat.process_inbound(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Reverse-translate a batch (per-packet state walk)."""
        process = self._nat.process_inbound
        for packet in packets:
            process(packet)
