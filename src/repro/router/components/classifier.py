"""The classifier component: IClassifier over a filter table.

The canonical IClassifier plug-in of the Router CF: packets entering
``in0`` are matched against the installed :class:`FilterSpec` table and
emitted on the *named outgoing connection* the winning filter designates —
the exact semantics rule 2 of the CF binds IClassifier components to.

Key extraction is byte-path agnostic: filter matching reads match fields
through the packet's header objects, so on wire-resident packets
(:mod:`repro.netsim.wire`) every ``src``/``dst``/``proto``/port read is a
``struct.unpack_from`` on the packet's memoryview — no header is
materialised to classify.
"""

from __future__ import annotations

from typing import Any

from repro.netsim.packet import Packet
from repro.opencom.component import Provided
from repro.router.components.base import PushComponent, release_dropped
from repro.router.filters import FilterSpec, FilterTable
from repro.router.interfaces import IClassifier

class Classifier(PushComponent):
    """Filter-table packet classifier.

    Parameters
    ----------
    default_output:
        Connection name for packets no filter matches; ``None`` means
        unmatched packets are dropped (counted ``drop:unclassified``).
    """

    PROVIDES = PushComponent.PROVIDES + (Provided("classifier", IClassifier),)

    def __init__(self, *, default_output: str | None = None) -> None:
        super().__init__()
        self.table = FilterTable()
        self.default_output = default_output

    # -- IClassifier -------------------------------------------------------------

    def register_filter(self, spec: FilterSpec | str) -> int:
        """Install a filter (spec object or filter-language text)."""
        return self.table.add(spec)

    def remove_filter(self, filter_id: int) -> None:
        """Remove a filter by id."""
        self.table.remove(filter_id)

    def list_filters(self) -> list[dict[str, Any]]:
        """Describe installed filters, highest priority first."""
        return self.table.describe()

    # -- data path ------------------------------------------------------------------

    def process(self, packet: Packet) -> None:
        """Classify and emit on the winning filter's output."""
        spec = self.table.classify(packet)
        if spec is not None:
            packet.metadata["class"] = spec.output
            self.count(f"class:{spec.output}")
            self.emit(packet, spec.output)
            return
        if self.default_output is not None:
            packet.metadata["class"] = self.default_output
            self.count(f"class:{self.default_output}")
            self.emit(packet, self.default_output)
            return
        self.count("drop:unclassified")
        release_dropped(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Classify per packet, emit one grouped batch per output class.

        Per-output order matches arrival order; different classes leave in
        first-seen class order rather than interleaved.
        """
        self.count("rx", len(packets))
        default = self.default_output
        if not self.table and default is not None:
            # No filters installed: the whole batch is default class.
            for packet in packets:
                packet.metadata["class"] = default
            self.count(f"class:{default}", len(packets))
            self.emit_batch(packets, default)
            return
        classify = self.table.classify
        groups: dict[str, list[Packet]] = {}
        unclassified = 0
        for packet in packets:
            spec = classify(packet)
            output = spec.output if spec is not None else default
            if output is None:
                unclassified += 1
                release_dropped(packet)
                continue
            packet.metadata["class"] = output
            group = groups.get(output)
            if group is None:
                group = groups[output] = []
            group.append(packet)
        for output, group in groups.items():
            self.count(f"class:{output}", len(group))
            self.emit_batch(group, output)
        if unclassified:
            self.count("drop:unclassified", unclassified)

    # -- compiled hot path (see repro.opencom.compile) ---------------------

    def compiled_batch_kernel(self, next_map):
        """Closure-composed ``push_batch``.

        ``self.table`` / ``self.default_output`` are read per batch, so
        filter installs/removals reach the compiled path immediately.
        Output names without a bound connection replicate ``emit_batch``'s
        unbound-connection drop accounting.
        """
        if not next_map:
            return None
        kernels = dict(next_map)
        counters = self.counters

        def deliver(output, group, _c=counters, _kernels=kernels):
            _c[f"class:{output}"] += len(group)
            sink = _kernels.get(output)
            if sink is None:
                _c["drop:no-route"] += len(group)
                _c[f"drop:no-route:{output}"] += len(group)
                for packet in group:
                    release_dropped(packet)
                return
            sink(group)
            _c["tx"] += len(group)

        def kernel(
            packets,
            _c=counters,
            _self=self,
            _deliver=deliver,
            _release=release_dropped,
        ):
            _c["rx"] += len(packets)
            default = _self.default_output
            table = _self.table
            if not table and default is not None:
                for packet in packets:
                    packet.metadata["class"] = default
                # Interpreted fast path counts the class key even for an
                # empty batch (emit_batch then no-ops) — mirror both.
                if packets:
                    _deliver(default, packets)
                else:
                    _c[f"class:{default}"] += 0
                return
            classify = table.classify
            groups: dict[str, list[Packet]] = {}
            unclassified = 0
            for packet in packets:
                spec = classify(packet)
                output = spec.output if spec is not None else default
                if output is None:
                    unclassified += 1
                    _release(packet)
                    continue
                packet.metadata["class"] = output
                group = groups.get(output)
                if group is None:
                    group = groups[output] = []
                group.append(packet)
            for output, group in groups.items():
                _deliver(output, group)
            if unclassified:
                _c["drop:unclassified"] += unclassified

        return kernel

    def compiled_source(self, ctx, next_map):
        """Inline the filter-match loop into the merged source kernel
        (spine terminal).

        Per-class groups flush through the sink closure kernels in
        first-seen order; because this block is appended last it renders
        *first* (flush blocks emit in reverse), so classified groups
        reach the queues before any upstream side list (e.g. the
        recogniser's deferred v6 batch) — the interpreted emission
        order.  ``classify`` and ``default_output`` are re-read from the
        component each batch, so filter installs/removals reach the
        compiled path immediately, and any reflective touch revokes the
        plan anyway.
        """
        if not next_map:
            return NotImplemented
        arrivals = ctx.facts.get("arrivals_var")
        if arrivals is None:
            return NotImplemented
        c = ctx.bind("cls_counters", self.counters)
        comp = ctx.bind("classifier", self)
        release = ctx.bind("release_dropped", release_dropped)
        sinks = ctx.bind("class_kernels", dict(next_map))
        classify = ctx.fresh("classify")
        default = ctx.fresh("class_default")
        groups = ctx.fresh("class_groups")
        unclassified = ctx.fresh("unclassified")
        ctx.prologue += [
            f"{classify} = {comp}.table.classify",
            f"{default} = {comp}.default_output",
            f"{groups} = {{}}",
            f"{unclassified} = 0",
        ]
        ctx.loop += [
            f"spec = {classify}(pkt)",
            "if spec is not None:",
            "    cls_out = spec.output",
            "else:",
            f"    cls_out = {default}",
            "    if cls_out is None:",
            f"        {unclassified} += 1",
            f"        {release}(pkt)",
            "        continue",
            "pkt.metadata['class'] = cls_out",
            f"group = {groups}.get(cls_out)",
            "if group is None:",
            f"    group = {groups}[cls_out] = []",
            "group.append(pkt)",
        ]
        ctx.epilogue += [
            f"if {arrivals}:",
            f"    {c}['rx'] += {arrivals}",
            f"if {unclassified}:",
            f"    {c}['drop:unclassified'] += {unclassified}",
        ]
        ctx.flush.append([
            f"for cls_out, group in {groups}.items():",
            f"    {c}['class:' + cls_out] += len(group)",
            f"    sink = {sinks}.get(cls_out)",
            "    if sink is None:",
            f"        {c}['drop:no-route'] += len(group)",
            f"        {c}['drop:no-route:' + cls_out] += len(group)",
            "        for pkt in group:",
            f"            {release}(pkt)",
            "        continue",
            "    sink(group)",
            f"    {c}['tx'] += len(group)",
        ])
        return None
