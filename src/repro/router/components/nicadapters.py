"""NIC adapter components: the edge of the stratum-2 data path.

The paper's Router CF provides "'standard' components that interface to
network cards and wrap efficient kernel-user space communication
mechanisms".  :class:`NicIngress` turns frames arriving at a stratum-1
:class:`~repro.osbase.nic.Nic` into pushes on the pipeline;
:class:`NicEgress` turns pipeline pushes into transmissions (usually
``node.send`` on a port).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.netsim.packet import Packet
from repro.osbase.nic import Nic
from repro.router.components.base import (
    PacketComponent,
    PushComponent,
    release_dropped,
)
from repro.opencom.component import Required
from repro.router.interfaces import IPacketPush


class NicIngress(PacketComponent):
    """Frames from a NIC become pushes on the ``out`` receptacle.

    Operates in interrupt mode (``attach`` installs an rx handler) or
    polled mode (:meth:`poll` drains the RX ring through the pipeline
    with a budget — NAPI style).
    """

    RECEPTACLES = (
        Required("out", IPacketPush, min_connections=0, max_connections=1),
    )

    def __init__(self) -> None:
        super().__init__()
        self._nic: Nic | None = None

    def attach(self, nic: Nic, *, interrupt_mode: bool = True) -> None:
        """Bind to a NIC; interrupt mode pushes frames as they arrive."""
        self._nic = nic
        if interrupt_mode:
            nic.rx_handler = self._on_frame
        else:
            nic.rx_handler = None

    def detach(self) -> None:
        """Unhook from the NIC."""
        if self._nic is not None and self._nic.rx_handler == self._on_frame:
            self._nic.rx_handler = None
        self._nic = None

    def _on_frame(self, packet: Packet) -> None:
        self.count("rx")
        out = self.receptacle("out")
        if out.bound:
            out.push(packet)
            self.count("tx")
        else:
            self.count("drop:unplumbed")
            release_dropped(packet)

    def poll(self, budget: int = 64) -> int:
        """Polled mode: drain up to *budget* frames from the RX ring.

        Drained frames enter the pipeline as one batch per poll (NAPI
        batching), with the same counters as interrupt-mode delivery.
        """
        if self._nic is None:
            return 0
        frames: list[Packet] = []
        drained = self._nic.drain_rx(frames.append, budget=budget)
        if frames:
            self.count("rx", len(frames))
            out = self.receptacle("out")
            if out.bound:
                out.push_batch(frames)
                self.count("tx", len(frames))
            else:
                self.count("drop:unplumbed", len(frames))
                for frame in frames:
                    release_dropped(frame)
        return drained


class NicEgress(PushComponent):
    """Pipeline pushes become transmissions via a transmit callable.

    Ownership convention: *calling* the transmit function hands the
    packet over — on failure (False) the callee has already counted the
    drop and released any pooled buffer (``Nic.transmit``, ``Node.send``
    and the link drop paths all honour this), so the egress component
    must not release it again.
    """

    def __init__(self, transmit: Callable[[Packet], bool] | None = None) -> None:
        super().__init__()
        self._transmit = transmit

    def set_transmit(self, transmit: Callable[[Packet], bool]) -> None:
        """Install (or replace) the transmit function."""
        self._transmit = transmit

    def process(self, packet: Packet) -> None:
        """Transmit; failures count ``drop:tx-failed`` (the transmit
        callable owns the packet either way — see the class docstring)."""
        if self._transmit is None:
            self.count("drop:unplumbed")
            release_dropped(packet)
            return
        if self._transmit(packet):
            self.count("tx")
        else:
            self.count("drop:tx-failed")


class TransmitAdapter(PushComponent):
    """Terminal egress closing the buffer lifecycle through a NIC.

    The push side queues packets on the bound NIC's TX ring
    (:meth:`process` → ``nic.transmit``; ring-full drops are counted and
    released by the NIC itself).  The wire side — :meth:`drain_wire` —
    pops transmitted frames off the ring and releases their pooled
    buffers (or hands them to an explicit consumer such as a link), which
    is what lets a warm router recycle the same buffers indefinitely:
    ingress acquires, the datapath moves references, this adapter's drain
    releases.
    """

    def __init__(self, nic: Nic | None = None) -> None:
        super().__init__()
        self._nic = nic

    def attach(self, nic: Nic) -> None:
        """Bind (or replace) the TX NIC."""
        self._nic = nic

    @property
    def nic(self) -> Nic | None:
        """The bound TX NIC."""
        return self._nic

    def process(self, packet: Packet) -> None:
        """Queue one packet on the TX ring; ``drop:tx-full`` on overflow
        (the NIC released the buffer — transmit owns the packet)."""
        if self._nic is None:
            self.count("drop:unplumbed")
            release_dropped(packet)
            return
        if self._nic.transmit(packet):
            self.count("tx")
        else:
            self.count("drop:tx-full")

    def push_batch(self, packets: list[Packet]) -> None:
        """Batch entry: one counter probe, then per-packet ring appends
        (the ring must keep exact drop-tail semantics)."""
        self.count("rx", len(packets))
        nic = self._nic
        if nic is None:
            self.count("drop:unplumbed", len(packets))
            for packet in packets:
                release_dropped(packet)
            return
        transmit = nic.transmit
        sent = 0
        for packet in packets:
            if transmit(packet):
                sent += 1
        self.count("tx", sent)
        if sent != len(packets):
            self.count("drop:tx-full", len(packets) - sent)

    def drain_wire(
        self,
        *,
        budget: int | None = None,
        handler: Callable[[Packet], None] | None = None,
    ) -> int:
        """Drain the TX ring's frames off the machine; returns the number
        drained.  Without a *handler* each frame's pooled buffer returns
        to its pool (the frame has been serialised onto the wire)."""
        if self._nic is None:
            return 0
        return self._nic.drain_tx(handler, budget=budget)
