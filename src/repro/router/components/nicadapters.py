"""NIC adapter components: the edge of the stratum-2 data path.

The paper's Router CF provides "'standard' components that interface to
network cards and wrap efficient kernel-user space communication
mechanisms".  :class:`NicIngress` turns frames arriving at a stratum-1
:class:`~repro.osbase.nic.Nic` into pushes on the pipeline;
:class:`NicEgress` turns pipeline pushes into transmissions (usually
``node.send`` on a port).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.netsim.packet import Packet
from repro.osbase.nic import Nic
from repro.router.components.base import (
    PacketComponent,
    PushComponent,
    release_dropped,
)
from repro.opencom.component import Required
from repro.router.interfaces import IPacketPush


class NicIngress(PacketComponent):
    """Frames from a NIC become pushes on the ``out`` receptacle.

    Operates in interrupt mode (``attach`` installs an rx handler) or
    polled mode (:meth:`poll` drains the RX ring through the pipeline
    with a budget — NAPI style).
    """

    RECEPTACLES = (
        Required("out", IPacketPush, min_connections=0, max_connections=1),
    )

    def __init__(self) -> None:
        super().__init__()
        self._nic: Nic | None = None

    def attach(self, nic: Nic, *, interrupt_mode: bool = True) -> None:
        """Bind to a NIC; interrupt mode pushes frames as they arrive."""
        self._nic = nic
        if interrupt_mode:
            nic.rx_handler = self._on_frame
        else:
            nic.rx_handler = None

    def detach(self) -> None:
        """Unhook from the NIC."""
        if self._nic is not None and self._nic.rx_handler == self._on_frame:
            self._nic.rx_handler = None
        self._nic = None

    def _on_frame(self, packet: Packet) -> None:
        self.count("rx")
        out = self.receptacle("out")
        if out.bound:
            out.push(packet)
            self.count("tx")
        else:
            self.count("drop:unplumbed")
            release_dropped(packet)

    def poll(self, budget: int = 64) -> int:
        """Polled mode: drain up to *budget* frames from the RX ring.

        Drained frames enter the pipeline as one batch per poll (NAPI
        batching), with the same counters as interrupt-mode delivery.
        """
        if self._nic is None:
            return 0
        frames: list[Packet] = []
        drained = self._nic.drain_rx(frames.append, budget=budget)
        if frames:
            self.count("rx", len(frames))
            out = self.receptacle("out")
            if out.bound:
                out.push_batch(frames)
                self.count("tx", len(frames))
            else:
                self.count("drop:unplumbed", len(frames))
                for frame in frames:
                    release_dropped(frame)
        return drained


class NicEgress(PushComponent):
    """Pipeline pushes become transmissions via a transmit callable."""

    def __init__(self, transmit: Callable[[Packet], bool] | None = None) -> None:
        super().__init__()
        self._transmit = transmit

    def set_transmit(self, transmit: Callable[[Packet], bool]) -> None:
        """Install (or replace) the transmit function."""
        self._transmit = transmit

    def process(self, packet: Packet) -> None:
        """Transmit; failures count ``drop:tx-failed``."""
        if self._transmit is None:
            self.count("drop:unplumbed")
            release_dropped(packet)
            return
        if self._transmit(packet):
            self.count("tx")
        else:
            self.count("drop:tx-failed")
            release_dropped(packet)
