"""Edge admission tier: a swappable classify → queue → schedule stage in
front of a sharded datapath.

The multi-capsule fleet (C18) put *static* admission control at the edge;
the adaptation stratum needs the edge itself to be reconfigurable — the
paper's queue-discipline and scheduler hot-swaps (A2, C10b) applied to
the admission path of a live fleet.  The tier is assembled as an
ordinary :class:`~repro.router.pipeline.RouterPipeline` over Router-CF
plug-ins, so every swap goes through the architecture meta-model
(:meth:`RouterPipeline.swap_stage`: quiesce → unbind → state transfer →
rebind → resume, rollback on failure) and every replacement is
re-validated by the CF's rules before it serves a packet.

Topology (flat, one capsule)::

    classifier --<class>--> queue:<class>   (one per traffic class)
    scheduler   <--pull---- queues; pushes --> injector sink
    injector sink --bytes--> inject(frames)   (e.g. ShardedDatapath.steer_batch)

Packets queue *materialised* (plain :class:`~repro.netsim.packet.Packet`,
no pool buffer held); the injector serialises to wire bytes at the last
moment, so the datapath's NIC-side pool accounting starts exactly at
injection — an admission drop never strands a pooled buffer.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Mapping
from typing import Any

from repro.netsim.packet import Packet
from repro.opencom.capsule import Capsule
from repro.opencom.component import Component, Provided
from repro.router.components.base import PacketComponent
from repro.router.interfaces import IPacketPush
from repro.router.components.classifier import Classifier
from repro.router.components.scheduling import DrrScheduler
from repro.router.pipeline import RouterPipeline
from repro.router.router_cf import RouterCF


class InjectorSink(PacketComponent):
    """Terminal push component: serialise packets and hand the wire bytes
    to an inject callable (typically ``ShardedDatapath.steer_batch``).

    The callable returns how many frames the downstream accepted;
    refusals are counted ``inject:refused`` (the steering layer holds
    the per-frame reasons).
    """

    PROVIDES = (Provided("in0", IPacketPush),)

    def __init__(self, inject: Callable[[list[bytes]], int]) -> None:
        super().__init__()
        self.inject = inject

    def push(self, packet: Packet) -> None:
        self.push_batch([packet])

    def push_batch(self, packets: list[Packet]) -> None:
        self.count("rx", len(packets))
        frames = [packet.to_bytes() for packet in packets]
        accepted = self.inject(frames)
        self.count("injected", accepted)
        if accepted < len(frames):
            self.count("inject:refused", len(frames) - accepted)


class AdmissionTier:
    """Reconfigurable admission stage over a :class:`RouterPipeline`.

    Parameters
    ----------
    capsule:
        Capsule the tier's components live in (swaps go through its
        architecture meta-model).
    inject:
        ``list[bytes] -> int`` — downstream acceptor for scheduled
        traffic; returns frames accepted.
    classes:
        Ordered mapping of traffic-class name → queue factory.  One
        queue per class; the classifier emits on the class's named
        connection and the scheduler pulls it back by the same name.
    filters:
        Filter-language specs installed on the classifier (e.g.
        ``"dport=53 -> interactive"``).
    default_class:
        Class for unmatched packets (defaults to the last *classes* key).
    scheduler_factory:
        Link-scheduler factory (default: byte-fair :class:`DrrScheduler`).
    """

    def __init__(
        self,
        capsule: Capsule,
        inject: Callable[[list[bytes]], int],
        *,
        classes: Mapping[str, Callable[[], Component]],
        filters: tuple[str, ...] = (),
        default_class: str | None = None,
        scheduler_factory: Callable[[], Component] | None = None,
        name: str = "admission",
    ) -> None:
        if not classes:
            raise ValueError("admission tier needs at least one traffic class")
        self.name = name
        self.classes = tuple(classes)
        default = default_class if default_class is not None else self.classes[-1]
        if default not in classes:
            raise ValueError(f"default class {default!r} not in classes")
        if scheduler_factory is None:
            scheduler_factory = DrrScheduler

        cf = RouterCF()
        capsule.adopt(cf, f"{name}-cf")
        classifier = capsule.instantiate(
            lambda: Classifier(default_output=default), f"{name}-classifier"
        )
        for spec in filters:
            classifier.register_filter(spec)
        queues: dict[str, Component] = {
            klass: capsule.instantiate(factory, f"{name}-queue:{klass}")
            for klass, factory in classes.items()
        }
        scheduler = capsule.instantiate(scheduler_factory, f"{name}-scheduler")
        sink = capsule.instantiate(lambda: InjectorSink(inject), f"{name}-sink")

        for klass in self.classes:
            capsule.bind(
                classifier.receptacle("out"), queues[klass].interface("in0"),
                connection_name=klass,
            )
            capsule.bind(
                scheduler.receptacle("inputs"), queues[klass].interface("pull0"),
                connection_name=klass,
            )
        capsule.bind(scheduler.receptacle("out"), sink.interface("in0"))

        for component in (classifier, *queues.values(), scheduler, sink):
            cf.accept(component)

        self.pipeline = RouterPipeline(
            capsule=capsule,
            cf=cf,
            entry=classifier,
            stages={
                "classifier": classifier,
                **{f"queue:{k}": q for k, q in queues.items()},
                "scheduler": scheduler,
                "sink": sink,
            },
            scheduler=scheduler,
        )
        self._quiesced = False
        self._versions: dict[str, int] = defaultdict(int)
        self.admitted_total = 0

    # -- data path ---------------------------------------------------------

    def push_batch(self, packets: list[Packet]) -> int:
        """Admit a batch at the classifier; returns packets offered.

        Arrivals keep flowing while the tier is quiesced — quiescence
        freezes the *pull* side only, so reconfiguration never turns the
        edge away (overflow policy, not refusal, handles the backlog).
        """
        self.admitted_total += len(packets)
        self.pipeline.push_batch(packets)
        return len(packets)

    def service(self, budget: int = 64) -> int:
        """Schedule up to *budget* packets into the injector; 0 while
        quiesced."""
        if self._quiesced:
            return 0
        return self.pipeline.service(budget)

    # -- quiescence --------------------------------------------------------

    @property
    def quiesced(self) -> bool:
        return self._quiesced

    def quiesce(self) -> None:
        """Freeze the pull side (idempotent); arrivals still queue."""
        self._quiesced = True

    def resume(self) -> None:
        self._quiesced = False

    # -- introspection -----------------------------------------------------

    def class_depth(self) -> dict[str, int]:
        """Per-class queue depth (scheduler-pending heads included, so the
        total never undercounts packets still inside the tier)."""
        depths = {
            klass: self.pipeline.stages[f"queue:{klass}"].depth
            for klass in self.classes
        }
        pending = getattr(self.pipeline.stages["scheduler"], "_pending", None)
        if pending:
            for klass in pending:
                if klass in depths:
                    depths[klass] += 1
        return depths

    def depth(self) -> int:
        """Packets currently queued inside the tier."""
        return sum(self.class_depth().values())

    def drop_total(self) -> int:
        """Packets dropped by the tier's queues (all drop reasons)."""
        total = 0
        for klass in self.classes:
            counters = self.pipeline.stages[f"queue:{klass}"].counters
            total += sum(
                count for key, count in counters.items() if key.startswith("drop:")
            )
        return total

    def injected_total(self) -> int:
        return self.pipeline.stages["sink"].counters.get("injected", 0)

    def stage_stats(self) -> dict[str, dict[str, int]]:
        return self.pipeline.stage_stats()

    def describe(self) -> dict[str, Any]:
        """Current tier shape — discipline names the policy engine and the
        bench read to know which configuration is live."""
        return {
            "classes": list(self.classes),
            "queues": {
                klass: type(self.pipeline.stages[f"queue:{klass}"]).__name__
                for klass in self.classes
            },
            "scheduler": type(self.pipeline.stages["scheduler"]).__name__,
            "quiesced": self._quiesced,
            "depth": self.depth(),
        }

    # -- reconfiguration ---------------------------------------------------

    def _next_name(self, stage: str) -> str:
        self._versions[stage] += 1
        return f"{self.name}-{stage}#v{self._versions[stage]}"

    def swap_queue(self, klass: str, factory: Callable[[], Component]) -> Component:
        """Hot-swap one class's queue discipline, backlog carried across
        (``STATE_ATTRS`` state transfer).  Purely mechanical — safety
        (quiesced port, decompiled regions) is the adaptation rule set's
        concern, enforced *before* this is ever called."""
        stage = f"queue:{klass}"
        if stage not in self.pipeline.stages:
            raise KeyError(f"no queue for class {klass!r}")
        return self.pipeline.swap_stage(
            stage, factory, new_name=self._next_name(stage)
        )

    def swap_scheduler(self, factory: Callable[[], Component]) -> Component:
        """Hot-swap the link scheduler.

        Byte-fair disciplines (DRR/WFQ) stash one pulled-but-unserved
        head packet per input in ``_pending``; those packets are
        restitched to the *front* of their queues before the swap so no
        packet is lost and per-flow FIFO survives the discipline change.
        """
        old = self.pipeline.stages["scheduler"]
        pending = getattr(old, "_pending", None)
        if pending:
            for input_name, packet in list(pending.items()):
                queue = self.pipeline.stages.get(f"queue:{input_name}")
                if queue is not None:
                    queue._queue.appendleft(packet)
            pending.clear()
        return self.pipeline.swap_stage(
            "scheduler", factory, new_name=self._next_name("scheduler")
        )
