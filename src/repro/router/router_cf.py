"""The Router CF ("Gateway CF"): the paper's stratum-2 component framework.

Section 5 defines three run-time-checked rules for plug-ins, reproduced
here verbatim as the CF's rule set:

1. *Packet-passing shape* — compliant components must support appropriate
   numbers and combinations of IPacketPush/IPacketPull interfaces and
   receptacles; instances may be added/removed dynamically as long as the
   rules stay satisfied (the guarded-change API of the CF base enforces
   this).
2. *IClassifier semantics* — components optionally supporting IClassifier
   must be able to honour filter specs "in terms of the particular named
   outgoing IPacketPush or IPacketPull interface(s)": concretely, they
   must have an outgoing packet receptacle to emit on, and
   :meth:`RouterCF.check_filter_outputs` verifies at filter-install time
   that every referenced output connection exists.
3. *Composite recursion* — composite plug-ins must contain a controller
   and every constituent must recursively conform.

The CF also wires composites to the resources meta-model (task → component
mapping) per the last rule of section 5.
"""

from __future__ import annotations

from typing import Any

from repro.cf.composite import CompositeComponent
from repro.cf.framework import ComponentFramework
from repro.cf.rules import AtLeastOneOf, ConditionalRule, PredicateRule, Rule
from repro.opencom.component import Component
from repro.opencom.errors import RuleViolation
from repro.router.interfaces import IClassifier, IPacketPull, IPacketPush


def _is_composite(component: Component) -> bool:
    return callable(getattr(component, "constituents", None))


def _has_classifier(component: Component) -> bool:
    # Composites export IClassifier by delegation; the semantics obligation
    # falls on the internal classifier constituent, which the recursive
    # check covers.
    if _is_composite(component):
        return False
    return bool(component.interfaces_of_type(IClassifier))


def _has_controller(component: Component) -> bool:
    constituents = getattr(component, "constituents", None)
    if not callable(constituents):
        return True  # not a composite: rule does not apply
    return any(getattr(m, "IS_CONTROLLER", False) for m in constituents())


def router_rules() -> list[Rule]:
    """The Router CF's rule set (fresh instances, safe to mutate per-CF)."""
    return [
        # Rule 1: must take part in packet passing in some role.
        AtLeastOneOf([IPacketPush, IPacketPull], role="any"),
        # Rule 2: IClassifier implies a named outgoing packet receptacle.
        ConditionalRule(
            _has_classifier,
            [AtLeastOneOf([IPacketPush, IPacketPull], role="requires")],
            name="classifier-needs-outputs",
        ),
        # Rule 3 (partial): composites must contain a controller; the
        # recursive constituent check is built into the CF base.
        PredicateRule(
            "composite-has-controller",
            _has_controller,
            "composite components must contain a controller constituent",
        ),
    ]


class RouterCF(ComponentFramework):
    """The stratum-2 Router CF."""

    def __init__(self) -> None:
        super().__init__(rules=router_rules())

    # -- filter-semantics enforcement (rule 2, install-time half) --------------

    def install_filter(
        self, plugin: Component, spec: Any, *, principal: str = "system"
    ) -> int:
        """Install a packet filter on an accepted IClassifier plug-in,
        verifying the named output exists before installation.

        Returns the filter id.
        """
        self.acl.check(principal, "filter.install")
        self._require_plugin(plugin)
        refs = plugin.interfaces_of_type(IClassifier)
        if not refs:
            raise RuleViolation(
                plugin.name, ["component does not support IClassifier"]
            )
        classifier_ref = refs[0]
        filter_id = classifier_ref.vtable.invoke("register_filter", spec)
        problems = self.check_filter_outputs(plugin)
        if problems:
            classifier_ref.vtable.invoke("remove_filter", filter_id)
            raise RuleViolation(plugin.name, problems)
        return filter_id

    def check_filter_outputs(self, plugin: Component) -> list[str]:
        """Verify every output named by the plug-in's filters is a live
        outgoing connection (rule 2's semantics obligation)."""
        refs = plugin.interfaces_of_type(IClassifier)
        if not refs:
            return []
        outputs: set[str] = set()
        for ref in refs:
            for described in ref.vtable.invoke("list_filters"):
                outputs.add(described["output"])
        default_output = getattr(plugin, "default_output", None)
        if default_output:
            outputs.add(default_output)
        bound: set[str] = set()
        for receptacle in plugin.receptacles().values():
            if issubclass(receptacle.itype, (IPacketPush, IPacketPull)):
                bound.update(receptacle.connection_names())
        missing = sorted(outputs - bound)
        return [
            f"filter names output {name!r} but no outgoing packet "
            "connection of that name exists"
            for name in missing
        ]

    # -- resource integration (section 5, last rule) -----------------------------

    def map_task_to_constituents(
        self,
        composite: CompositeComponent,
        task_name: str,
        member_names: list[str],
        *,
        principal: str = "system",
    ) -> None:
        """Attach a resources-meta-model task to designated constituents of
        an accepted composite plug-in (flexible task → component mapping)."""
        self.acl.check(principal, "task.map")
        self._require_plugin(composite)
        resources = composite.host_capsule.resources
        task = resources.task(task_name)
        for member_name in member_names:
            member = composite.member(member_name)
            task.attach(member)

    def validate_with_report(self, component: Component) -> dict[str, Any]:
        """Validate and return a structured accept/reject report (used by
        the F2 benchmark to tabulate rule outcomes)."""
        failures = self.validate_component(component)
        return {
            "component": component.name,
            "accepted": not failures,
            "failures": failures,
        }
