"""Multi-capsule fleet: the sharded datapath replicated across nodes.

The single-box datapath (:func:`~repro.router.pipeline.
build_sharded_forwarding_datapath`) runs N worker shards behind one
RSS steering stage on one machine.  This module lifts that design one
level: a **fleet** of capsule nodes, each hosting its own complete
sharded datapath, behind an ingress **edge** node that steers flows with
two-level consistent hashing —

- outer level: :class:`~repro.osbase.sharding.HashRing` maps the flow
  hash to a *capsule* (``≤1-home-move`` under membership change, the
  fleet-level twin of the bucket-table bound);
- inner level: the chosen capsule's existing
  :class:`~repro.osbase.sharding.RssSteering` bucket table maps the same
  flow hash to a *shard*.

Both levels consume the representation-stable
:func:`~repro.netsim.wire.flow_hash_of`, so raw wire bytes, a
materialised ``Packet`` and a zero-copy ``WirePacket`` of one flow agree
on capsule *and* shard.  Frames cross real
:class:`~repro.netsim.link.Link` objects between edge and capsules —
serialisation delay, seeded loss and bounded backlog included — so the
fleet inherits the network's failure model instead of assuming a
backplane.

The seam is :class:`CapsuleNode`: one self-contained datapath unit bound
to a ``netsim`` node, owning its pools, TX handling and compile /
decompile hooks, plus the quiesce / swap / resume action set
(:meth:`CapsuleNode.upgrade_action_set`) that lets the stratum-4
two-phase protocol stage pipeline upgrades across the fleet
(:class:`~repro.coordination.deployment.StagedRollout`) and the kill
path (:meth:`CapsuleNode.kill`) that underlies node-failure failover.
Admission control lives at the edge
(:class:`~repro.coordination.rsvp.EdgeAdmission`): a new flow reserves
against the fleet's aggregate capacity curve
(:class:`~repro.ixp.placement.FleetPlacement`) before the first frame is
steered.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.netsim.node import Node
from repro.netsim.topology import Topology
from repro.netsim.wire import PacketError, WirePacket, flow_hash_of
from repro.opencom.errors import OpenComError
from repro.osbase.buffers import release_dropped
from repro.osbase.sharding import HashRing


class FleetError(OpenComError):
    """Invalid fleet operation."""


class CapsuleNode:
    """One fleet member: a complete sharded datapath bound to a node.

    *build* is the version seam — ``build(version)`` returns a fresh
    :class:`~repro.osbase.sharding.ShardedDatapath` (with its own thread
    manager, pools and TX handling) for that pipeline version.  The node
    forwards every arriving frame into the *current* datapath's steering
    stage; :meth:`install` swaps versions by building the replacement
    **first** (a failed build leaves the running version untouched) and
    then draining the old one through its own engines.

    Three ingress modes cover the fleet protocols: alive (steer),
    quiesced (park in arrival order — an upgrade round is in flight) and
    dead (count and release — the node was killed, the ring has already
    re-homed its flows).
    """

    def __init__(
        self,
        node: Node,
        build: Callable[[str], Any],
        *,
        version: str = "v1",
    ) -> None:
        self.node = node
        self.build = build
        self.version: str = ""
        self.datapath: Any = None
        self.alive = True
        #: Drained predecessors, oldest first (their stats stay readable).
        self.retired: list[Any] = []
        self._quiesced = False
        self._parked: list[Any] = []
        self._upgrade_prev: str | None = None
        self.counters = {
            "received": 0,
            "steered": 0,
            "refused": 0,
            "parked": 0,
            "dead_drops": 0,
            "abandoned": 0,
        }
        self.install(version)
        node.set_packet_handler(self._on_frame)

    @property
    def name(self) -> str:
        """The hosting node's name — the fleet's member key."""
        return self.node.name

    # -- datapath lifecycle -------------------------------------------------------

    def install(self, version: str) -> Any:
        """Swap to *version*: build the replacement, then drain and
        retire the incumbent.  Build-before-teardown means a factory
        failure (a broken new version) propagates with the current
        datapath still running."""
        if not self.alive:
            raise FleetError(f"capsule {self.name} is dead")
        replacement = self.build(version)
        if self.datapath is not None:
            self.datapath.shutdown(drain=True)
            self.retired.append(self.datapath)
        self.datapath = replacement
        self.version = version
        return replacement

    def pump(self, **kwargs: Any) -> int:
        """Drain this capsule's datapath (see
        :meth:`~repro.osbase.sharding.ShardedDatapath.pump`)."""
        if not self.alive:
            return 0
        return self.datapath.pump(**kwargs)

    def kill(self) -> int:
        """Node failure: stop accepting, release every parked and
        backlogged frame (pooled ingest buffers return to their slices,
        so the acquired == released audit still balances), and stop the
        workers.  Returns frames abandoned — honest drops; the fleet
        re-homes the capsule's hash arc for *future* frames."""
        if not self.alive:
            return 0
        self.alive = False
        self._quiesced = False
        abandoned = 0
        for frame in self._parked:
            release_dropped(frame)
            abandoned += 1
        self._parked = []
        abandoned += self.datapath.abandon(release_dropped)
        self.counters["abandoned"] += abandoned
        return abandoned

    # -- ingress ------------------------------------------------------------------

    def _on_frame(self, frame: Any, port: str) -> None:
        if not self.alive:
            self.counters["dead_drops"] += 1
            release_dropped(frame)
            return
        if self._quiesced:
            self._parked.append(frame)
            self.counters["parked"] += 1
            return
        self._steer(frame)

    def _steer(self, frame: Any) -> None:
        self.counters["received"] += 1
        if self.datapath.steer(frame) is None:
            self.counters["refused"] += 1
            release_dropped(frame)
        else:
            self.counters["steered"] += 1

    # -- staged upgrade -----------------------------------------------------------

    def _unquiesce(self) -> None:
        self._quiesced = False
        parked, self._parked = self._parked, []
        for frame in parked:
            self._steer(frame)

    def upgrade_action_set(self) -> dict[str, Callable]:
        """Quiesce / apply / resume / rollback callables for a
        ``capsule-upgrade`` two-phase round (see
        :func:`~repro.coordination.reconfig.register_capsule_upgrade`).

        Quiesce parks ingress at the node boundary and drains the
        running datapath to empty; apply installs the round's
        ``{"version": ...}``; resume re-steers the parked frames in
        arrival order into whichever datapath survived; rollback
        re-installs the pre-round version.  A quiesce that cannot drain
        refuses — and undoes its own parking first, because the protocol
        never rolls back a participant whose quiesce said no.
        """

        def quiesce(params: dict) -> bool:
            version = params.get("version")
            if not self.alive or self._quiesced:
                return False
            if not isinstance(version, str) or not version:
                return False
            self._quiesced = True
            self._upgrade_prev = self.version
            self.datapath.pump()
            if self.datapath.total_backlog() > 0:
                self._unquiesce()
                return False
            return True

        def apply(params: dict) -> None:
            self.install(params["version"])

        def resume(params: dict) -> None:
            self._unquiesce()

        def rollback(params: dict) -> None:
            if self._upgrade_prev is not None and self.version != self._upgrade_prev:
                self.install(self._upgrade_prev)

        return {
            "quiesce": quiesce,
            "apply": apply,
            "resume": resume,
            "rollback": rollback,
        }

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict:
        """Node-level counters plus the live datapath's own stats."""
        return {
            "capsule": self.name,
            "version": self.version,
            "alive": self.alive,
            **self.counters,
            "datapath": self.datapath.stats() if self.alive else None,
        }


class CapsuleFleet:
    """The fleet: an edge steering tier over capsule nodes.

    :meth:`ingest` is the edge datapath — flow hash → ring → capsule →
    real link.  :meth:`open_flow` / :meth:`close_flow` are the admission
    path.  :meth:`kill` is node-failure failover: the dead member's hash
    arc moves to its ring successors (every surviving capsule's arc is
    untouched, so each flow's home moves at most once), its edge
    reservations are torn down immediately and its admitted flows are
    re-admitted toward their new homes.
    """

    def __init__(
        self,
        topology: Topology,
        capsules: dict[str, CapsuleNode],
        *,
        edge: str = "edge",
        replicas: int = 96,
        admission: Any = None,
        placement: Any = None,
        enforce_admission: bool = False,
    ) -> None:
        if not capsules:
            raise FleetError("a fleet needs at least one capsule")
        self.topology = topology
        self.engine = topology.engine
        self.edge = topology.node(edge)
        self.capsules = dict(capsules)
        #: Killed members, kept for post-mortem stats and pool audits.
        self.dead: dict[str, CapsuleNode] = {}
        self.ring = HashRing(list(self.capsules), replicas=replicas)
        self.admission = admission
        self.placement = placement
        self.enforce_admission = enforce_admission
        self.kills: list[dict] = []
        self.counters = {
            "ingested": 0,
            "forwarded": 0,
            "malformed": 0,
            "link_refused": 0,
            "unadmitted": 0,
        }
        self.edge.set_packet_handler(lambda frame, port: self.ingest(frame))

    # -- two-level steering -------------------------------------------------------

    def home_of(self, frame: Any) -> tuple[str, int]:
        """Where *frame*'s flow lives: ``(capsule name, shard index)``.
        Pure — both levels hash without side effects."""
        flow = flow_hash_of(frame)
        capsule = self.ring.lookup(flow)
        return capsule, self.capsules[capsule].datapath.steering.shard_of(frame)

    def ingest(self, frame: Any) -> bool:
        """Edge ingress: materialise the frame onto the wire, hash,
        (optionally) check admission, forward over the real link toward
        the flow's home capsule.  Returns True when the link accepted
        the frame.

        Raw bytes and materialised ``Packet`` objects become a
        :class:`~repro.netsim.wire.WirePacket` here (links model
        serialisation delay from ``size_bytes``); a ``WirePacket``
        passes through zero-copy.
        """
        try:
            frame = WirePacket.ingest(frame)
            flow = flow_hash_of(frame)
        except PacketError:
            self.counters["malformed"] += 1
            release_dropped(frame)
            return False
        self.counters["ingested"] += 1
        if (
            self.enforce_admission
            and self.admission is not None
            and not self.admission.is_admitted(flow)
        ):
            self.counters["unadmitted"] += 1
            release_dropped(frame)
            return False
        capsule = self.ring.lookup(flow)
        if self.edge.send_to_neighbor(capsule, frame):
            self.counters["forwarded"] += 1
            return True
        self.counters["link_refused"] += 1
        return False

    # -- admission ----------------------------------------------------------------

    def open_flow(self, frame: Any, rate: float) -> str:
        """Reserve capacity for *frame*'s flow toward its home capsule
        before any of its frames are steered.  Returns the admission
        verdict (``admitted`` / ``queued`` / ``rejected``)."""
        if self.admission is None:
            raise FleetError("fleet has no admission controller")
        flow = flow_hash_of(frame)
        return self.admission.admit(flow, self.ring.lookup(flow), rate)

    def close_flow(self, frame: Any) -> bool:
        """The flow finished: release its reservation (queued flows get
        their retry)."""
        if self.admission is None:
            raise FleetError("fleet has no admission controller")
        return self.admission.complete(flow_hash_of(frame))

    # -- drive --------------------------------------------------------------------

    def pump(self, *, max_rounds: int = 256) -> int:
        """Run the whole fleet to quiescence: deliver in-flight frames
        (the netsim engine — links, signaling retries), then drain every
        capsule's backlog through its own workers, until neither side
        has work.  Returns total datapath steps."""
        steps = 0
        for _ in range(max_rounds):
            moved = self.engine.run()
            for capsule in self.capsules.values():
                if capsule.alive and capsule.datapath.total_backlog() > 0:
                    steps += capsule.pump()
                    moved += 1
            if moved == 0:
                break
        return steps

    # -- failover -----------------------------------------------------------------

    def kill(self, name: str) -> dict:
        """Node failure for capsule *name*.

        Order matters: the ring arc is reassigned first (future frames
        re-home, each flow moving at most once — removal only deletes
        the dead member's points), then the node abandons its backlog
        (pooled buffers released, audit balanced), then the edge tears
        down the dead capsule's reservations — no TTL wait — shrinks the
        admission pool to the survivors' capacity curve, and re-admits
        the orphaned flows toward their new homes.
        """
        capsule = self.capsules.get(name)
        if capsule is None:
            raise FleetError(f"unknown or already dead capsule {name!r}")
        if len(self.capsules) == 1:
            raise FleetError("cannot kill the last capsule")
        del self.capsules[name]
        self.dead[name] = capsule
        self.ring.remove(name)
        abandoned = capsule.kill()
        new_aggregate = None
        if self.placement is not None and name in self.placement.members():
            self.placement.remove(name)
            new_aggregate = self.placement.aggregate_pps()
        released = 0
        readmitted: list[tuple[Any, str]] = []
        if self.admission is not None:
            orphans = self.admission.on_capsule_killed(
                name, new_aggregate=new_aggregate
            )
            released = len(orphans)
            for flow, rate in orphans:
                verdict = self.admission.admit(flow, self.ring.lookup(flow), rate)
                readmitted.append((flow, verdict))
        record = {
            "capsule": name,
            "abandoned": abandoned,
            "reservations_released": released,
            "readmitted": readmitted,
        }
        self.kills.append(record)
        return record

    # -- introspection ------------------------------------------------------------

    def members(self) -> list[str]:
        """Live capsule names, insertion order."""
        return list(self.capsules)

    def version_of(self, name: str) -> str:
        """The pipeline version capsule *name* is running — the
        :class:`~repro.coordination.deployment.StagedRollout` probe."""
        try:
            return self.capsules[name].version
        except KeyError:
            raise FleetError(f"unknown or dead capsule {name!r}") from None

    def versions(self) -> dict[str, str]:
        """Live member → running pipeline version."""
        return {name: capsule.version for name, capsule in self.capsules.items()}

    def stats(self) -> dict:
        """Edge counters, ring shares, per-capsule stats, kill records."""
        return {
            "edge": dict(self.counters),
            "members": self.members(),
            "arc_shares": self.ring.arc_shares(),
            "capsules": [capsule.stats() for capsule in self.capsules.values()],
            "dead": sorted(self.dead),
            "kills": list(self.kills),
        }


def build_capsule_fleet(
    capsules: int,
    *,
    routes: dict[str, str],
    shards: int = 2,
    version: str = "v1",
    replicas: int = 96,
    fused: bool = True,
    compiled: Any = False,
    validate_checksums: bool = True,
    tx_handler: Callable[[str, int], Any] | None = None,
    datapath_factory: Callable[[str, str], Any] | None = None,
    enforce_admission: bool = False,
    queue_limit: int = 8,
    soft_state_ttl: float | None = None,
    rollout_deadline: float | None = 1.0,
    engine: Any = None,
    batch: int = 32,
    pool_buffers: int = 256,
    rx_ring_size: int | None = None,
    buckets: int | None = None,
    supervise: bool = True,
    **link_kwargs: Any,
) -> CapsuleFleet:
    """Assemble a complete fleet over a fresh star topology.

    Per capsule node: a :class:`CapsuleNode` hosting its own sharded
    forwarding datapath (independent thread manager and virtual clock —
    capsules are separate machines), an RSVP agent whose bandwidth pool
    is sized from that capsule's placement capacity curve, and a
    reconfiguration participant with the ``capsule-upgrade`` action set
    registered.  At the edge: signaling, an RSVP agent whose pool is the
    fleet's **aggregate** capacity
    (:meth:`~repro.ixp.placement.FleetPlacement.aggregate_pps`), the
    :class:`~repro.coordination.rsvp.EdgeAdmission` controller, the
    reconfiguration coordinator and a ready-to-run
    :class:`~repro.coordination.deployment.StagedRollout` (as
    ``fleet.rollout``).

    *tx_handler* is ``(capsule_name, shard_index) -> frame consumer`` —
    the fleet-aware generalisation of the single-box factory.
    *datapath_factory* (``(capsule_name, version) -> datapath``)
    overrides the default assembly entirely, which is how a bench stages
    a deliberately broken ``v2``.  *link_kwargs* (loss, latency,
    bandwidth, backlog) apply to every edge→capsule link.
    """
    from repro.coordination.deployment import StagedRollout
    from repro.coordination.reconfig import (
        ReconfigCoordinator,
        ReconfigParticipant,
        register_capsule_upgrade,
    )
    from repro.coordination.rsvp import EdgeAdmission, RsvpAgent
    from repro.coordination.signaling import attach_agents
    from repro.ixp.placement import FleetPlacement
    from repro.osbase.clock import VirtualClock
    from repro.osbase.scheduler import RoundRobinScheduler, ThreadManagerCF
    from repro.router.pipeline import build_sharded_forwarding_datapath

    if capsules < 1:
        raise FleetError(f"capsules must be >= 1, got {capsules}")
    names = [f"cap{i}" for i in range(capsules)]
    topology = Topology.fleet(capsules, engine=engine, **link_kwargs)
    agents = attach_agents(topology)

    placement = FleetPlacement()
    for name in names:
        placement.add(name, shards=shards)

    rsvp = {
        "edge": RsvpAgent(
            agents["edge"],
            bandwidth_capacity=placement.aggregate_pps(),
            soft_state_ttl=soft_state_ttl,
        )
    }
    for name in names:
        rsvp[name] = RsvpAgent(
            agents[name],
            bandwidth_capacity=placement.capacity_of(name),
            soft_state_ttl=soft_state_ttl,
        )
    admission = EdgeAdmission(rsvp["edge"], queue_limit=queue_limit)

    if datapath_factory is None:

        def datapath_factory(name: str, dp_version: str) -> Any:
            threads = ThreadManagerCF(
                VirtualClock(), scheduler=RoundRobinScheduler()
            )
            return build_sharded_forwarding_datapath(
                routes=routes,
                shards=shards,
                threads=threads,
                batch=batch,
                fused=fused,
                compiled=compiled,
                validate_checksums=validate_checksums,
                tx_handler=(
                    None
                    if tx_handler is None
                    else (lambda index, _name=name: tx_handler(_name, index))
                ),
                supervise=supervise,
                pool_buffers=pool_buffers,
                rx_ring_size=rx_ring_size,
                buckets=buckets,
                name=f"{name}-dp-{dp_version}",
            )

    nodes = {
        name: CapsuleNode(
            topology.node(name),
            build=(lambda dp_version, _name=name: datapath_factory(_name, dp_version)),
            version=version,
        )
        for name in names
    }

    coordinator = ReconfigCoordinator(agents["edge"])
    participants: dict[str, Any] = {}
    for name in names:
        participant = ReconfigParticipant(agents[name])
        register_capsule_upgrade(participant, nodes[name])
        participants[name] = participant

    fleet = CapsuleFleet(
        topology,
        nodes,
        replicas=replicas,
        admission=admission,
        placement=placement,
        enforce_admission=enforce_admission,
    )
    fleet.signaling = agents
    fleet.rsvp = rsvp
    fleet.coordinator = coordinator
    fleet.participants = participants
    fleet.rollout = StagedRollout(
        coordinator,
        # Live membership: a rollout issued after a node kill targets
        # the survivors, not the corpse.
        capsules=fleet.members,
        version_of=fleet.version_of,
        deadline=rollout_deadline,
        # Default canary probe: the capsule survived the swap and its
        # new datapath's workers can still take work.  ``run(
        # health_check=...)`` overrides it per rollout.
        health_check=lambda name: (
            nodes[name].alive
            and not (stats := nodes[name].datapath.stats())["dead_workers"]
            and not stats["stopping"]
        ),
    )
    return fleet
