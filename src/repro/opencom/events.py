"""A small synchronous event bus used for architecture-change notification.

The architecture meta-model publishes events (component instantiated or
destroyed, binding made or broken, interface exposed or withdrawn) so that
component frameworks, controllers and management tools can react to
structural change — the "causally connected self-representation" that makes
the middleware reflective rather than merely configurable.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

EventHandler = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """One published event.

    ``topic`` is a dotted name (e.g. ``"architecture.bind"``); ``payload``
    is topic-specific.
    """

    topic: str
    payload: dict[str, Any] = field(default_factory=dict)


class EventBus:
    """Synchronous publish/subscribe with prefix topic matching.

    Subscribing to ``"architecture"`` receives every topic beginning with
    ``"architecture."`` as well as the exact topic ``"architecture"``.
    Handlers run synchronously in subscription order; a failing handler does
    not prevent delivery to later handlers, but failures are recorded in
    :attr:`handler_errors` so tests can assert on them (errors never pass
    silently).
    """

    def __init__(self) -> None:
        self._subscribers: dict[str, list[EventHandler]] = {}
        #: (topic, handler, exception) triples for post-mortem inspection.
        self.handler_errors: list[tuple[str, EventHandler, Exception]] = []

    def subscribe(self, topic_prefix: str, handler: EventHandler) -> Callable[[], None]:
        """Register *handler* for a topic prefix; returns an unsubscribe
        callable."""
        handlers = self._subscribers.setdefault(topic_prefix, [])
        handlers.append(handler)

        def unsubscribe() -> None:
            try:
                handlers.remove(handler)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, topic: str, **payload: Any) -> Event:
        """Publish an event, delivering synchronously to all matching
        subscribers."""
        event = Event(topic, payload)
        for prefix, handlers in list(self._subscribers.items()):
            if topic == prefix or topic.startswith(prefix + "."):
                for handler in list(handlers):
                    try:
                        handler(event)
                    except Exception as exc:  # noqa: BLE001 - isolation boundary
                        self.handler_errors.append((topic, handler, exc))
        return event

    def subscriber_count(self, topic_prefix: str) -> int:
        """Number of handlers registered under one exact prefix."""
        return len(self._subscribers.get(topic_prefix, []))
