"""The architecture meta-model: structural reflection over a capsule.

This is OpenCOM's causally-connected self-representation of "what is
plugged into what".  It maintains a component/binding graph that is updated
on every instantiate/destroy/bind/unbind, and offers:

- graph queries (neighbours, paths, reachability, topology export);
- consistency analysis — the paper's claim that a node's software can be
  analysed "as a single composite ... e.g. for consistency or integrity";
- safe dynamic reconfiguration: :meth:`replace_component` performs the
  quiesce → unbind → swap → rebind → resume sequence that underpins the
  24x7-operation story, preserving the old component's connections and
  (optionally) migrating its state.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.opencom.errors import QuiesceTimeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opencom.binding import Binding
    from repro.opencom.capsule import Capsule
    from repro.opencom.component import Component


@dataclass
class GraphView:
    """Immutable snapshot of a capsule's architecture.

    ``nodes`` maps component name to a description dict; ``edges`` is a list
    of binding description dicts (see ``Binding.describe``).
    """

    capsule: str
    nodes: dict[str, dict[str, Any]]
    edges: list[dict[str, Any]] = field(default_factory=list)

    def successors(self, component_name: str) -> list[str]:
        """Component names reached by outgoing bindings (via receptacles)."""
        return sorted(
            {e["target"] for e in self.edges if e["source"] == component_name}
        )

    def predecessors(self, component_name: str) -> list[str]:
        """Component names with bindings into *component_name*."""
        return sorted(
            {e["source"] for e in self.edges if e["target"] == component_name}
        )

    def reachable_from(self, component_name: str) -> set[str]:
        """All components reachable along binding direction."""
        seen: set[str] = set()
        frontier = [component_name]
        while frontier:
            current = frontier.pop()
            for nxt in self.successors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def find_path(self, source: str, target: str) -> list[str] | None:
        """Shortest component path along bindings, or None."""
        if source == target:
            return [source]
        parents: dict[str, str] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            nxt_frontier: list[str] = []
            for current in frontier:
                for nxt in self.successors(current):
                    if nxt in seen:
                        continue
                    parents[nxt] = current
                    if nxt == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    seen.add(nxt)
                    nxt_frontier.append(nxt)
            frontier = nxt_frontier
        return None

    def cycles(self) -> list[list[str]]:
        """Elementary cycles in the binding graph (DFS back-edge walk).

        Packet-processing graphs are normally acyclic; cycles are reported
        by the consistency checker as warnings.
        """
        colour: dict[str, int] = {n: 0 for n in self.nodes}
        stack: list[str] = []
        found: list[list[str]] = []

        def visit(node: str) -> None:
            colour[node] = 1
            stack.append(node)
            for succ in self.successors(node):
                if colour.get(succ, 0) == 0:
                    visit(succ)
                elif colour.get(succ) == 1:
                    start = stack.index(succ)
                    found.append(stack[start:] + [succ])
            stack.pop()
            colour[node] = 2

        for node in self.nodes:
            if colour[node] == 0:
                visit(node)
        return found


class ArchitectureMetaModel:
    """Live structural reflection for one capsule."""

    def __init__(self, capsule: "Capsule") -> None:
        self.capsule = capsule
        #: Monotonic structure version; bumped on every structural change.
        self.version = 0

    # -- change notification (called by capsule/component) ---------------------

    def component_added(self, component: "Component") -> None:
        self.version += 1

    def component_removed(self, component: "Component") -> None:
        self.version += 1

    def component_changed(self, component: "Component") -> None:
        self.version += 1

    def binding_added(self, binding: "Binding") -> None:
        self.version += 1

    def binding_removed(self, binding: "Binding") -> None:
        self.version += 1

    # -- inspection --------------------------------------------------------------

    def snapshot(self) -> GraphView:
        """Export the current architecture as an immutable graph view."""
        nodes = {
            name: {
                "type": type(comp).__name__,
                "state": comp.state,
                "interfaces": comp.enum_interfaces(),
                "receptacles": comp.enum_receptacles(),
            }
            for name, comp in self.capsule.components().items()
        }
        edges = [b.describe() for b in self.capsule.bindings()]
        return GraphView(self.capsule.name, nodes, edges)

    def iter_components(self) -> Iterator["Component"]:
        """Iterate hosted components."""
        return iter(self.capsule)

    def check_consistency(self) -> list[str]:
        """Analyse the capsule's software as a single composite.

        Returns a list of problems (empty means consistent):

        - unsatisfied receptacle arity on running components;
        - bindings whose endpoints are not hosted (dangling);
        - components in the ``dead`` state still registered.
        Cycles are reported as warnings prefixed ``"warning:"``.
        """
        problems: list[str] = []
        components = self.capsule.components()
        for name, comp in components.items():
            if comp.state == "dead":
                problems.append(f"component {name} is dead but still registered")
            for rname, receptacle in comp.receptacles().items():
                if comp.state == "running" and not receptacle.satisfied():
                    problems.append(
                        f"receptacle {name}.{rname} unsatisfied: "
                        f"{len(receptacle.connections())} < "
                        f"{receptacle.min_connections}"
                    )
        hosted = set(components.values())
        for binding in self.capsule.bindings():
            if binding.source_component not in hosted:
                problems.append(
                    f"binding #{binding.binding_id} source "
                    f"{binding.source_component.name} not hosted"
                )
            if binding.kind == "local" and binding.target_component not in hosted:
                problems.append(
                    f"binding #{binding.binding_id} target "
                    f"{binding.target_component.name} not hosted"
                )
        for cycle in self.snapshot().cycles():
            problems.append("warning: binding cycle " + " -> ".join(cycle))
        return problems

    # -- reconfiguration -----------------------------------------------------------

    def replace_component(
        self,
        old: "Component | str",
        factory: Callable[[], "Component"],
        *,
        name: str | None = None,
        transfer_state: Callable[["Component", "Component"], None] | None = None,
        principal: str = "system",
    ) -> "Component":
        """Atomically swap *old* for a new component, preserving topology.

        The quiesce → swap → resume sequence:

        1. record every binding touching *old* (both directions);
        2. shut *old* down (quiesce: a stopped component no longer accepts
           lifecycle-managed work);
        3. unbind all recorded bindings;
        4. instantiate the replacement, run ``transfer_state(old, new)``;
        5. rebind the recorded topology onto the replacement, matching
           interface and receptacle *names* (the replacement must expose a
           compatible shape, otherwise the swap is rolled back);
        6. start the replacement and destroy *old*.

        Returns the replacement component.  On failure the original
        component and all its bindings are restored before the error is
        re-raised, so a failed swap never leaves the capsule inconsistent.
        """
        capsule = self.capsule
        old_component = capsule.component(old) if isinstance(old, str) else old
        records = [self._record_binding(b) for b in capsule.bindings_of(old_component)]
        was_running = old_component.state == "running"
        if was_running:
            old_component.shutdown()
        for record in records:
            capsule.unbind(record["binding"], principal=principal)

        new_name = name if name is not None else old_component.name + "'"
        try:
            replacement = capsule.instantiate(factory, new_name)
            if transfer_state is not None:
                transfer_state(old_component, replacement)
            self._rebind_records(records, old_component, replacement, principal)
        except Exception:
            # Roll back: re-establish the original topology and state.
            if new_name in capsule:
                maybe = capsule.component(new_name)
                for binding in capsule.bindings_of(maybe):
                    capsule.unbind(binding, principal=principal)
                capsule.destroy(maybe)
            self._rebind_records(records, old_component, old_component, principal)
            if was_running:
                old_component.startup()
            raise
        if was_running:
            replacement.startup()
        capsule.destroy(old_component)
        return replacement

    def _record_binding(self, binding: "Binding") -> dict[str, Any]:
        return {
            "binding": binding,
            "source": binding.source_component,
            "receptacle_name": binding.receptacle.name,
            "connection_name": binding.connection_name,
            "target_component": binding.target_component,
            "target_interface": binding.target.name,
            "principal": "system",
        }

    def _rebind_records(
        self,
        records: list[dict[str, Any]],
        old: "Component",
        substitute: "Component",
        principal: str,
    ) -> None:
        for record in records:
            source = record["source"]
            target_component = record["target_component"]
            if source is old:
                source = substitute
            if target_component is old:
                target_component = substitute
            receptacle = source.receptacle(record["receptacle_name"])
            target = target_component.interface(record["target_interface"])
            self.capsule.bind(
                receptacle,
                target,
                connection_name=record["connection_name"],
                principal=principal,
            )

    def quiesce_region(
        self,
        components: list["Component"],
        *,
        drain: Callable[[], bool] | None = None,
        max_rounds: int = 1000,
    ) -> None:
        """Quiesce a region prior to reconfiguration.

        Components in the region are shut down; when a ``drain`` predicate
        is given it is polled (up to *max_rounds* times) until it reports
        the region has no in-flight work.  Raises
        :class:`~repro.opencom.errors.QuiesceTimeout` when draining fails.
        """
        if drain is not None:
            for _ in range(max_rounds):
                if drain():
                    break
            else:
                raise QuiesceTimeout(
                    f"region of {len(components)} component(s) failed to drain "
                    f"after {max_rounds} rounds"
                )
        for component in components:
            if component.state == "running":
                component.shutdown()

    def resume_region(self, components: list["Component"]) -> None:
        """Restart a previously quiesced region."""
        for component in components:
            if component.state == "stopped":
                component.startup()

    def export_dot(self) -> str:
        """Export the architecture as Graphviz DOT (diagnostics/docs)."""
        view = self.snapshot()
        lines = [f'digraph "{view.capsule}" {{']
        for name, node in sorted(view.nodes.items()):
            lines.append(f'  "{name}" [label="{name}\\n({node["type"]})"];')
        for edge in view.edges:
            label = f'{edge["receptacle"]}->{edge["interface"]}'
            lines.append(
                f'  "{edge["source"]}" -> "{edge["target"]}" [label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)
