"""Interface meta-model: language-independent introspection.

The Windows OpenCOM implementation built introspection on type libraries;
here the "type library" is the interface registry of
:mod:`repro.opencom.interfaces`.  This module renders interface types and
whole components into plain-dict descriptions suitable for management
tools, remote inspection (they serialise cleanly), and documentation.
"""

from __future__ import annotations

from typing import Any

from repro.opencom.component import Component
from repro.opencom.interfaces import (
    Interface,
    lookup_interface,
    methods_of,
    registered_interfaces,
)


def describe_interface(itype: type[Interface] | str) -> dict[str, Any]:
    """Describe an interface type (by class or registry name)."""
    if isinstance(itype, str):
        itype = lookup_interface(itype)
    return {
        "name": itype.interface_name(),
        "version": itype.VERSION,
        "doc": (itype.__doc__ or "").strip(),
        "methods": [
            {
                "name": m.name,
                "parameters": list(m.parameters),
                "doc": m.doc,
            }
            for m in methods_of(itype)
        ],
    }


def describe_component(component: Component) -> dict[str, Any]:
    """Full introspective description of a component instance."""
    return {
        "name": component.name,
        "type": type(component).__name__,
        "state": component.state,
        "capsule": component.capsule.name if component.capsule else None,
        "interfaces": component.enum_interfaces(),
        "receptacles": component.enum_receptacles(),
        "doc": (type(component).__doc__ or "").strip(),
    }


def type_library() -> list[dict[str, Any]]:
    """Describe every registered interface type (the full type library)."""
    return [
        describe_interface(itype)
        for _, itype in sorted(registered_interfaces().items())
    ]


def interfaces_compatible(
    provided: type[Interface], required: type[Interface]
) -> bool:
    """True when an instance of *provided* can satisfy *required*.

    Compatibility is subtype-based (identity or subclassing), matching the
    binding rule enforced by receptacles.
    """
    return provided is required or issubclass(provided, required)
