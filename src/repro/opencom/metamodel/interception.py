"""Interception meta-model helpers.

The raw interception mechanism lives on the vtable
(:mod:`repro.opencom.vtable`); this module adds the management layer: a
named :class:`Interceptor` object that can be applied to whole interfaces,
removed in one step, and introspected — plus stock interceptors (call
counting, tracing, admission control) used across the test suite and
benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.opencom.component import InterfaceRef
from repro.opencom.vtable import CallContext


@dataclass
class Interceptor:
    """A named bundle of pre/post/around behaviour for whole interfaces.

    Any subset of the three hooks may be provided.  Applying the bundle to
    an interface instance installs it on every method slot; ``detach``
    removes every installation made through this object.
    """

    name: str
    pre: Callable[[CallContext], None] | None = None
    post: Callable[[CallContext], None] | None = None
    around: Callable[[Callable[..., Any], CallContext], Any] | None = None
    _installed: list[tuple[InterfaceRef, str]] = field(default_factory=list, repr=False)

    def attach(self, iref: InterfaceRef, methods: list[str] | None = None) -> None:
        """Install on all (or the named) methods of an interface instance."""
        vtable = iref.vtable
        targets = list(methods) if methods is not None else list(vtable.iter_methods())
        for method in targets:
            if self.pre is not None:
                vtable.add_pre(method, self.name, self.pre)
            if self.post is not None:
                vtable.add_post(method, self.name, self.post)
            if self.around is not None:
                vtable.add_around(method, self.name, self.around)
            self._installed.append((iref, method))

    def detach(self) -> None:
        """Remove every installation made by this interceptor."""
        for iref, method in self._installed:
            iref.vtable.remove_interceptor(method, self.name)
        self._installed.clear()

    @property
    def installed_count(self) -> int:
        """Number of (interface, method) slots currently intercepted."""
        return len(self._installed)


def intercept_interface(
    iref: InterfaceRef,
    name: str,
    *,
    pre: Callable[[CallContext], None] | None = None,
    post: Callable[[CallContext], None] | None = None,
    around: Callable[[Callable[..., Any], CallContext], Any] | None = None,
) -> Interceptor:
    """Convenience: build an :class:`Interceptor` and attach it."""
    interceptor = Interceptor(name, pre=pre, post=post, around=around)
    interceptor.attach(iref)
    return interceptor


class CallCounter:
    """Stock interceptor: counts calls per (interface, method).

    Used by the Router CF for per-component packet counters and by the
    interception benchmarks.
    """

    def __init__(self, name: str = "call-counter") -> None:
        self.name = name
        self.counts: dict[tuple[str, str], int] = {}

    def __call__(self, ctx: CallContext) -> None:
        key = (ctx.interface_name, ctx.method_name)
        self.counts[key] = self.counts.get(key, 0) + 1

    def total(self) -> int:
        """Total calls observed across all slots."""
        return sum(self.counts.values())

    def attach_to(self, iref: InterfaceRef) -> Interceptor:
        """Attach as a pre-interceptor to every method of *iref*."""
        interceptor = Interceptor(self.name, pre=self)
        interceptor.attach(iref)
        return interceptor


class CallTrace:
    """Stock interceptor: records (interface, method, args) tuples."""

    def __init__(self, name: str = "call-trace", *, limit: int = 10000) -> None:
        self.name = name
        self.limit = limit
        self.records: list[tuple[str, str, tuple]] = []
        self.dropped = 0

    def __call__(self, ctx: CallContext) -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append((ctx.interface_name, ctx.method_name, ctx.args))

    def attach_to(self, iref: InterfaceRef) -> Interceptor:
        """Attach as a pre-interceptor to every method of *iref*."""
        interceptor = Interceptor(self.name, pre=self)
        interceptor.attach(iref)
        return interceptor


class AdmissionGate:
    """Stock around-interceptor: drops calls while closed.

    Used to quiesce a component's interface during reconfiguration: calls
    made while the gate is closed return ``default`` without reaching the
    implementation, and are counted in :attr:`rejected`.
    """

    def __init__(self, name: str = "admission-gate", *, default: Any = None) -> None:
        self.name = name
        self.open = True
        self.default = default
        self.rejected = 0

    def __call__(self, proceed: Callable[..., Any], ctx: CallContext) -> Any:
        if not self.open:
            self.rejected += 1
            return self.default
        return proceed()

    def attach_to(self, iref: InterfaceRef) -> Interceptor:
        """Attach as an around-interceptor to every method of *iref*."""
        interceptor = Interceptor(self.name, around=self)
        interceptor.attach(iref)
        return interceptor
