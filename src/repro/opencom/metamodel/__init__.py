"""OpenCOM meta-models: architecture (structural reflection), interface
(introspection), interception (vtable-level behavioural reflection), and
resources (task/resource management)."""

from repro.opencom.metamodel.architecture import ArchitectureMetaModel, GraphView
from repro.opencom.metamodel.interception import Interceptor, intercept_interface
from repro.opencom.metamodel.interface_meta import describe_component, describe_interface
from repro.opencom.metamodel.resources import (
    ResourceMetaModel,
    ResourcePool,
    Task,
)

__all__ = [
    "ArchitectureMetaModel",
    "GraphView",
    "Interceptor",
    "intercept_interface",
    "describe_component",
    "describe_interface",
    "ResourceMetaModel",
    "ResourcePool",
    "Task",
]
