"""The resources meta-model: tasks, pools, and fine-grained accounting.

The paper (after [Blair,99]) associates each capsule with a privileged CF
that controls "the resourcing of dynamically-delineable units of work
called 'tasks'".  Tasks are orthogonal to the component architecture: one
task may span many components and one component may serve many tasks.
'Resources' cover system-level pools (threads, memory, bandwidth) *and*
abstract, application-defined units of allocation.

This module provides the bookkeeping half of the meta-model; the stratum-1
thread-management CF (:mod:`repro.osbase.scheduler`) consumes it to drive
pluggable scheduling, and the Router CF uses it to map tasks onto
constituents (experiment C10).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.opencom.errors import ResourceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opencom.capsule import Capsule
    from repro.opencom.component import Component

_TASK_IDS = itertools.count(1)


@dataclass
class ResourcePool:
    """A bounded pool of one resource kind.

    ``kind`` is free-form: ``"threads"``, ``"memory"``, ``"bandwidth"`` or
    any abstract application-defined unit (e.g. ``"flow-slots"``).
    """

    name: str
    kind: str
    capacity: float
    allocations: dict[str, float] = field(default_factory=dict)

    @property
    def allocated(self) -> float:
        """Total units currently allocated."""
        return sum(self.allocations.values())

    @property
    def available(self) -> float:
        """Units still allocatable."""
        return self.capacity - self.allocated

    @property
    def utilisation(self) -> float:
        """Allocated fraction in [0, 1] (0 for zero-capacity pools)."""
        if self.capacity <= 0:
            return 0.0
        return self.allocated / self.capacity

    def _allocate(self, task_name: str, amount: float) -> None:
        if amount <= 0:
            raise ResourceError(f"allocation amount must be positive, got {amount}")
        if amount > self.available + 1e-12:
            raise ResourceError(
                f"pool {self.name!r} over-allocated: requested {amount}, "
                f"available {self.available} of {self.capacity}"
            )
        self.allocations[task_name] = self.allocations.get(task_name, 0.0) + amount

    def _release(self, task_name: str, amount: float | None) -> float:
        held = self.allocations.get(task_name, 0.0)
        if held == 0.0:
            raise ResourceError(
                f"task {task_name!r} holds nothing in pool {self.name!r}"
            )
        to_release = held if amount is None else amount
        if to_release > held + 1e-12:
            raise ResourceError(
                f"task {task_name!r} cannot release {to_release} from pool "
                f"{self.name!r}: holds only {held}"
            )
        remaining = held - to_release
        if remaining <= 1e-12:
            del self.allocations[task_name]
        else:
            self.allocations[task_name] = remaining
        return to_release


class Task:
    """A dynamically-delineable unit of work with resource allocations.

    Tasks carry a priority (consumed by pluggable schedulers) and an
    attachment set of components they currently span.
    """

    def __init__(self, name: str, *, priority: int = 0) -> None:
        self.task_id: int = next(_TASK_IDS)
        self.name = name
        self.priority = priority
        self.attached_components: set[str] = set()
        #: pool name -> amount currently held.
        self.holdings: dict[str, float] = {}
        #: Accumulated "work units" executed on behalf of this task;
        #: maintained by the stratum-1 scheduler for accounting.
        self.work_done: float = 0.0
        self.alive = True

    def attach(self, component: "Component") -> None:
        """Record that this task's work flows through *component*."""
        self.attached_components.add(component.name)

    def detach(self, component: "Component") -> None:
        """Remove a component attachment."""
        self.attached_components.discard(component.name)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Task {self.name} prio={self.priority} holdings={self.holdings}>"


class ResourceMetaModel:
    """Per-capsule resource accounting and task registry."""

    def __init__(self, capsule: "Capsule | None" = None) -> None:
        self.capsule = capsule
        self._pools: dict[str, ResourcePool] = {}
        self._tasks: dict[str, Task] = {}

    # -- pools ------------------------------------------------------------------

    def create_pool(self, name: str, kind: str, capacity: float) -> ResourcePool:
        """Create a named resource pool."""
        if name in self._pools:
            raise ResourceError(f"pool {name!r} already exists")
        if capacity < 0:
            raise ResourceError("pool capacity must be non-negative")
        pool = ResourcePool(name, kind, capacity)
        self._pools[name] = pool
        return pool

    def pool(self, name: str) -> ResourcePool:
        """Look a pool up by name."""
        try:
            return self._pools[name]
        except KeyError:
            raise ResourceError(f"unknown pool {name!r}") from None

    def pools(self) -> dict[str, ResourcePool]:
        """Snapshot of pools (name -> pool)."""
        return dict(self._pools)

    def resize_pool(self, name: str, new_capacity: float) -> None:
        """Grow or shrink a pool; shrinking below current allocation fails."""
        pool = self.pool(name)
        if new_capacity < pool.allocated:
            raise ResourceError(
                f"cannot shrink pool {name!r} to {new_capacity}: "
                f"{pool.allocated} already allocated"
            )
        pool.capacity = new_capacity

    # -- tasks -------------------------------------------------------------------

    def create_task(self, name: str, *, priority: int = 0) -> Task:
        """Create a named task."""
        if name in self._tasks:
            raise ResourceError(f"task {name!r} already exists")
        task = Task(name, priority=priority)
        self._tasks[name] = task
        return task

    def task(self, name: str) -> Task:
        """Look a task up by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise ResourceError(f"unknown task {name!r}") from None

    def tasks(self) -> dict[str, Task]:
        """Snapshot of tasks (name -> task)."""
        return dict(self._tasks)

    def iter_tasks(self) -> Iterator[Task]:
        """Iterate live tasks in name order."""
        for name in sorted(self._tasks):
            yield self._tasks[name]

    def destroy_task(self, name: str) -> None:
        """Destroy a task, releasing everything it holds."""
        task = self.task(name)
        for pool_name in list(task.holdings):
            self.release(name, pool_name)
        task.alive = False
        del self._tasks[name]

    # -- allocation ---------------------------------------------------------------

    def allocate(self, task_name: str, pool_name: str, amount: float) -> None:
        """Allocate *amount* units of *pool_name* to *task_name*."""
        task = self.task(task_name)
        pool = self.pool(pool_name)
        pool._allocate(task_name, amount)
        task.holdings[pool_name] = task.holdings.get(pool_name, 0.0) + amount

    def release(
        self, task_name: str, pool_name: str, amount: float | None = None
    ) -> None:
        """Release units (all when *amount* is None) back to the pool."""
        task = self.task(task_name)
        pool = self.pool(pool_name)
        released = pool._release(task_name, amount)
        remaining = task.holdings.get(pool_name, 0.0) - released
        if remaining <= 1e-12:
            task.holdings.pop(pool_name, None)
        else:
            task.holdings[pool_name] = remaining

    def transfer(
        self, from_task: str, to_task: str, pool_name: str, amount: float
    ) -> None:
        """Move an allocation between tasks without touching availability."""
        self.release(from_task, pool_name, amount)
        self.allocate(to_task, pool_name, amount)

    # -- accounting ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Accounting snapshot: per-pool utilisation and per-task holdings."""
        return {
            "pools": {
                name: {
                    "kind": p.kind,
                    "capacity": p.capacity,
                    "allocated": p.allocated,
                    "utilisation": round(p.utilisation, 6),
                }
                for name, p in sorted(self._pools.items())
            },
            "tasks": {
                name: {
                    "priority": t.priority,
                    "holdings": dict(t.holdings),
                    "components": sorted(t.attached_components),
                    "work_done": t.work_done,
                }
                for name, t in sorted(self._tasks.items())
            },
        }

    def tasks_on_component(self, component_name: str) -> list[Task]:
        """Tasks whose work currently flows through one component."""
        return [
            t
            for t in self.iter_tasks()
            if component_name in t.attached_components
        ]
