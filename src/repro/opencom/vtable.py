"""Virtual dispatch tables with vtable-level interception and fusion.

OpenCOM dispatches every cross-component call through a per-interface
*vtable*.  The vtable is the reflective hook of the model: interceptors are
spliced into individual slots (the paper: interception "is very efficient as
it is implemented at the vtable level"), and, conversely, when no
interceptors are present a slot can be *fused* -- the partial-evaluation
optimisation of section 5 that reduces a cross-component call to the cost of
a plain function call.

Three dispatch regimes coexist per slot:

``interposed``
    pre/post/around interceptors wrap the implementation; rebuilt as a
    composed closure whenever the interceptor set changes, so steady-state
    calls never walk an interceptor list.
``indirect``
    no interceptors; the slot holds the bound implementation method and the
    call costs one dictionary lookup plus one call (the "vtable" cost).
``fused``
    the caller has been handed the raw bound method; zero indirection.
    Fusing is only permitted while the slot is unintercepted, and adding an
    interceptor revokes outstanding fused references (callers observe this
    through :class:`FusedCall` becoming stale).

Every regime also has a *batch* variant that dispatches whole lists per
crossing — or a single call to the implementation's native
``<method>_batch`` when one exists and the slot is unintercepted.  Batch
dispatch comes in two shapes, selected by the arity of the underlying
interface method:

*push-shaped* (arity 1, ``push``-style)
    :meth:`VTable.invoke_batch`, :meth:`VTable.fuse_batch`,
    :meth:`VTable.watch_batch_slot`.  The batch callable takes a list and
    returns nothing; the native method is ``<method>_batch(items)``.
*pull-shaped* (arity 0, ``pull``-style)
    :meth:`VTable.invoke_pull_batch`, :meth:`VTable.fuse_pull_batch`,
    :meth:`VTable.watch_pull_batch_slot`.  The batch callable takes
    ``max_n`` and returns the list of items produced before the source ran
    dry (a ``None`` from the scalar method ends the batch early); the
    native method is ``<method>_batch(max_n) -> list``.

The safety invariant is identical on both shapes and mirrors the scalar
path: as soon as a slot gains an interceptor, batch dispatch degrades to
one interposed call per item — pushes cross the interceptor one element at
a time, pulls are drawn one interposed call at a time (interceptors
observe every produced item through ``CallContext.result``) — so the
native batch method is never allowed to smuggle items past reflection.
Removing the last interceptor restores native batch dispatch.

This degradation rule is one of the two load-bearing dispatch invariants
of the repo (the other — why ``pull_batch`` is a *discovered* convention
rather than a declared interface method — lives with ``IPacketPull`` in
:mod:`repro.router.interfaces`); both are summarised with the datapath
walkthrough in ``docs/architecture.md``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.opencom.errors import InterfaceError
from repro.opencom.interfaces import Interface, implements, methods_of


@dataclass
class CallContext:
    """Context handed to pre/post interceptors for one dispatched call."""

    interface_name: str
    method_name: str
    args: tuple
    kwargs: dict
    #: Set by post-interceptors' view of the call; ``None`` until the
    #: implementation has returned.
    result: Any = None
    #: Free-form scratch space shared by the interceptors of one call.
    scratch: dict = field(default_factory=dict)


PreInterceptor = Callable[[CallContext], None]
PostInterceptor = Callable[[CallContext], None]
AroundInterceptor = Callable[[Callable[..., Any], CallContext], Any]


@dataclass
class _SlotInterceptors:
    """Interceptor sets for one vtable slot, keyed by registration name."""

    pre: dict[str, PreInterceptor] = field(default_factory=dict)
    post: dict[str, PostInterceptor] = field(default_factory=dict)
    around: dict[str, AroundInterceptor] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.pre or self.post or self.around)

    def count(self) -> int:
        return len(self.pre) + len(self.post) + len(self.around)


class FusedCall:
    """Handle to a fused (direct) slot call.

    Calling the handle is as cheap as calling the implementation method
    directly, except for a single attribute load of ``_target``.  When the
    originating slot gains an interceptor the handle is *revoked*: it keeps
    working, but transparently falls back to dispatching through the vtable
    so interception is never bypassed.
    """

    __slots__ = ("_target", "_vtable", "_name", "revoked")

    def __init__(self, target: Callable[..., Any], vtable: "VTable", name: str) -> None:
        self._target = target
        self._vtable = vtable
        self._name = name
        self.revoked = False

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._target(*args, **kwargs)

    def _revoke(self) -> None:
        """Redirect the handle back through the vtable (slow path)."""
        vtable, name = self._vtable, self._name
        self._target = lambda *a, **kw: vtable.invoke(name, *a, **kw)
        self.revoked = True

    def _refresh(self, target: Callable[..., Any]) -> None:
        """Re-fuse the handle onto a direct target after interceptors are
        removed again."""
        self._target = target
        self.revoked = False


class FusedBatchCall(FusedCall):
    """Handle to a fused batch call: ``handle(items)`` processes a list.

    While the originating slot is unintercepted the handle targets the
    implementation's native ``<method>_batch`` (or a tight loop over the
    raw bound method).  Interceptor installation revokes it exactly like a
    scalar :class:`FusedCall`: the handle keeps working but dispatches each
    item through the vtable so interception observes every element.
    """

    __slots__ = ()

    def _revoke(self) -> None:
        vtable, name = self._vtable, self._name
        self._target = lambda items: vtable.invoke_batch(name, items)
        self.revoked = True


class FusedPullBatchCall(FusedCall):
    """Handle to a fused pull-batch call: ``handle(max_n)`` returns a list.

    The pull-shaped twin of :class:`FusedBatchCall`.  While the slot is
    unintercepted the handle targets the implementation's native
    ``<method>_batch(max_n)`` (or a tight collect loop over the raw bound
    method).  Interceptor installation revokes it: the handle keeps
    working but draws each item through the vtable's interposed slot, so
    interceptors observe every produced item.
    """

    __slots__ = ()

    def _revoke(self) -> None:
        vtable, name = self._vtable, self._name
        self._target = lambda max_n: vtable.invoke_pull_batch(name, max_n)
        self.revoked = True


class VTable:
    """Dispatch table for one exposed interface instance.

    Parameters
    ----------
    itype:
        The interface type whose methods define the slots.
    impl:
        The implementation object; must structurally conform to *itype*.
    interface_name:
        The exposure name (e.g. ``"in0"``); used in diagnostics and in
        call contexts.
    """

    def __init__(self, itype: type[Interface], impl: object, interface_name: str) -> None:
        problems = implements(impl, itype)
        if problems:
            raise InterfaceError(
                f"implementation {type(impl).__name__} does not conform to "
                f"{itype.interface_name()}: " + "; ".join(problems)
            )
        self.itype = itype
        self.impl = impl
        self.interface_name = interface_name
        #: Raw bound methods, one per declared interface method.
        self._raw: dict[str, Callable[..., Any]] = {
            m.name: getattr(impl, m.name) for m in methods_of(itype)
        }
        #: Effective slots: raw methods, or composed interceptor closures.
        self._slots: dict[str, Callable[..., Any]] = dict(self._raw)
        #: Declared arity per method: decides whether a slot's batch shape
        #: is push-style (arity 1: ``<m>_batch(items)``) or pull-style
        #: (arity 0: ``<m>_batch(max_n) -> list``).
        self._arity: dict[str, int] = {m.name: m.arity for m in methods_of(itype)}
        #: Native batch implementations: ``<method>_batch`` callables found
        #: on the impl object.  Used by the batch dispatch paths while the
        #: corresponding slot is unintercepted.
        self._raw_batch: dict[str, Callable[..., Any]] = {}
        for m in methods_of(itype):
            native = getattr(impl, f"{m.name}_batch", None)
            if callable(native):
                self._raw_batch[m.name] = native
        #: Effective batch callables, built lazily per slot and invalidated
        #: on every interceptor change.
        self._batch_slots: dict[str, Callable[..., Any]] = {}
        #: Effective pull-batch callables (same lifecycle as _batch_slots).
        self._pull_batch_slots: dict[str, Callable[..., Any]] = {}
        self._interceptors: dict[str, _SlotInterceptors] = {}
        self._fused: dict[str, list[FusedCall]] = {}
        self._fused_batch: dict[str, list[FusedBatchCall]] = {}
        self._fused_pull_batch: dict[str, list[FusedPullBatchCall]] = {}
        self._batch_watchers: dict[str, list[Callable[[Callable[..., Any]], None]]] = {}
        self._pull_batch_watchers: dict[
            str, list[Callable[[Callable[..., Any]], None]]
        ] = {}
        #: Monomorphic inline cache for :meth:`invoke`: data-path callers
        #: repeat the same method name, so the steady-state cost is one
        #: string compare and one attribute load instead of a dict lookup.
        self._ic_name: str | None = None
        self._ic_slot: Callable[..., Any] | None = None
        #: Slot watchers: called with the effective slot callable now and
        #: after every interceptor change.  This is the zero-overhead
        #: fusion path: watchers install the *raw bound method* at their
        #: call site while a slot is unintercepted, and the vtable swaps
        #: the dispatch closure in when interception appears.
        self._watchers: dict[str, list[Callable[[Callable[..., Any]], None]]] = {}

    # -- dispatch -----------------------------------------------------------

    def invoke(self, method_name: str, *args: Any, **kwargs: Any) -> Any:
        """Dispatch a call through the vtable (the 'indirect' regime).

        Warm-path cost is one name compare plus one bound-callable load:
        the last dispatched slot is cached inline and invalidated whenever
        the slot set or an interceptor changes.
        """
        if method_name == self._ic_name:
            return self._ic_slot(*args, **kwargs)
        try:
            slot = self._slots[method_name]
        except KeyError:
            raise InterfaceError(
                f"interface {self.itype.interface_name()} has no method "
                f"{method_name!r}"
            ) from None
        self._ic_name = method_name
        self._ic_slot = slot
        return slot(*args, **kwargs)

    def invoke_batch(self, method_name: str, items: list) -> None:
        """Dispatch one call per element of *items* through the vtable.

        Unintercepted slots use the implementation's native
        ``<method>_batch(items)`` when it exists (one cross-component call
        for the whole list), falling back to a tight loop over the raw
        bound method.  Intercepted slots always dispatch item-by-item
        through the composed interceptor closure, so interceptors observe
        every element.  Designed for void single-argument data-path methods
        (``push``-style); return values are discarded.  Zero-argument
        (``pull``-style) slots are refused — use
        :meth:`invoke_pull_batch` for those.
        """
        batch = self._batch_slots.get(method_name)
        if batch is None:
            self._require_shape(method_name, pull=False)
            batch = self._effective_batch(method_name)
            self._batch_slots[method_name] = batch
        batch(items)

    def invoke_pull_batch(self, method_name: str, max_n: int) -> list:
        """Draw up to *max_n* items from a pull-style slot as one batch.

        The pull-shaped twin of :meth:`invoke_batch` — the reflection
        invariant of the pull side lives here.  Unintercepted slots use
        the implementation's native ``<method>_batch(max_n)`` when it
        exists (the whole batch crosses the component boundary in one
        call), falling back to a collect loop over the raw bound method.
        The moment the slot gains an interceptor the batch degrades to one
        *interposed* scalar call per item, so interceptors observe every
        produced item (via ``CallContext.result``) and the native batch
        method can never smuggle items past reflection.  A ``None`` from
        the scalar method ends the batch early; the items produced so far
        are returned.  Single-argument (``push``-style) slots are refused
        — use :meth:`invoke_batch` for those.
        """
        puller = self._pull_batch_slots.get(method_name)
        if puller is None:
            self._require_shape(method_name, pull=True)
            puller = self._effective_pull_batch(method_name)
            self._pull_batch_slots[method_name] = puller
        return puller(max_n)

    def slot(self, method_name: str) -> Callable[..., Any]:
        """Return the current effective slot callable for *method_name*.

        The returned callable reflects interceptors installed *at the time
        of the call to this function*; callers that must observe later
        interceptor changes should use :meth:`invoke` or :meth:`fuse`.
        """
        try:
            return self._slots[method_name]
        except KeyError:
            raise InterfaceError(
                f"interface {self.itype.interface_name()} has no method "
                f"{method_name!r}"
            ) from None

    def fuse(self, method_name: str) -> FusedCall:
        """Return a revocable direct-call handle for *method_name*.

        While the slot is unintercepted the handle calls the implementation
        method with zero vtable indirection; if interceptors appear later
        the handle silently reverts to full dispatch.
        """
        if method_name not in self._raw:
            raise InterfaceError(
                f"interface {self.itype.interface_name()} has no method "
                f"{method_name!r}"
            )
        intercepted = bool(self._interceptors.get(method_name))
        target = self._slots[method_name] if intercepted else self._raw[method_name]
        handle = FusedCall(target, self, method_name)
        if intercepted:
            handle.revoked = True
        self._fused.setdefault(method_name, []).append(handle)
        return handle

    def fuse_batch(self, method_name: str) -> FusedBatchCall:
        """Return a revocable direct batch-call handle for *method_name*.

        ``handle(items)`` processes a whole list at the cost of a single
        call while the slot is unintercepted; interceptor installation
        reverts it to per-item vtable dispatch (see
        :class:`FusedBatchCall`).
        """
        self._require_shape(method_name, pull=False)
        handle = FusedBatchCall(self._direct_batch(method_name), self, method_name)
        if self._interceptors.get(method_name):
            handle._revoke()
        self._fused_batch.setdefault(method_name, []).append(handle)
        return handle

    def fuse_pull_batch(self, method_name: str) -> FusedPullBatchCall:
        """Return a revocable direct pull-batch handle for *method_name*.

        ``handle(max_n)`` draws a whole list at the cost of a single call
        while the slot is unintercepted; interceptor installation reverts
        it to per-item interposed pulls (see :class:`FusedPullBatchCall`).
        """
        self._require_shape(method_name, pull=True)
        handle = FusedPullBatchCall(
            self._direct_pull_batch(method_name), self, method_name
        )
        if self._interceptors.get(method_name):
            handle._revoke()
        self._fused_pull_batch.setdefault(method_name, []).append(handle)
        return handle

    def watch_slot(
        self, method_name: str, setter: Callable[[Callable[..., Any]], None]
    ) -> Callable[[], None]:
        """Register a call-site *setter* for one slot.

        The setter is invoked immediately with the current effective slot
        (the raw bound method when unintercepted — true direct dispatch)
        and again whenever the effective slot changes.  Returns an
        unsubscribe callable.
        """
        if method_name not in self._raw:
            raise InterfaceError(
                f"interface {self.itype.interface_name()} has no method "
                f"{method_name!r}"
            )
        watchers = self._watchers.setdefault(method_name, [])
        watchers.append(setter)
        setter(self._slots[method_name])

        def unsubscribe() -> None:
            try:
                watchers.remove(setter)
            except ValueError:
                pass

        return unsubscribe

    def watch_batch_slot(
        self, method_name: str, setter: Callable[[Callable[..., Any]], None]
    ) -> Callable[[], None]:
        """Register a call-site *setter* for one slot's batch callable.

        The batch analogue of :meth:`watch_slot`: the setter receives the
        current effective batch callable (native ``<method>_batch`` or a
        raw-method loop while unintercepted; a per-item dispatch loop once
        interceptors appear) and is re-invoked on every interceptor change.
        Returns an unsubscribe callable.
        """
        self._require_shape(method_name, pull=False)
        watchers = self._batch_watchers.setdefault(method_name, [])
        watchers.append(setter)
        setter(self._effective_batch(method_name))

        def unsubscribe() -> None:
            try:
                watchers.remove(setter)
            except ValueError:
                pass

        return unsubscribe

    def watch_pull_batch_slot(
        self, method_name: str, setter: Callable[[Callable[..., Any]], None]
    ) -> Callable[[], None]:
        """Register a call-site *setter* for one slot's pull-batch callable.

        The pull-shaped analogue of :meth:`watch_batch_slot`: the setter
        receives the current effective pull-batch callable (native
        ``<method>_batch`` or a raw-method collect loop while
        unintercepted; an interposed per-item draw loop once interceptors
        appear) and is re-invoked on every interceptor change.  Returns an
        unsubscribe callable.
        """
        self._require_shape(method_name, pull=True)
        watchers = self._pull_batch_watchers.setdefault(method_name, [])
        watchers.append(setter)
        setter(self._effective_pull_batch(method_name))

        def unsubscribe() -> None:
            try:
                watchers.remove(setter)
            except ValueError:
                pass

        return unsubscribe

    # -- interception -------------------------------------------------------

    def add_pre(self, method_name: str, name: str, fn: PreInterceptor) -> None:
        """Install a pre-interceptor on one slot under a registration name."""
        self._interceptors_for(method_name).pre[name] = fn
        self._rebuild(method_name)

    def add_post(self, method_name: str, name: str, fn: PostInterceptor) -> None:
        """Install a post-interceptor on one slot under a registration name."""
        self._interceptors_for(method_name).post[name] = fn
        self._rebuild(method_name)

    def add_around(self, method_name: str, name: str, fn: AroundInterceptor) -> None:
        """Install an around-interceptor; it receives ``(proceed, context)``
        and is responsible for calling ``proceed`` (or not)."""
        self._interceptors_for(method_name).around[name] = fn
        self._rebuild(method_name)

    def remove_interceptor(self, method_name: str, name: str) -> bool:
        """Remove interceptor *name* from a slot (any kind).

        Returns True when something was removed.
        """
        entry = self._interceptors.get(method_name)
        if entry is None:
            return False
        removed = False
        for table in (entry.pre, entry.post, entry.around):
            if name in table:
                del table[name]
                removed = True
        if removed:
            self._rebuild(method_name)
        return removed

    def interceptor_names(self, method_name: str) -> list[str]:
        """Registration names of all interceptors on one slot."""
        entry = self._interceptors.get(method_name)
        if entry is None:
            return []
        return sorted({*entry.pre, *entry.post, *entry.around})

    def intercepted(self, method_name: str) -> bool:
        """True when the slot currently has at least one interceptor."""
        return bool(self._interceptors.get(method_name))

    def iter_methods(self) -> Iterator[str]:
        """Iterate slot (method) names in vtable order."""
        return iter(self._raw)

    # -- internals ----------------------------------------------------------

    def _require_shape(self, method_name: str, *, pull: bool) -> None:
        """Validate that a slot exists and has the requested batch shape.

        Pull-shaped batch dispatch only fits zero-argument methods (the
        scalar call *produces* the item); push-shaped batch dispatch needs
        at least one argument (the scalar call *consumes* the item).
        """
        arity = self._arity.get(method_name)
        if arity is None:
            raise InterfaceError(
                f"interface {self.itype.interface_name()} has no method "
                f"{method_name!r}"
            )
        if pull and arity != 0:
            raise InterfaceError(
                f"method {method_name!r} of {self.itype.interface_name()} "
                f"takes {arity} argument(s); pull-batch dispatch requires a "
                "zero-argument (pull-style) method — use the push-shaped "
                "batch API instead"
            )
        if not pull and arity != 1:
            hint = (
                "use invoke_pull_batch/fuse_pull_batch/watch_pull_batch_slot"
                if arity == 0
                else "multi-argument methods have no batch shape"
            )
            raise InterfaceError(
                f"method {method_name!r} of {self.itype.interface_name()} "
                f"takes {arity} argument(s); push-batch dispatch requires a "
                f"single-argument (push-style) method — {hint}"
            )

    def _direct_batch(self, method_name: str) -> Callable[..., Any]:
        """Zero-interception batch callable: the implementation's native
        ``<method>_batch``, or a tight loop over the raw bound method."""
        native = self._raw_batch.get(method_name)
        if native is not None:
            return native
        raw = self._raw[method_name]

        def loop(items: list) -> None:
            for item in items:
                raw(item)

        return loop

    def _effective_batch(self, method_name: str) -> Callable[..., Any]:
        """The batch callable honouring the slot's current regime."""
        if not self._interceptors.get(method_name):
            return self._direct_batch(method_name)
        slot = self._slots[method_name]

        def dispatch_batch(items: list) -> None:
            for item in items:
                slot(item)

        return dispatch_batch

    def _direct_pull_batch(self, method_name: str) -> Callable[..., Any]:
        """Zero-interception pull-batch callable: the implementation's
        native ``<method>_batch(max_n)``, or a collect loop over the raw
        bound method that stops at *max_n* items or the first ``None``."""
        native = self._raw_batch.get(method_name)
        if native is not None:
            return native
        raw = self._raw[method_name]

        def collect(max_n: int) -> list:
            items: list = []
            while len(items) < max_n:
                item = raw()
                if item is None:
                    break
                items.append(item)
            return items

        return collect

    def _effective_pull_batch(self, method_name: str) -> Callable[..., Any]:
        """The pull-batch callable honouring the slot's current regime.

        The pull-side reflection invariant: an intercepted slot draws one
        *interposed* scalar call per item, so every produced item crosses
        the composed interceptor closure (pre-interceptors see the call,
        post/around interceptors see the item via ``CallContext.result``).
        The native ``<method>_batch`` is only ever reached while the slot
        is unintercepted.
        """
        if not self._interceptors.get(method_name):
            return self._direct_pull_batch(method_name)
        slot = self._slots[method_name]

        def dispatch_pull_batch(max_n: int) -> list:
            items: list = []
            while len(items) < max_n:
                item = slot()
                if item is None:
                    break
                items.append(item)
            return items

        return dispatch_pull_batch

    def _interceptors_for(self, method_name: str) -> _SlotInterceptors:
        if method_name not in self._raw:
            raise InterfaceError(
                f"interface {self.itype.interface_name()} has no method "
                f"{method_name!r}"
            )
        return self._interceptors.setdefault(method_name, _SlotInterceptors())

    def _rebuild(self, method_name: str) -> None:
        """Recompose the effective slot after an interceptor change.

        Composition happens once per change, so the steady-state dispatch
        cost is one closure call per interceptor rather than a list walk
        with per-call conditionals.
        """
        raw = self._raw[method_name]
        entry = self._interceptors.get(method_name)
        self._ic_name = None
        self._ic_slot = None
        self._batch_slots.pop(method_name, None)
        self._pull_batch_slots.pop(method_name, None)
        if not entry:
            self._slots[method_name] = raw
            for handle in self._fused.get(method_name, []):
                handle._refresh(raw)
            for setter in self._watchers.get(method_name, []):
                setter(raw)
            if (
                self._fused_batch.get(method_name)
                or self._batch_watchers.get(method_name)
            ):
                direct_batch = self._direct_batch(method_name)
                for handle in self._fused_batch.get(method_name, []):
                    handle._refresh(direct_batch)
                for setter in self._batch_watchers.get(method_name, []):
                    setter(direct_batch)
            if (
                self._fused_pull_batch.get(method_name)
                or self._pull_batch_watchers.get(method_name)
            ):
                direct_pull = self._direct_pull_batch(method_name)
                for handle in self._fused_pull_batch.get(method_name, []):
                    handle._refresh(direct_pull)
                for setter in self._pull_batch_watchers.get(method_name, []):
                    setter(direct_pull)
            return

        pres = list(entry.pre.values())
        posts = list(entry.post.values())
        arounds = list(entry.around.values())
        iface_name = self.interface_name

        def dispatch(*args: Any, **kwargs: Any) -> Any:
            ctx = CallContext(iface_name, method_name, args, kwargs)
            for pre in pres:
                pre(ctx)

            def proceed(*a: Any, **kw: Any) -> Any:
                # Around interceptors may re-invoke with altered arguments;
                # default to the (possibly pre-interceptor-mutated) context.
                call_args = a if a else ctx.args
                call_kwargs = kw if kw else ctx.kwargs
                return raw(*call_args, **call_kwargs)

            invoke = proceed
            for around in reversed(arounds):
                invoke = _wrap_around(around, invoke, ctx)
            ctx.result = invoke()
            for post in posts:
                post(ctx)
            return ctx.result

        self._slots[method_name] = dispatch
        for handle in self._fused.get(method_name, []):
            handle._revoke()
        for setter in self._watchers.get(method_name, []):
            setter(dispatch)
        for handle in self._fused_batch.get(method_name, []):
            handle._revoke()
        if self._batch_watchers.get(method_name):
            interposed_batch = self._effective_batch(method_name)
            for setter in self._batch_watchers[method_name]:
                setter(interposed_batch)
        for handle in self._fused_pull_batch.get(method_name, []):
            handle._revoke()
        if self._pull_batch_watchers.get(method_name):
            interposed_pull = self._effective_pull_batch(method_name)
            for setter in self._pull_batch_watchers[method_name]:
                setter(interposed_pull)


def _wrap_around(
    around: AroundInterceptor, inner: Callable[..., Any], ctx: CallContext
) -> Callable[..., Any]:
    """Bind one around-interceptor over *inner* for a single call context."""

    def wrapped() -> Any:
        return around(inner, ctx)

    return wrapped
