"""Compile an uninterferable fused region into one specialised callable.

Section 5's partial-evaluation claim promises cross-component calls at
"the overhead of a C function call".  Binding fusion
(:mod:`repro.opencom.fusion`) removes the vtable indirection, but C11/C12
showed the residual cost after batching is one Python frame per component
per batch.  This module removes those frames too: given a region whose
vtables carry **no interceptors**, it emits a single specialised callable
for the whole chain — either by *closure composition* (each component
contributes a batch kernel that calls its downstream kernels directly) or,
behind ``mode="source"``, by generating Python source for one merged
per-packet loop and running it through :func:`compile`.

The safety story is the same one fusion already proves: the compiled
callable is installed in a fused-handle subclass
(:class:`CompiledBatchCall` / :class:`CompiledPullBatchCall`), and
:meth:`~repro.opencom.vtable.VTable.watch_slot` watchers on **every**
method of **every** vtable in the region revoke it the moment any
interceptor appears (or disappears — any reflective touch de-specialises
conservatively).  A revoked handle keeps working: it falls back to
``invoke_batch`` through the entry vtable, i.e. the fully interposed
interpreted path.  Because the handle loads its target once per call,
a batch already in flight finishes on the specialised function and the
*next* batch runs interpreted — exactly the scalar fused-call contract.

Equivalence is the hard invariant: a compiled chain must be
**observationally identical** to the interpreted one — byte-for-byte
egress, identical counter dicts (including which keys exist), identical
drop/release accounting — and is gated by the differential Hypothesis
suite in ``tests/opencom/test_compile_differential.py``.  The only
permitted divergence is the copy ledger, where the specialised v4 kernel
recomputes checksums arithmetically without serialising and therefore
records *fewer* header copies, never more.

Components opt in by duck type:

``compiled_batch_kernel(next_map)``
    Return a batch callable specialised against ``next_map`` (connection
    name → downstream batch kernel), or ``None`` to stay native.

``compiled_pull_kernel()``
    Return a ``f(max_n) -> list`` pull kernel, or ``None``.

``compiled_source(ctx, next_map)``
    Contribute lines to the merged single-loop source build (see
    :class:`SourceContext`).  Return the connection name of the spine
    successor, ``None`` when terminal, or ``NotImplemented`` when the
    stage cannot be inlined (the whole build then falls back to closure
    mode — recorded on the plan, never silent breakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.opencom.errors import OpenComError
from repro.opencom.vtable import FusedBatchCall, FusedPullBatchCall, VTable


class CompileError(OpenComError):
    """The region cannot be compiled (e.g. interceptors present)."""


class CompiledBatchCall(FusedBatchCall):
    """Fused batch handle whose target is a compiled chain kernel.

    Revocation semantics are inherited unchanged: ``_revoke()`` swaps the
    target for ``vtable.invoke_batch`` on the *entry* vtable, which is the
    interpreted path (and re-interposes per item if that entry slot is the
    intercepted one).
    """

    __slots__ = ()


class CompiledPullBatchCall(FusedPullBatchCall):
    """Fused pull-batch handle whose target is a compiled pull kernel."""

    __slots__ = ()


@dataclass
class CompiledStage:
    """One component's participation in a compiled chain."""

    name: str
    inlined: bool
    detail: str = ""


@dataclass
class CompilationPlan:
    """One compiled chain: the handle, its stages, and its revocation.

    ``handle`` is the callable the call site installs; ``revoke()`` (or
    any interceptor change on a watched vtable) degrades it to the
    interpreted path without the call site noticing.  ``revert()``
    additionally drops the watchers — used on teardown/reconfiguration.
    """

    entry: Any
    method: str
    requested_mode: str
    mode: str
    handle: Any
    stages: list[CompiledStage] = field(default_factory=list)
    #: Generated source text (``mode == "source"`` only).
    source: str | None = field(default=None, repr=False)
    fallback_reason: str | None = None
    _unwatchers: list[Callable[[], None]] = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def revoked(self) -> bool:
        return bool(self.handle.revoked)

    @property
    def active(self) -> bool:
        return not self.handle.revoked

    @property
    def inlined_count(self) -> int:
        """Stages that contributed a specialised kernel (vs native)."""
        return sum(1 for stage in self.stages if stage.inlined)

    def revoke(self) -> None:
        """Degrade the handle to interpreted dispatch (idempotent)."""
        if not self.handle.revoked:
            self.handle._revoke()

    def revert(self) -> None:
        """Revoke and unsubscribe every watcher (terminal teardown)."""
        for unsubscribe in self._unwatchers:
            unsubscribe()
        self._unwatchers.clear()
        self.revoke()

    def summary(self) -> str:
        state = "revoked" if self.revoked else "active"
        return (
            f"compiled {self.method!r} chain [{self.mode}, {state}]: "
            f"{len(self.stages)} stage(s), {self.inlined_count} specialised"
        )


# -- region walk ------------------------------------------------------------


def _component_name(component: Any) -> str:
    return getattr(component, "name", None) or type(component).__name__


def _walk_region(entry: Any, interface: str) -> tuple[VTable, list[VTable]]:
    """Collect every vtable reachable from *entry*'s outgoing ports.

    The region is the transitive closure over bound connections — exactly
    the set of slots an interceptor could appear on and silently be
    bypassed by a compiled chain, so exactly the set we must watch.
    """
    entry_vtable = entry.interface(interface).vtable
    vtables: dict[int, VTable] = {id(entry_vtable): entry_vtable}
    seen: set[int] = set()

    def visit(component: Any) -> None:
        if id(component) in seen:
            return
        seen.add(id(component))
        for receptacle in component.receptacles().values():
            for port in receptacle.connections():
                vtable = port.target.vtable
                vtables.setdefault(id(vtable), vtable)
                visit(vtable.impl)

    visit(entry)
    return entry_vtable, list(vtables.values())


def _check_uninterfered(vtables: list[VTable]) -> None:
    """Raise :class:`CompileError` if any region slot has interceptors."""
    problems = []
    for vtable in vtables:
        intercepted = [m for m in vtable.iter_methods() if vtable.intercepted(m)]
        if intercepted:
            problems.append(
                f"{vtable.interface_name} of "
                f"{_component_name(vtable.impl)}: {', '.join(intercepted)}"
            )
    if problems:
        raise CompileError(
            "region carries interceptors, refusing to compile: "
            + "; ".join(problems)
        )


def _subscribe_revocation(plan: CompilationPlan, vtables: list[VTable]) -> None:
    """Revoke *plan* on any interceptor change anywhere in the region.

    ``watch_slot`` fires the setter immediately with the current slot;
    that first synchronous call is the subscription handshake, not a
    change, so it is skipped.  Every later fire — interceptor installed
    *or* removed, on any method of any region vtable — revokes the
    compiled chain.  De-specialising on removal too is deliberately
    conservative: correctness never depends on re-deriving that a region
    became clean again, the owner simply recompiles.
    """
    for vtable in vtables:
        for method in list(vtable.iter_methods()):
            armed = [False]

            def setter(_slot, _armed=armed, _plan=plan):
                if not _armed[0]:
                    _armed[0] = True
                    return
                _plan.revoke()

            plan._unwatchers.append(vtable.watch_slot(method, setter))


# -- closure composition ----------------------------------------------------


def _native_batch_callable(component: Any, method: str) -> Callable:
    """The stage's native batch entry point (the non-inlined fallback)."""
    native = getattr(component, f"{method}_batch", None)
    if callable(native):
        return native
    scalar = getattr(component, method)

    def loop(items, _scalar=scalar):
        for item in items:
            _scalar(item)

    return loop


class _ClosureBuilder:
    """Memoised bottom-up closure composition over a push region."""

    def __init__(self, method: str, stages: list[CompiledStage]) -> None:
        self.method = method
        self.stages = stages
        self._kernels: dict[int, Callable] = {}

    def kernel_for(self, component: Any) -> Callable:
        key = id(component)
        cached = self._kernels.get(key)
        if cached is not None:
            return cached
        # Pre-seed with the native callable so a (pathological) cycle
        # composes against an un-inlined stage instead of recursing.
        native = _native_batch_callable(component, self.method)
        self._kernels[key] = native
        next_map: dict[str, Callable] = {}
        for receptacle in component.receptacles().values():
            for port in receptacle.connections():
                target = port.target.vtable.impl
                next_map[port.connection_name] = self.kernel_for(target)
        hook = getattr(component, "compiled_batch_kernel", None)
        kernel = hook(next_map) if hook is not None else None
        if kernel is None:
            self.stages.append(
                CompiledStage(_component_name(component), inlined=False)
            )
            return native
        self._kernels[key] = kernel
        self.stages.append(
            CompiledStage(_component_name(component), inlined=True)
        )
        return kernel


# -- source generation ------------------------------------------------------


class SourceContext:
    """Assembly state for the generated single-loop kernel.

    Stages append lines to four buckets which are rendered as::

        def __compiled__(packets):
            n = len(packets)
            <prologue>                 # per-batch setup, in spine order
            for pkt in packets:
                <loop>                 # merged per-packet body
            <epilogue>                 # per-batch counter settling
            <flush reversed>           # group/side-list delivery

    ``flush`` is a list of *blocks* emitted in **reverse** append order,
    so a downstream stage's groups reach the sinks before an upstream
    stage's side lists — matching the interpreted pipeline's emission
    order (e.g. the forwarder's v4 hop groups land before the
    recogniser's deferred v6 batch).

    ``facts`` is the inter-stage contract: upstream stages publish the
    loop-variable names downstream stages specialise against —
    ``net_var`` / ``net_class_var`` (per-packet locals holding
    ``pkt.net`` and its class), ``version`` (spine traffic class), and
    ``arrivals_var`` (a prologue-zeroed counter of packets surviving to
    the next stage, used for that stage's guarded ``rx`` bump).

    ``bind`` pins a runtime object into the kernel's namespace under a
    unique name; ``fresh`` mints a unique local/variable name.
    """

    def __init__(self) -> None:
        self.namespace: dict[str, Any] = {}
        self.prologue: list[str] = []
        self.loop: list[str] = []
        self.epilogue: list[str] = []
        self.flush: list[list[str]] = []
        self.facts: dict[str, Any] = {}
        self._serial = 0

    def fresh(self, hint: str) -> str:
        self._serial += 1
        return f"_{hint}_{self._serial}"

    def bind(self, hint: str, obj: Any) -> str:
        name = self.fresh(hint)
        self.namespace[name] = obj
        return name


def _build_source_kernel(
    entry: Any,
    method: str,
    stages: list[CompiledStage],
    closures: _ClosureBuilder,
) -> tuple[Callable, str] | None:
    """Generate, ``compile()`` and exec the merged-loop kernel.

    Walks the *spine* (each stage names its successor connection); side
    connections (v6 divert, per-hop sinks) get closure kernels from the
    shared builder, bound into the namespace.  Returns ``None`` when any
    spine stage lacks / declines ``compiled_source`` — the caller falls
    back to closure composition.
    """
    ctx = SourceContext()
    component = entry
    seen: set[int] = set()
    spine: list[CompiledStage] = []
    while True:
        if id(component) in seen:
            return None  # cycle: not a spine
        seen.add(id(component))
        hook = getattr(component, "compiled_source", None)
        if hook is None:
            return None
        next_map: dict[str, Callable] = {}
        targets: dict[str, Any] = {}
        for receptacle in component.receptacles().values():
            for port in receptacle.connections():
                target = port.target.vtable.impl
                targets[port.connection_name] = target
                next_map[port.connection_name] = closures.kernel_for(target)
        successor = hook(ctx, next_map)
        if successor is NotImplemented:
            return None
        spine.append(
            CompiledStage(_component_name(component), inlined=True, detail="source")
        )
        if successor is None:
            break
        component = targets[successor]

    lines = ["def __compiled__(packets):", "    n = len(packets)"]
    lines += ["    " + line for line in ctx.prologue]
    if ctx.loop:
        lines.append("    for pkt in packets:")
        lines += ["        " + line for line in ctx.loop]
    lines += ["    " + line for line in ctx.epilogue]
    for block in reversed(ctx.flush):
        lines += ["    " + line for line in block]
    source = "\n".join(lines) + "\n"
    namespace = dict(ctx.namespace)
    exec(compile(source, "<repro.opencom.compile>", "exec"), namespace)
    stages.extend(spine)
    return namespace["__compiled__"], source


# -- public entry points ----------------------------------------------------


def compile_push_chain(
    entry: Any,
    *,
    interface: str = "in0",
    method: str = "push",
    mode: str = "closure",
    fusion_plan: Any = None,
) -> CompilationPlan:
    """Compile the push region rooted at *entry* into one batch callable.

    Raises :class:`CompileError` when any vtable in the region carries an
    interceptor (compilation is only ever offered for clean regions — the
    same precondition fusion checks per port, enforced here per region).
    ``mode="source"`` asks for the generated-source variant and records a
    closure fallback on the plan when the chain has a stage the source
    builder cannot inline.  When *fusion_plan* is given the chain is
    recorded on it, so ``FusionPlan.revert()`` tears it down with the
    fused ports.
    """
    if mode not in ("closure", "source"):
        raise CompileError(f"unknown compile mode {mode!r}")
    entry_vtable, vtables = _walk_region(entry, interface)
    _check_uninterfered(vtables)

    stages: list[CompiledStage] = []
    closures = _ClosureBuilder(method, stages)
    source_text = None
    fallback_reason = None
    effective_mode = mode
    kernel: Callable | None = None
    if mode == "source":
        source_stages: list[CompiledStage] = []
        built = _build_source_kernel(entry, method, source_stages, closures)
        if built is not None:
            kernel, source_text = built
            stages = source_stages
        else:
            effective_mode = "closure"
            fallback_reason = (
                "source build declined (a spine stage lacks compiled_source)"
            )
            stages = []
            closures = _ClosureBuilder(method, stages)
    if kernel is None:
        kernel = closures.kernel_for(entry)

    handle = CompiledBatchCall(kernel, entry_vtable, method)
    plan = CompilationPlan(
        entry=entry,
        method=method,
        requested_mode=mode,
        mode=effective_mode,
        handle=handle,
        stages=stages,
        source=source_text,
        fallback_reason=fallback_reason,
    )
    _subscribe_revocation(plan, vtables)
    if fusion_plan is not None:
        fusion_plan.record_compiled(plan)
    return plan


def compile_pull(
    component: Any,
    *,
    interface: str = "pull0",
    method: str = "pull",
    fusion_plan: Any = None,
) -> CompilationPlan:
    """Compile *component*'s pull side into one ``f(max_n)`` callable.

    The pull shape has no downstream region — the specialised kernel is
    the component's own ``compiled_pull_kernel`` (native ``pull_batch``
    when absent), guarded and revoked through the pull interface's
    vtable exactly like the push chain.
    """
    vtable = component.interface(interface).vtable
    _check_uninterfered([vtable])
    hook = getattr(component, "compiled_pull_kernel", None)
    kernel = hook() if hook is not None else None
    inlined = kernel is not None
    if kernel is None:
        native = getattr(component, f"{method}_batch", None)
        if callable(native):
            kernel = native
        else:
            scalar = getattr(component, method)

            def collect(max_n, _scalar=scalar):
                out = []
                for _ in range(max_n):
                    item = _scalar()
                    if item is None:
                        break
                    out.append(item)
                return out

            kernel = collect

    handle = CompiledPullBatchCall(kernel, vtable, method)
    plan = CompilationPlan(
        entry=component,
        method=method,
        requested_mode="closure",
        mode="closure",
        handle=handle,
        stages=[CompiledStage(_component_name(component), inlined=inlined)],
    )
    _subscribe_revocation(plan, [vtable])
    if fusion_plan is not None:
        fusion_plan.record_compiled(plan)
    return plan
