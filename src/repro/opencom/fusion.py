"""Whole-pipeline binding fusion: the partial-evaluation optimisation.

Section 5 of the paper reports "temporarily bypassing vtables, using
partial evaluation techniques, to reduce the overhead of a cross-component
call to that of a C function call".  The per-binding half of this lives on
the vtable (:meth:`repro.opencom.vtable.VTable.fuse`); this module provides
the management layer that fuses and unfuses whole regions of a capsule:

- :func:`fuse_pipeline` walks a list of components and fuses every outgoing
  port, returning a :class:`FusionPlan` that can undo the optimisation;
- fusing a port covers its scalar *and* batch call handles — push-shaped
  (``port.push_batch(pkts)``) and pull-shaped (``port.pull_batch(max_n)``)
  alike: the port's ``<method>_batch`` attributes are rewired to the
  targets' native batch callables, so a fused region forwards (and drains)
  whole batches at one call per hop;
- fusion is *safety-checked*: ports whose target slots carry interceptors
  are skipped (and reported), and later interceptor installation revokes
  fused handles — scalar and batch — automatically, so reflection is never
  silently bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.opencom.component import Component
from repro.opencom.receptacle import Port


@dataclass
class FusionPlan:
    """Record of one fusion pass, able to undo itself."""

    fused_ports: list[Port] = field(default_factory=list)
    skipped: list[tuple[Port, str]] = field(default_factory=list)
    #: Compiled chains (:class:`repro.opencom.compile.CompilationPlan`)
    #: recorded against this plan; reverted together with the ports.
    compiled_chains: list = field(default_factory=list)
    #: Per-vtable interceptor check, computed once per pass rather than
    #: re-iterating every method for every port that shares a target
    #: (multi-receptacle fan-in hits the same vtable many times).
    _intercepted_cache: dict[int, list[str]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Identity set of every port this pass has already visited (fused or
    #: skipped), so a port reachable through two components in the same
    #: region list is fused once and ``revert()`` never unfuses twice.
    _seen_port_ids: set[int] = field(
        default_factory=set, repr=False, compare=False
    )

    @property
    def fused_count(self) -> int:
        """Number of ports switched to direct dispatch."""
        return len(self.fused_ports)

    @property
    def compiled_count(self) -> int:
        """Number of compiled chains recorded against this plan."""
        return len(self.compiled_chains)

    def record_compiled(self, chain) -> None:
        """Attach a compiled chain so ``revert()`` tears it down too."""
        self.compiled_chains.append(chain)

    def revert(self) -> None:
        """Undo the whole pass: compiled chains, fused ports, and every
        piece of pass-scoped bookkeeping.

        Clearing ``skipped``, the interceptor cache and the seen-port set
        matters for reuse: a plan object that survives a
        reconfigure→refuse cycle would otherwise consult a stale
        ``id(vtable)``-keyed cache entry that can alias a *new* vtable
        allocated at the same address, and re-report stale skips.
        """
        for chain in self.compiled_chains:
            chain.revert()
        self.compiled_chains.clear()
        for port in self.fused_ports:
            port.unfuse()
        self.fused_ports.clear()
        self.skipped.clear()
        self._intercepted_cache.clear()
        self._seen_port_ids.clear()

    def summary(self) -> str:
        """One-line human summary (used by benchmarks and logs).

        Compiled chains, fused ports and skipped ports are reported as
        three distinct counts — a compiled chain is not "more fused
        ports", and a skip is not a failure of either.
        """
        parts = [f"fused {self.fused_count} port(s)"]
        if self.compiled_chains:
            parts.insert(0, f"compiled {self.compiled_count} chain(s)")
        if self.skipped:
            reasons = sorted({reason for _, reason in self.skipped})
            parts.append(
                f"skipped {len(self.skipped)} ({'; '.join(reasons)})"
            )
        return ", ".join(parts)


def fuse_component(component: Component, plan: FusionPlan | None = None) -> FusionPlan:
    """Fuse every outgoing port of one component.

    Ports whose target vtable has interceptors on any slot are left
    indirect and recorded in ``plan.skipped`` with a reason.  The
    interceptor check is cached per target vtable on the plan, so sharing
    one *plan* across a whole region (as :func:`fuse_pipeline` does) pays
    it once per interface instance, not once per port.
    """
    plan = plan if plan is not None else FusionPlan()
    cache = plan._intercepted_cache
    seen_ports = plan._seen_port_ids
    for receptacle in component.receptacles().values():
        for port in receptacle.connections():
            if id(port) in seen_ports:
                continue  # reachable through two components: fuse once
            seen_ports.add(id(port))
            vtable = port.target.vtable
            key = id(vtable)
            intercepted = cache.get(key)
            if intercepted is None:
                intercepted = [
                    m for m in vtable.iter_methods() if vtable.intercepted(m)
                ]
                cache[key] = intercepted
            if intercepted:
                plan.skipped.append(
                    (port, f"interceptors on {', '.join(intercepted)}")
                )
                continue
            port.fuse()
            plan.fused_ports.append(port)
    return plan


def fuse_pipeline(components: list[Component]) -> FusionPlan:
    """Fuse every outgoing port of every component in a region.

    Returns a single :class:`FusionPlan`; call ``plan.revert()`` before
    reconfiguring the region (the architecture meta-model's
    ``replace_component`` works either way, since unbinding destroys the
    fused ports, but reverting first keeps intent explicit).
    """
    plan = FusionPlan()
    for component in components:
        fuse_component(component, plan)
    return plan


def fusion_report(plan: FusionPlan) -> dict[str, object]:
    """Summarise a fusion pass for logs and benchmarks."""
    return {
        "fused": plan.fused_count,
        "compiled": plan.compiled_count,
        "skipped": [
            {
                "port": f"{p.receptacle.owner.name}.{p.receptacle.name}[{p.connection_name}]",
                "reason": reason,
            }
            for p, reason in plan.skipped
        ],
    }
