"""Whole-pipeline binding fusion: the partial-evaluation optimisation.

Section 5 of the paper reports "temporarily bypassing vtables, using
partial evaluation techniques, to reduce the overhead of a cross-component
call to that of a C function call".  The per-binding half of this lives on
the vtable (:meth:`repro.opencom.vtable.VTable.fuse`); this module provides
the management layer that fuses and unfuses whole regions of a capsule:

- :func:`fuse_pipeline` walks a list of components and fuses every outgoing
  port, returning a :class:`FusionPlan` that can undo the optimisation;
- fusing a port covers its scalar *and* batch call handles — push-shaped
  (``port.push_batch(pkts)``) and pull-shaped (``port.pull_batch(max_n)``)
  alike: the port's ``<method>_batch`` attributes are rewired to the
  targets' native batch callables, so a fused region forwards (and drains)
  whole batches at one call per hop;
- fusion is *safety-checked*: ports whose target slots carry interceptors
  are skipped (and reported), and later interceptor installation revokes
  fused handles — scalar and batch — automatically, so reflection is never
  silently bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.opencom.component import Component
from repro.opencom.receptacle import Port


@dataclass
class FusionPlan:
    """Record of one fusion pass, able to undo itself."""

    fused_ports: list[Port] = field(default_factory=list)
    skipped: list[tuple[Port, str]] = field(default_factory=list)
    #: Per-vtable interceptor check, computed once per pass rather than
    #: re-iterating every method for every port that shares a target
    #: (multi-receptacle fan-in hits the same vtable many times).
    _intercepted_cache: dict[int, list[str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def fused_count(self) -> int:
        """Number of ports switched to direct dispatch."""
        return len(self.fused_ports)

    def revert(self) -> None:
        """Unfuse every port this plan fused."""
        for port in self.fused_ports:
            port.unfuse()
        self.fused_ports.clear()

    def summary(self) -> str:
        """One-line human summary (used by benchmarks and logs)."""
        if not self.skipped:
            return f"fused {self.fused_count} port(s)"
        reasons = sorted({reason for _, reason in self.skipped})
        return (
            f"fused {self.fused_count} port(s), skipped {len(self.skipped)} "
            f"({'; '.join(reasons)})"
        )


def fuse_component(component: Component, plan: FusionPlan | None = None) -> FusionPlan:
    """Fuse every outgoing port of one component.

    Ports whose target vtable has interceptors on any slot are left
    indirect and recorded in ``plan.skipped`` with a reason.  The
    interceptor check is cached per target vtable on the plan, so sharing
    one *plan* across a whole region (as :func:`fuse_pipeline` does) pays
    it once per interface instance, not once per port.
    """
    plan = plan if plan is not None else FusionPlan()
    cache = plan._intercepted_cache
    for receptacle in component.receptacles().values():
        for port in receptacle.connections():
            vtable = port.target.vtable
            key = id(vtable)
            intercepted = cache.get(key)
            if intercepted is None:
                intercepted = [
                    m for m in vtable.iter_methods() if vtable.intercepted(m)
                ]
                cache[key] = intercepted
            if intercepted:
                plan.skipped.append(
                    (port, f"interceptors on {', '.join(intercepted)}")
                )
                continue
            port.fuse()
            plan.fused_ports.append(port)
    return plan


def fuse_pipeline(components: list[Component]) -> FusionPlan:
    """Fuse every outgoing port of every component in a region.

    Returns a single :class:`FusionPlan`; call ``plan.revert()`` before
    reconfiguring the region (the architecture meta-model's
    ``replace_component`` works either way, since unbinding destroys the
    fused ports, but reverting first keeps intent explicit).
    """
    plan = FusionPlan()
    for component in components:
        fuse_component(component, plan)
    return plan


def fusion_report(plan: FusionPlan) -> dict[str, object]:
    """Summarise a fusion pass for logs and benchmarks."""
    return {
        "fused": plan.fused_count,
        "skipped": [
            {
                "port": f"{p.receptacle.owner.name}.{p.receptacle.name}[{p.connection_name}]",
                "reason": reason,
            }
            for p, reason in plan.skipped
        ],
    }
