"""Whole-pipeline binding fusion: the partial-evaluation optimisation.

Section 5 of the paper reports "temporarily bypassing vtables, using
partial evaluation techniques, to reduce the overhead of a cross-component
call to that of a C function call".  The per-binding half of this lives on
the vtable (:meth:`repro.opencom.vtable.VTable.fuse`); this module provides
the management layer that fuses and unfuses whole regions of a capsule:

- :func:`fuse_pipeline` walks a list of components and fuses every outgoing
  port, returning a :class:`FusionPlan` that can undo the optimisation;
- fusion is *safety-checked*: ports whose target slots carry interceptors
  are skipped (and reported), and later interceptor installation revokes
  fused handles automatically, so reflection is never silently bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.opencom.component import Component
from repro.opencom.receptacle import Port


@dataclass
class FusionPlan:
    """Record of one fusion pass, able to undo itself."""

    fused_ports: list[Port] = field(default_factory=list)
    skipped: list[tuple[Port, str]] = field(default_factory=list)

    @property
    def fused_count(self) -> int:
        """Number of ports switched to direct dispatch."""
        return len(self.fused_ports)

    def revert(self) -> None:
        """Unfuse every port this plan fused."""
        for port in self.fused_ports:
            port.unfuse()
        self.fused_ports.clear()


def fuse_component(component: Component, plan: FusionPlan | None = None) -> FusionPlan:
    """Fuse every outgoing port of one component.

    Ports whose target vtable has interceptors on any slot are left
    indirect and recorded in ``plan.skipped`` with a reason.
    """
    plan = plan if plan is not None else FusionPlan()
    for receptacle in component.receptacles().values():
        for port in receptacle.connections():
            vtable = port.target.vtable
            intercepted = [m for m in vtable.iter_methods() if vtable.intercepted(m)]
            if intercepted:
                plan.skipped.append(
                    (port, f"interceptors on {', '.join(intercepted)}")
                )
                continue
            port.fuse()
            plan.fused_ports.append(port)
    return plan


def fuse_pipeline(components: list[Component]) -> FusionPlan:
    """Fuse every outgoing port of every component in a region.

    Returns a single :class:`FusionPlan`; call ``plan.revert()`` before
    reconfiguring the region (the architecture meta-model's
    ``replace_component`` works either way, since unbinding destroys the
    fused ports, but reverting first keeps intent explicit).
    """
    plan = FusionPlan()
    for component in components:
        fuse_component(component, plan)
    return plan


def fusion_report(plan: FusionPlan) -> dict[str, object]:
    """Summarise a fusion pass for logs and benchmarks."""
    return {
        "fused": plan.fused_count,
        "skipped": [
            {
                "port": f"{p.receptacle.owner.name}.{p.receptacle.name}[{p.connection_name}]",
                "reason": reason,
            }
            for p, reason in plan.skipped
        ],
    }
