"""Component type registry: named, versioned component factories.

Deployment in the paper's sense — shipping a new component implementation
to a node and instantiating it by name — needs a level of indirection
between component *type names* and Python classes.  The registry provides
it, together with simple semantic-version selection so that "managed
software evolution" (upgrading a deployed component type) is expressible:
register version 2, then ask the architecture meta-model to replace running
instances.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.opencom.component import Component
from repro.opencom.errors import CapsuleError


def _parse_version(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split("."))
    except ValueError:
        raise CapsuleError(f"invalid version string {text!r}") from None


@dataclass
class RegisteredType:
    """One registered component type version."""

    type_name: str
    version: str
    factory: Callable[..., Component]
    description: str = ""
    #: Free-form metadata: footprint class, target stratum, trust level ...
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def version_key(self) -> tuple[int, ...]:
        """Sortable version tuple."""
        return _parse_version(self.version)


class ComponentRegistry:
    """Registry of deployable component types.

    Multiple versions of one type name may coexist; lookups default to the
    highest version.  Registries can be *chained* (node-local registry
    falling back to a network-wide one) through the ``parent`` link, which
    is how remote deployment is modelled in the coordination stratum.
    """

    def __init__(self, parent: "ComponentRegistry | None" = None) -> None:
        self.parent = parent
        self._types: dict[str, dict[str, RegisteredType]] = {}

    def register(
        self,
        type_name: str,
        factory: Callable[..., Component],
        *,
        version: str = "1.0",
        description: str = "",
        **metadata: Any,
    ) -> RegisteredType:
        """Register a component type version.

        Re-registering the same (name, version) pair is an error; publish a
        new version instead — that is the evolution story.
        """
        versions = self._types.setdefault(type_name, {})
        if version in versions:
            raise CapsuleError(
                f"component type {type_name!r} version {version} already registered"
            )
        entry = RegisteredType(type_name, version, factory, description, metadata)
        versions[version] = entry
        return entry

    def lookup(self, type_name: str, version: str | None = None) -> RegisteredType:
        """Find a registered type (highest version by default), consulting
        parent registries on a miss."""
        versions = self._types.get(type_name)
        if versions:
            if version is not None:
                if version in versions:
                    return versions[version]
            else:
                best = max(versions.values(), key=lambda e: e.version_key)
                return best
        if self.parent is not None:
            return self.parent.lookup(type_name, version)
        suffix = f" version {version}" if version else ""
        raise CapsuleError(f"unknown component type {type_name!r}{suffix}")

    def create(
        self, type_name: str, *args: Any, version: str | None = None, **kwargs: Any
    ) -> Component:
        """Instantiate a registered type (not yet placed in a capsule)."""
        entry = self.lookup(type_name, version)
        instance = entry.factory(*args, **kwargs)
        if not isinstance(instance, Component):
            raise CapsuleError(
                f"factory for {type_name!r} produced {type(instance).__name__}, "
                "not a Component"
            )
        return instance

    def versions(self, type_name: str) -> list[str]:
        """All locally registered versions of a type, ascending."""
        versions = self._types.get(type_name, {})
        return [
            e.version
            for e in sorted(versions.values(), key=lambda e: e.version_key)
        ]

    def type_names(self) -> list[str]:
        """Locally registered type names (sorted)."""
        return sorted(self._types)

    def catalogue(self) -> list[dict[str, Any]]:
        """Describe every locally registered type/version (for shipping to
        management tools)."""
        rows: list[dict[str, Any]] = []
        for type_name in self.type_names():
            for version in self.versions(type_name):
                entry = self._types[type_name][version]
                rows.append(
                    {
                        "type": type_name,
                        "version": version,
                        "description": entry.description,
                        "metadata": dict(entry.metadata),
                    }
                )
        return rows


#: Process-wide default registry; nodes normally chain their own off this.
GLOBAL_REGISTRY = ComponentRegistry()
