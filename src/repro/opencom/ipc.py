"""Inter-capsule (out-of-address-space) bindings.

Section 5 of the paper: untrusted constituents "can be instantiated, and
remotely managed by the parent composite, in a separate address-space from
the parent (inter-component bindings in this case are transparently
realised in terms of OS-level IPC mechanisms rather than intra-address
space vtables)".

Here a capsule plays the address space and :class:`IpcChannel` the IPC
mechanism: every call is marshalled to bytes, carried "across" the
boundary, unmarshalled and dispatched through the target vtable, and the
result marshalled back.  The serialising round-trip is real (pickle), so
the overhead measured by experiment C5 is an honest analogue of
process-boundary cost, and non-serialisable arguments fail exactly where a
real IPC binding would.

Fault containment: an exception escaping the remote implementation *kills
the hosting capsule* (the crash takes down the child address space, not the
parent), and the caller observes :class:`~repro.opencom.errors.IpcFault`.
Calls into a dead capsule also raise ``IpcFault``.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.opencom.binding import Binding, BindRequest
from repro.opencom.capsule import Capsule
from repro.opencom.component import Component, InterfaceRef
from repro.opencom.errors import BindError, IpcFault, MarshalError
from repro.opencom.interfaces import Interface, methods_of
from repro.opencom.receptacle import Receptacle


class IpcChannel:
    """A byte-oriented call channel between two capsules.

    Statistics (:attr:`calls`, :attr:`bytes_sent`, :attr:`bytes_received`)
    feed the isolation benchmark.
    """

    def __init__(self, caller: Capsule, callee: Capsule) -> None:
        self.caller = caller
        self.callee = callee
        self.calls = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def call(self, target: InterfaceRef, method_name: str, args: tuple, kwargs: dict) -> Any:
        """Carry one call across the capsule boundary."""
        if not self.callee.alive:
            raise IpcFault(
                f"capsule {self.callee.name} is dead "
                f"({getattr(self.callee, 'death_reason', 'unknown')})",
                capsule_name=self.callee.name,
            )
        request = self._marshal((method_name, args, kwargs))
        self.calls += 1
        self.bytes_sent += len(request)
        # --- boundary: everything below runs "inside" the callee capsule ---
        name, call_args, call_kwargs = pickle.loads(request)
        try:
            result = target.vtable.invoke(name, *call_args, **call_kwargs)
        except Exception as exc:  # noqa: BLE001 - crash containment boundary
            self.callee.kill(reason=f"component crash: {exc!r}")
            raise IpcFault(
                f"remote component {target.component.name} crashed: {exc!r}",
                capsule_name=self.callee.name,
            ) from exc
        response = self._marshal(result)
        # --- boundary: back in the caller capsule ---------------------------
        self.bytes_received += len(response)
        return pickle.loads(response)

    @staticmethod
    def _marshal(payload: Any) -> bytes:
        try:
            return pickle.dumps(payload)
        except Exception as exc:  # noqa: BLE001 - conversion to typed error
            raise MarshalError(f"cannot marshal {type(payload).__name__}: {exc}") from exc


class _RemoteImpl:
    """Implementation object backing a proxy: one marshalling method per
    interface method, generated at construction time."""

    def __init__(self, channel: IpcChannel, target: InterfaceRef, itype: type[Interface]) -> None:
        self._channel = channel
        self._target = target
        for method in methods_of(itype):
            setattr(self, method.name, self._make_forwarder(method.name))

    def _make_forwarder(self, method_name: str):
        channel = self._channel
        target = self._target

        def forward(*args: Any, **kwargs: Any) -> Any:
            return channel.call(target, method_name, args, kwargs)

        forward.__name__ = method_name
        return forward


class RemoteProxy(Component):
    """Local stand-in for a remote interface instance.

    Exposes exactly one interface (named ``"remote"``) whose calls are
    forwarded across the channel.  Because the proxy is an ordinary local
    component, the caller-side binding is an ordinary local binding: the
    *transparency* claim of the paper.
    """

    def __init__(self, channel: IpcChannel, target: InterfaceRef) -> None:
        self._channel = channel
        self._remote_target = target
        self._impl = _RemoteImpl(channel, target, target.itype)
        super().__init__()
        self.expose("remote", target.itype, impl=self._impl)

    @property
    def channel(self) -> IpcChannel:
        """The underlying IPC channel (statistics live here)."""
        return self._channel


class RemoteBinding:
    """Handle for one cross-capsule binding.

    Owns the proxy component and the local binding on the caller side;
    ``unbind`` dismantles both.
    """

    def __init__(
        self,
        local_binding: Binding,
        proxy: RemoteProxy,
        caller_capsule: Capsule,
        callee_capsule: Capsule,
        target: InterfaceRef,
    ) -> None:
        self.local_binding = local_binding
        self.proxy = proxy
        self.caller_capsule = caller_capsule
        self.callee_capsule = callee_capsule
        self.target = target

    @property
    def channel(self) -> IpcChannel:
        """The underlying IPC channel."""
        return self.proxy.channel

    @property
    def live(self) -> bool:
        """True while the local half exists and the callee capsule lives."""
        return self.local_binding.live and self.callee_capsule.alive

    def unbind(self, *, principal: str = "system") -> None:
        """Dismantle the binding and destroy the proxy."""
        if self.local_binding.live:
            self.caller_capsule.unbind(self.local_binding, principal=principal)
        if self.proxy.name in self.caller_capsule:
            self.caller_capsule.destroy(self.proxy)


def bind_across(
    receptacle: Receptacle,
    target: InterfaceRef,
    *,
    connection_name: str | None = None,
    principal: str = "system",
) -> RemoteBinding:
    """Bind a receptacle in one capsule to an interface in another.

    The receptacle's owner and the target component must live in different
    capsules.  A :class:`RemoteProxy` is instantiated next to the caller and
    bound locally; calls then marshal across an :class:`IpcChannel`.

    The caller capsule's bind-constraint chain runs against the *logical*
    request (receptacle -> remote target) before any plumbing is created,
    so composite topology constraints police remote bindings too.
    """
    caller_capsule = receptacle.owner.capsule
    callee_capsule = target.component.capsule
    if caller_capsule is None or callee_capsule is None:
        raise BindError("both endpoints must be hosted in capsules")
    if caller_capsule is callee_capsule:
        raise BindError(
            "endpoints share a capsule; use Capsule.bind for local bindings"
        )
    name = connection_name if connection_name is not None else (
        "0" if receptacle.is_single else str(len(receptacle.connection_names()))
    )
    logical = BindRequest(
        caller_capsule, receptacle, target, name,
        operation="bind", principal=principal,
    )
    logical.metadata["remote"] = True
    caller_capsule._run_constraints(logical)

    channel = IpcChannel(caller_capsule, callee_capsule)
    proxy = RemoteProxy(channel, target)
    caller_capsule.adopt(proxy, f"proxy:{target.component.name}.{target.name}#{proxy.component_id}")
    local = Binding(caller_capsule, receptacle, proxy.interface("remote"), name, kind="ipc")
    local._establish()
    caller_capsule.register_binding(local)
    return RemoteBinding(local, proxy, caller_capsule, callee_capsule, target)
