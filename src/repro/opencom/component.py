"""Components: the unit of composition of the OpenCOM model.

A component *provides* named interface instances (each backed by a
:class:`~repro.opencom.vtable.VTable`) and *requires* interfaces through
named receptacles.  Both sets are dynamic: instances can be exposed and
withdrawn at run time, which is what lets the Router CF's rule "it is
possible to dynamically add/remove instances of these interfaces as long as
the CF's rules remain satisfied" be exercised for real.

Components are instantiated *into a capsule* (an address-space analogue);
free-standing instantiation is supported for unit tests but such components
cannot be bound.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.opencom.errors import InterfaceError, LifecycleError
from repro.opencom.interfaces import Interface, require_interface_type
from repro.opencom.receptacle import Receptacle
from repro.opencom.vtable import VTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opencom.capsule import Capsule

_COMPONENT_IDS = itertools.count(1)


@dataclass(frozen=True)
class Provided:
    """Declarative description of a provided interface instance.

    Attributes
    ----------
    name:
        Exposure name, unique within the component (e.g. ``"input"``).
    itype:
        The interface type exposed.
    impl_attr:
        Optional attribute name on the component holding the implementation
        object.  When ``None`` the component itself implements the methods.
    """

    name: str
    itype: type[Interface]
    impl_attr: str | None = None


@dataclass(frozen=True)
class Required:
    """Declarative description of a receptacle.

    ``min_connections``/``max_connections`` express the receptacle's arity;
    ``max_connections=None`` means unbounded (a multi-receptacle).
    """

    name: str
    itype: type[Interface]
    min_connections: int = 1
    max_connections: int | None = 1


class InterfaceRef:
    """Handle to one exposed interface instance of one component.

    This is what gets plugged into receptacles by ``bind``; it owns the
    vtable and is therefore also the unit at which interception applies.
    """

    __slots__ = ("component", "name", "itype", "vtable")

    def __init__(
        self, component: "Component", name: str, itype: type[Interface], vtable: VTable
    ) -> None:
        self.component = component
        self.name = name
        self.itype = itype
        self.vtable = vtable

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<InterfaceRef {self.component.name}.{self.name}:"
            f"{self.itype.interface_name()}>"
        )


class Component:
    """Base class for all OpenCOM components.

    Subclasses declare static structure through the ``PROVIDES`` and
    ``RECEPTACLES`` class attributes and may adjust it dynamically with
    :meth:`expose`, :meth:`withdraw`, :meth:`add_receptacle` and
    :meth:`remove_receptacle`.

    Lifecycle: components are created ``stopped``; :meth:`startup` moves
    them to ``running`` and :meth:`shutdown` back.  Subclasses hook
    :meth:`on_startup` / :meth:`on_shutdown` rather than overriding the
    transitions themselves.
    """

    PROVIDES: tuple[Provided, ...] = ()
    RECEPTACLES: tuple[Required, ...] = ()

    def __init__(self) -> None:
        self.component_id: int = next(_COMPONENT_IDS)
        #: Capsule-unique name; assigned when instantiated into a capsule.
        self.name: str = f"{type(self).__name__}#{self.component_id}"
        self.capsule: "Capsule | None" = None
        self.state: str = "stopped"
        self._interfaces: dict[str, InterfaceRef] = {}
        self._receptacles: dict[str, Receptacle] = {}
        for decl in self.PROVIDES:
            impl = getattr(self, decl.impl_attr) if decl.impl_attr else self
            self.expose(decl.name, decl.itype, impl=impl)
        for decl in self.RECEPTACLES:
            self.add_receptacle(
                decl.name,
                decl.itype,
                min_connections=decl.min_connections,
                max_connections=decl.max_connections,
            )

    # -- provided interfaces -------------------------------------------------

    def expose(
        self, name: str, itype: type[Interface], impl: object | None = None
    ) -> InterfaceRef:
        """Expose a new interface instance under *name*.

        The implementation defaults to the component itself.  Conformance is
        checked immediately (missing methods raise
        :class:`~repro.opencom.errors.InterfaceError`).
        """
        require_interface_type(itype)
        if name in self._interfaces:
            raise InterfaceError(f"{self.name} already exposes interface {name!r}")
        vtable = VTable(itype, impl if impl is not None else self, name)
        ref = InterfaceRef(self, name, itype, vtable)
        self._interfaces[name] = ref
        self._notify_structure_change()
        return ref

    def withdraw(self, name: str) -> None:
        """Withdraw an exposed interface instance.

        The instance must not be the target of any live binding; the capsule
        enforces this when the component is hosted.
        """
        ref = self._interfaces.get(name)
        if ref is None:
            raise InterfaceError(f"{self.name} exposes no interface {name!r}")
        if self.capsule is not None and self.capsule.bindings_to(ref):
            raise InterfaceError(
                f"cannot withdraw {self.name}.{name}: live bindings exist"
            )
        del self._interfaces[name]
        self._notify_structure_change()

    def interface(self, name: str) -> InterfaceRef:
        """Return the exposed interface instance named *name*."""
        try:
            return self._interfaces[name]
        except KeyError:
            raise InterfaceError(
                f"{self.name} exposes no interface {name!r}; has "
                f"{sorted(self._interfaces)}"
            ) from None

    def interfaces(self) -> dict[str, InterfaceRef]:
        """Snapshot of exposed interface instances (name -> ref)."""
        return dict(self._interfaces)

    def interfaces_of_type(self, itype: type[Interface]) -> list[InterfaceRef]:
        """All exposed instances of the given interface type (subtypes
        count: an IPacketSink instance satisfies an IPacketPush query)."""
        return [
            ref
            for ref in self._interfaces.values()
            if ref.itype is itype or issubclass(ref.itype, itype)
        ]

    def has_interface(self, name: str) -> bool:
        """True when an interface instance named *name* is exposed."""
        return name in self._interfaces

    # -- receptacles ----------------------------------------------------------

    def add_receptacle(
        self,
        name: str,
        itype: type[Interface],
        *,
        min_connections: int = 1,
        max_connections: int | None = 1,
    ) -> Receptacle:
        """Declare a new receptacle dynamically."""
        require_interface_type(itype)
        if name in self._receptacles:
            raise InterfaceError(f"{self.name} already has receptacle {name!r}")
        if hasattr(self, name) and name not in self._receptacles:
            # Receptacles become attributes for call convenience
            # (``self.out.push(...)``); refuse clobbering real attributes.
            existing = getattr(self, name)
            if not isinstance(existing, Receptacle):
                raise InterfaceError(
                    f"receptacle name {name!r} collides with an attribute of "
                    f"{type(self).__name__}"
                )
        receptacle = Receptacle(
            self,
            name,
            itype,
            min_connections=min_connections,
            max_connections=max_connections,
        )
        self._receptacles[name] = receptacle
        setattr(self, name, receptacle)
        self._notify_structure_change()
        return receptacle

    def remove_receptacle(self, name: str) -> None:
        """Remove a receptacle; it must have no live connections."""
        receptacle = self._receptacles.get(name)
        if receptacle is None:
            raise InterfaceError(f"{self.name} has no receptacle {name!r}")
        if receptacle.connections():
            raise InterfaceError(
                f"cannot remove receptacle {self.name}.{name}: still connected"
            )
        del self._receptacles[name]
        delattr(self, name)
        self._notify_structure_change()

    def receptacle(self, name: str) -> Receptacle:
        """Return the receptacle named *name*."""
        try:
            return self._receptacles[name]
        except KeyError:
            raise InterfaceError(
                f"{self.name} has no receptacle {name!r}; has "
                f"{sorted(self._receptacles)}"
            ) from None

    def receptacles(self) -> dict[str, Receptacle]:
        """Snapshot of declared receptacles (name -> receptacle)."""
        return dict(self._receptacles)

    def receptacles_of_type(self, itype: type[Interface]) -> list[Receptacle]:
        """All receptacles requiring the given interface type (subtype
        receptacles count)."""
        return [
            r
            for r in self._receptacles.values()
            if r.itype is itype or issubclass(r.itype, itype)
        ]

    # -- lifecycle ------------------------------------------------------------

    def startup(self) -> None:
        """Start the component (ILifeCycle)."""
        if self.state == "running":
            raise LifecycleError(f"{self.name} is already running")
        if self.state == "dead":
            raise LifecycleError(f"{self.name} has been destroyed")
        self.on_startup()
        self.state = "running"

    def shutdown(self) -> None:
        """Stop the component (ILifeCycle)."""
        if self.state != "running":
            raise LifecycleError(f"{self.name} is not running")
        self.on_shutdown()
        self.state = "stopped"

    def on_startup(self) -> None:
        """Subclass hook run during :meth:`startup`."""

    def on_shutdown(self) -> None:
        """Subclass hook run during :meth:`shutdown`."""

    # -- introspection (IMetaInterface) ---------------------------------------

    def enum_interfaces(self) -> list[dict[str, Any]]:
        """Describe exposed interface instances (interface meta-model)."""
        return [
            {
                "name": name,
                "interface": ref.itype.interface_name(),
                "version": ref.itype.VERSION,
                "intercepted": [
                    m for m in ref.vtable.iter_methods() if ref.vtable.intercepted(m)
                ],
            }
            for name, ref in sorted(self._interfaces.items())
        ]

    def enum_receptacles(self) -> list[dict[str, Any]]:
        """Describe declared receptacles (interface meta-model)."""
        return [
            {
                "name": name,
                "interface": r.itype.interface_name(),
                "min": r.min_connections,
                "max": r.max_connections,
                "connected": sorted(r.connection_names()),
            }
            for name, r in sorted(self._receptacles.items())
        ]

    # -- internals ------------------------------------------------------------

    def _notify_structure_change(self) -> None:
        if self.capsule is not None:
            self.capsule.architecture.component_changed(self)

    def iter_interface_refs(self) -> Iterator[InterfaceRef]:
        """Iterate exposed interface refs (stable name order)."""
        for name in sorted(self._interfaces):
            yield self._interfaces[name]

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<{type(self).__name__} {self.name} state={self.state}>"
