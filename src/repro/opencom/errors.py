"""Exception hierarchy for the OpenCOM component model.

Every error raised by :mod:`repro.opencom` derives from :class:`OpenComError`
so that callers embedding the runtime (component frameworks, the router data
path, the coordination stratum) can establish a single fault boundary.
"""

from __future__ import annotations


class OpenComError(Exception):
    """Base class for all OpenCOM runtime errors."""


class InterfaceError(OpenComError):
    """An interface declaration or lookup is invalid.

    Raised when a class used as an interface type does not derive from
    :class:`repro.opencom.interfaces.Interface`, when an implementation is
    missing a declared method, or when an interface name is not exposed by a
    component.
    """


class ReceptacleError(OpenComError):
    """A receptacle operation is invalid.

    Raised on type mismatches between a receptacle and the interface being
    plugged into it, on arity violations (too few or too many connections),
    and on calls through an unbound single receptacle.
    """


class BindError(OpenComError):
    """A ``bind`` or ``unbind`` operation could not be carried out."""


class ConstraintViolation(BindError):
    """A bind-time constraint (interceptor on the bind primitive) rejected
    the requested binding.

    The component-framework layer installs these constraints to police the
    internal topology of composite components (paper, section 5).
    """

    def __init__(self, constraint_name: str, reason: str) -> None:
        super().__init__(f"constraint {constraint_name!r} rejected bind: {reason}")
        self.constraint_name = constraint_name
        self.reason = reason


class RuleViolation(OpenComError):
    """A component framework's plug-in rules rejected a component.

    Carries the individual rule failures so that callers (and tests) can
    check exactly which rule fired.
    """

    def __init__(self, component_name: str, failures: list[str]) -> None:
        joined = "; ".join(failures)
        super().__init__(f"component {component_name!r} violates CF rules: {joined}")
        self.component_name = component_name
        self.failures = list(failures)


class CapsuleError(OpenComError):
    """A capsule-level operation failed (unknown component, duplicate name,
    operation on a dead capsule, ...)."""


class LifecycleError(OpenComError):
    """A component lifecycle transition was invalid (e.g. starting a
    component twice, or using a component after shutdown)."""


class IpcFault(OpenComError):
    """A call across an inter-capsule (out-of-address-space) binding failed.

    This is the fault-containment boundary of the model: a crash of an
    untrusted constituent in a child capsule surfaces in the parent as an
    ``IpcFault`` rather than as the original exception, mirroring the
    process-isolation design of section 5 of the paper.
    """

    def __init__(self, message: str, *, capsule_name: str | None = None) -> None:
        super().__init__(message)
        self.capsule_name = capsule_name


class MarshalError(IpcFault):
    """An argument or result could not be serialised across an IPC binding."""


class ResourceError(OpenComError):
    """Resource meta-model error: over-allocation, unknown pool or task."""


class AccessDenied(OpenComError):
    """An ACL check refused a management operation (constraint addition or
    removal, controller access, placement override)."""

    def __init__(self, principal: str, operation: str) -> None:
        super().__init__(f"principal {principal!r} may not perform {operation!r}")
        self.principal = principal
        self.operation = operation


class PlacementError(OpenComError):
    """The placement meta-model could not produce or apply a placement."""


class QuiesceTimeout(OpenComError):
    """A reconfiguration could not quiesce the target region in time."""
