"""OpenCOM: the reflective component model underpinning NETKIT.

Public surface of the component runtime: interface declaration, components
with receptacles, capsules and the bind primitive, the four meta-models
(interface, architecture, interception, resources), binding fusion and
inter-capsule IPC bindings.
"""

from repro.opencom.binding import Binding, BindRequest
from repro.opencom.capsule import Capsule
from repro.opencom.component import Component, InterfaceRef, Provided, Required
from repro.opencom.errors import (
    AccessDenied,
    BindError,
    CapsuleError,
    ConstraintViolation,
    InterfaceError,
    IpcFault,
    LifecycleError,
    MarshalError,
    OpenComError,
    PlacementError,
    QuiesceTimeout,
    ReceptacleError,
    ResourceError,
    RuleViolation,
)
from repro.opencom.compile import (
    CompilationPlan,
    CompileError,
    CompiledBatchCall,
    CompiledPullBatchCall,
    SourceContext,
    compile_pull,
    compile_push_chain,
)
from repro.opencom.fusion import FusionPlan, fuse_component, fuse_pipeline
from repro.opencom.interfaces import (
    ILifeCycle,
    IMetaInterface,
    Interface,
    MethodSignature,
    implements,
    lookup_interface,
    methods_of,
    registered_interfaces,
)
from repro.opencom.ipc import IpcChannel, RemoteBinding, RemoteProxy, bind_across
from repro.opencom.metamodel.architecture import ArchitectureMetaModel, GraphView
from repro.opencom.metamodel.interception import (
    AdmissionGate,
    CallCounter,
    CallTrace,
    Interceptor,
    intercept_interface,
)
from repro.opencom.metamodel.interface_meta import (
    describe_component,
    describe_interface,
    type_library,
)
from repro.opencom.metamodel.resources import ResourceMetaModel, ResourcePool, Task
from repro.opencom.receptacle import Port, Receptacle
from repro.opencom.registry import GLOBAL_REGISTRY, ComponentRegistry, RegisteredType
from repro.opencom.vtable import (
    CallContext,
    FusedBatchCall,
    FusedCall,
    FusedPullBatchCall,
    VTable,
)

__all__ = [
    "AccessDenied",
    "AdmissionGate",
    "ArchitectureMetaModel",
    "BindError",
    "BindRequest",
    "Binding",
    "CallContext",
    "CallCounter",
    "CallTrace",
    "Capsule",
    "CapsuleError",
    "CompilationPlan",
    "CompileError",
    "CompiledBatchCall",
    "CompiledPullBatchCall",
    "Component",
    "ComponentRegistry",
    "ConstraintViolation",
    "FusedBatchCall",
    "FusedCall",
    "FusedPullBatchCall",
    "FusionPlan",
    "GLOBAL_REGISTRY",
    "GraphView",
    "ILifeCycle",
    "IMetaInterface",
    "Interceptor",
    "Interface",
    "InterfaceError",
    "InterfaceRef",
    "IpcChannel",
    "IpcFault",
    "LifecycleError",
    "MarshalError",
    "MethodSignature",
    "OpenComError",
    "PlacementError",
    "Port",
    "Provided",
    "QuiesceTimeout",
    "Receptacle",
    "ReceptacleError",
    "RegisteredType",
    "RemoteBinding",
    "RemoteProxy",
    "Required",
    "ResourceError",
    "ResourceMetaModel",
    "ResourcePool",
    "RuleViolation",
    "SourceContext",
    "Task",
    "VTable",
    "bind_across",
    "compile_pull",
    "compile_push_chain",
    "describe_component",
    "describe_interface",
    "fuse_component",
    "fuse_pipeline",
    "implements",
    "intercept_interface",
    "lookup_interface",
    "methods_of",
    "registered_interfaces",
    "type_library",
]
