"""Interface types for the OpenCOM component model.

In the paper, OpenCOM components interact through *interfaces* (provided)
and *receptacles* (required interfaces).  Interface types are
language-independent and introspectable through a "type library".  In this
reproduction an interface type is a plain Python class deriving from
:class:`Interface` whose methods are *declarations*: bodies are never
executed, only their names and signatures matter.  The module keeps a global
registry (the type-library analogue) so the interface meta-model can
enumerate and look up types by name.

Example
-------
>>> class IGreeter(Interface):
...     '''Says hello.'''
...     def greet(self, name: str) -> str: ...
>>> IGreeter.interface_name()
'IGreeter'
>>> [m.name for m in methods_of(IGreeter)]
['greet']
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.opencom.errors import InterfaceError

#: Global interface type registry: name -> Interface subclass.  This plays
#: the role of the Windows type library the paper's introspection builds on.
_INTERFACE_REGISTRY: dict[str, type["Interface"]] = {}


@dataclass(frozen=True)
class MethodSignature:
    """Introspected description of one interface method.

    Attributes
    ----------
    name:
        The method name.
    parameters:
        Parameter names excluding ``self``, in declaration order.
    doc:
        The method docstring, or ``""``.
    annotations:
        Mapping of parameter name (and ``"return"``) to annotation, as
        written in the declaration.  Annotations are informational only;
        the runtime does not enforce them.
    """

    name: str
    parameters: tuple[str, ...]
    doc: str = ""
    annotations: dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def arity(self) -> int:
        """Number of declared parameters (excluding ``self``)."""
        return len(self.parameters)


class Interface:
    """Base class for all OpenCOM interface types.

    Subclassing registers the type in the global type library.  Interface
    classes are declarations only: they are never instantiated, and their
    method bodies (conventionally ``...``) are never run.

    Class attributes
    ----------------
    VERSION:
        Interface version; components and receptacles only match when their
        interface types are the same class, so versioning is by identity,
        but the version string is exposed for introspection.
    """

    VERSION = "1.0"

    def __init__(self) -> None:
        raise InterfaceError(
            f"interface type {type(self).__name__} is a declaration and "
            "cannot be instantiated"
        )

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        name = cls.__name__
        existing = _INTERFACE_REGISTRY.get(name)
        if existing is not None and existing is not cls:
            # Re-declaration happens legitimately under test re-imports;
            # keep the newest declaration but only if it is structurally
            # identical, otherwise refuse the ambiguity.
            if _method_names(existing) != _method_names(cls):
                raise InterfaceError(
                    f"interface name {name!r} re-declared with a different "
                    "method set"
                )
        _INTERFACE_REGISTRY[name] = cls

    @classmethod
    def interface_name(cls) -> str:
        """Registry name of this interface type."""
        return cls.__name__


def _method_names(itype: type[Interface]) -> tuple[str, ...]:
    return tuple(sorted(m.name for m in methods_of(itype)))


def is_interface_type(obj: object) -> bool:
    """Return True when *obj* is a concrete interface type (a strict
    subclass of :class:`Interface`)."""
    return isinstance(obj, type) and issubclass(obj, Interface) and obj is not Interface


def require_interface_type(obj: object) -> type[Interface]:
    """Validate and return *obj* as an interface type, raising
    :class:`InterfaceError` otherwise."""
    if not is_interface_type(obj):
        raise InterfaceError(f"{obj!r} is not an Interface subclass")
    return obj  # type: ignore[return-value]


def methods_of(itype: type[Interface]) -> list[MethodSignature]:
    """Introspect the declared methods of an interface type.

    Inherited methods from intermediate interface bases are included;
    anything defined on :class:`Interface` itself or dunder-named is not.
    Results are sorted by declaration order within each class, base classes
    first, which gives stable "vtable slot" ordering.
    """
    require_interface_type(itype)
    signatures: list[MethodSignature] = []
    seen: set[str] = set()
    # Walk the MRO base-first so overridden declarations keep base ordering.
    for klass in reversed(itype.__mro__):
        if klass in (object, Interface):
            continue
        for name, member in vars(klass).items():
            if name.startswith("_") or not callable(member):
                continue
            if name in seen:
                continue
            seen.add(name)
            sig = inspect.signature(member)
            params = tuple(p for p in sig.parameters if p != "self")
            annotations = dict(getattr(member, "__annotations__", {}))
            signatures.append(
                MethodSignature(
                    name=name,
                    parameters=params,
                    doc=inspect.getdoc(member) or "",
                    annotations=annotations,
                )
            )
    return signatures


def lookup_interface(name: str) -> type[Interface]:
    """Look an interface type up by registry name.

    Raises
    ------
    InterfaceError
        If no interface of that name has been declared.
    """
    try:
        return _INTERFACE_REGISTRY[name]
    except KeyError:
        raise InterfaceError(f"unknown interface type {name!r}") from None


def registered_interfaces() -> dict[str, type[Interface]]:
    """Snapshot of the global type library (name -> type)."""
    return dict(_INTERFACE_REGISTRY)


def implements(impl: object, itype: type[Interface]) -> list[str]:
    """Check structurally whether *impl* provides every method of *itype*.

    Returns a list of human-readable problems; an empty list means the
    implementation conforms.  Conformance is structural (duck-typed): the
    implementation must expose a callable for every declared method with a
    compatible parameter count.  Implementations may accept extra optional
    parameters.
    """
    problems: list[str] = []
    for method in methods_of(itype):
        candidate = getattr(impl, method.name, None)
        if candidate is None:
            problems.append(f"missing method {method.name!r}")
            continue
        if not callable(candidate):
            problems.append(f"attribute {method.name!r} is not callable")
            continue
        try:
            sig = inspect.signature(candidate)
        except (TypeError, ValueError):
            # Builtins without introspectable signatures: accept on faith.
            continue
        required = [
            p
            for p in sig.parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
            and p.name != "self"
        ]
        has_var_positional = any(
            p.kind is inspect.Parameter.VAR_POSITIONAL for p in sig.parameters.values()
        )
        if len(required) > method.arity and not has_var_positional:
            problems.append(
                f"method {method.name!r} requires {len(required)} arguments "
                f"but the interface declares {method.arity}"
            )
    return problems


# ---------------------------------------------------------------------------
# Core lifecycle interfaces shared by the whole system.
# ---------------------------------------------------------------------------


class ILifeCycle(Interface):
    """Standard lifecycle interface supported by every OpenCOM component."""

    def startup(self) -> None:
        """Transition the component into the running state."""
        ...

    def shutdown(self) -> None:
        """Transition the component into the stopped state, releasing any
        held resources."""
        ...


class IMetaInterface(Interface):
    """Standard meta-interface for introspecting a component's interfaces
    and receptacles (the interface meta-model entry point)."""

    def enum_interfaces(self) -> list:
        """Enumerate exposed interface descriptions."""
        ...

    def enum_receptacles(self) -> list:
        """Enumerate declared receptacle descriptions."""
        ...
