"""The ``bind`` primitive: connecting receptacles to interface instances.

``bind`` is the single composition operation of the model, and therefore the
natural place to hang *constraints*: the paper implements per-component
topology constraints "as interceptors on OpenCOM's 'bind' primitive".  This
module defines the binding record and the constraint protocol; the capsule
(:mod:`repro.opencom.capsule`) runs the constraint chain on every bind and
unbind inside its address space.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.opencom.errors import BindError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opencom.capsule import Capsule
    from repro.opencom.component import InterfaceRef
    from repro.opencom.receptacle import Port, Receptacle

_BINDING_IDS = itertools.count(1)


@dataclass
class BindRequest:
    """Description of a requested bind, handed to bind constraints.

    Constraints may veto the bind by raising
    :class:`~repro.opencom.errors.ConstraintViolation`; they must not mutate
    the request.
    """

    capsule: "Capsule"
    receptacle: "Receptacle"
    target: "InterfaceRef"
    connection_name: str
    #: "bind" or "unbind".
    operation: str = "bind"
    #: Principal on whose behalf the operation runs (ACL subject).
    principal: str = "system"
    #: Scratch space for cooperating constraints.
    metadata: dict[str, Any] = field(default_factory=dict)


#: A bind constraint: called with the request; raises ConstraintViolation to
#: veto.  Return value is ignored.
BindConstraint = Callable[[BindRequest], None]


class Binding:
    """A live binding between one receptacle connection and one interface
    instance.

    Bindings are created through :meth:`repro.opencom.capsule.Capsule.bind`
    (local) or :func:`repro.opencom.ipc.bind_across` (inter-capsule).  The
    ``kind`` attribute distinguishes the two transparently to callers, which
    is exactly the transparency claim of section 5 of the paper.
    """

    def __init__(
        self,
        capsule: "Capsule",
        receptacle: "Receptacle",
        target: "InterfaceRef",
        connection_name: str,
        *,
        kind: str = "local",
    ) -> None:
        self.binding_id: int = next(_BINDING_IDS)
        self.capsule = capsule
        self.receptacle = receptacle
        self.target = target
        self.connection_name = connection_name
        self.kind = kind
        self.live = False
        self.port: "Port | None" = None

    # -- lifecycle (driven by the capsule) ------------------------------------

    def _establish(self) -> None:
        if self.live:
            raise BindError(f"binding {self.binding_id} already established")
        self.port = self.receptacle._attach(self.connection_name, self.target, self)
        self.live = True

    def _teardown(self) -> None:
        if not self.live:
            raise BindError(f"binding {self.binding_id} is not live")
        self.receptacle._detach(self.connection_name)
        self.live = False
        self.port = None

    def unbind(self, *, principal: str = "system") -> None:
        """Tear this binding down through the owning capsule (constraint
        chain included)."""
        self.capsule.unbind(self, principal=principal)

    # -- convenience -----------------------------------------------------------

    @property
    def source_component(self) -> Any:
        """The component owning the receptacle side."""
        return self.receptacle.owner

    @property
    def target_component(self) -> Any:
        """The component owning the provided side."""
        return self.target.component

    def describe(self) -> dict[str, Any]:
        """Human-readable record used by the architecture meta-model."""
        return {
            "id": self.binding_id,
            "kind": self.kind,
            "source": self.source_component.name,
            "receptacle": self.receptacle.name,
            "connection": self.connection_name,
            "target": self.target_component.name,
            "interface": self.target.name,
            "interface_type": self.target.itype.interface_name(),
            "live": self.live,
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<Binding#{self.binding_id} {self.source_component.name}."
            f"{self.receptacle.name}[{self.connection_name}] -> "
            f"{self.target_component.name}.{self.target.name} ({self.kind})>"
        )
