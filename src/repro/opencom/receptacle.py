"""Receptacles: named required interfaces of a component.

A receptacle is the "required" half of a binding.  Calls made by the owning
component travel through the receptacle to the vtable of the interface
instance plugged into it.  Two call styles are supported:

- *single receptacles* (``max_connections=1``) forward interface methods
  directly: ``self.out.push(pkt)``;
- *multi receptacles* expose named ports: ``self.out["ipv4"].push(pkt)``,
  and iterate over connected ports.

Each connection dispatches in one of two regimes (see
:mod:`repro.opencom.vtable`): ``indirect`` through the vtable (the default,
always observes interceptors) or ``fused`` via revocable direct-call
handles.  ``Receptacle.fuse()`` switches a connection to the fused regime;
interceptor installation transparently reverts it.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.opencom.errors import ReceptacleError
from repro.opencom.interfaces import Interface, methods_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opencom.binding import Binding
    from repro.opencom.component import Component, InterfaceRef


class _IndirectCall:
    """Callable dispatching one method through the live vtable.

    Kept as a tiny class rather than a closure so ports can introspect and
    replace their call handles when switching dispatch regimes.
    """

    __slots__ = ("_vtable", "_name")

    def __init__(self, vtable: Any, name: str) -> None:
        self._vtable = vtable
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._vtable.invoke(self._name, *args, **kwargs)


class _IndirectBatchCall:
    """Callable dispatching a whole list through the live vtable's batch
    path (one call per item, or the target's native batch method when the
    slot is unintercepted)."""

    __slots__ = ("_vtable", "_name")

    def __init__(self, vtable: Any, name: str) -> None:
        self._vtable = vtable
        self._name = name

    def __call__(self, items: list) -> None:
        self._vtable.invoke_batch(self._name, items)


class _IndirectPullBatchCall:
    """Callable drawing up to ``max_n`` items through the live vtable's
    pull-batch path (the target's native batch method while unintercepted,
    one interposed pull per item otherwise)."""

    __slots__ = ("_vtable", "_name")

    def __init__(self, vtable: Any, name: str) -> None:
        self._vtable = vtable
        self._name = name

    def __call__(self, max_n: int) -> list:
        return self._vtable.invoke_pull_batch(self._name, max_n)


class Port:
    """One live connection of a receptacle.

    Interface methods are materialised as instance attributes at connect
    time, so a data-path call is one attribute load plus one call.

    Every single-argument interface method additionally gets a
    ``<method>_batch`` attribute accepting a list (``port.push_batch(pkts)``).
    In the indirect regime it routes through
    :meth:`~repro.opencom.vtable.VTable.invoke_batch`; fusing the port
    (see :meth:`fuse`) installs the target's native batch callable
    directly, with the same revoke-on-interception guarantee as scalar
    fusion.

    Zero-argument (pull-style) interface methods get the pull-shaped
    twin: a ``<method>_batch`` attribute accepting a count and returning a
    list (``port.pull_batch(max_n)``), routed through
    :meth:`~repro.opencom.vtable.VTable.invoke_pull_batch` in the indirect
    regime and through the target's native pull-batch callable when
    fused — again with automatic revocation the moment the scalar slot is
    intercepted.
    """

    def __init__(
        self,
        receptacle: "Receptacle",
        connection_name: str,
        target: "InterfaceRef",
        binding: "Binding",
    ) -> None:
        self.receptacle = receptacle
        self.connection_name = connection_name
        self.target = target
        self.binding = binding
        self.fused = False
        methods = methods_of(target.itype)
        self._method_names = [m.name for m in methods]
        #: batch attribute name -> underlying method name; synthesized only
        #: for single-argument methods (push-style), and only when the name
        #: is free (not a declared method, not part of the Port API).
        self._batch_names: dict[str, str] = {}
        #: Same mapping for zero-argument methods (pull-style); these get
        #: pull-shaped batch handles (``handle(max_n) -> list``).
        self._pull_batch_names: dict[str, str] = {}
        declared = set(self._method_names)
        for m in methods:
            batch_name = f"{m.name}_batch"
            if batch_name in declared or hasattr(Port, batch_name):
                continue
            if m.arity == 1:
                self._batch_names[batch_name] = m.name
            elif m.arity == 0:
                self._pull_batch_names[batch_name] = m.name
        self._unwatchers: list = []
        for reserved in self._method_names:
            if hasattr(Port, reserved):
                raise ReceptacleError(
                    f"interface method name {reserved!r} collides with the "
                    "Port API"
                )
        self._install_indirect()

    def _install_indirect(self) -> None:
        for unwatch in self._unwatchers:
            unwatch()
        self._unwatchers.clear()
        vtable = self.target.vtable
        for name in self._method_names:
            setattr(self, name, _IndirectCall(vtable, name))
        for batch_name, name in self._batch_names.items():
            setattr(self, batch_name, _IndirectBatchCall(vtable, name))
        for batch_name, name in self._pull_batch_names.items():
            setattr(self, batch_name, _IndirectPullBatchCall(vtable, name))
        self.fused = False

    def fuse(self) -> None:
        """Switch this port's calls to fused (direct) dispatch.

        The vtable installs the *raw bound method* as this port's call
        attribute — the partial-evaluation result: a cross-component call
        at plain-function-call cost.  Interceptor changes on the target
        slot transparently re-install the dispatch closure, so reflection
        is never bypassed.
        """
        if self.fused:
            return
        vtable = self.target.vtable
        for name in self._method_names:
            self._unwatchers.append(
                vtable.watch_slot(name, lambda target, n=name: setattr(self, n, target))
            )
        for batch_name, name in self._batch_names.items():
            self._unwatchers.append(
                vtable.watch_batch_slot(
                    name, lambda target, n=batch_name: setattr(self, n, target)
                )
            )
        for batch_name, name in self._pull_batch_names.items():
            self._unwatchers.append(
                vtable.watch_pull_batch_slot(
                    name, lambda target, n=batch_name: setattr(self, n, target)
                )
            )
        self.fused = True

    def unfuse(self) -> None:
        """Return to indirect vtable dispatch."""
        self._install_indirect()

    def call(self, method_name: str, *args: Any, **kwargs: Any) -> Any:
        """Late-bound call by method name (reflective invocation path)."""
        return self.target.vtable.invoke(method_name, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<Port {self.receptacle.owner.name}.{self.receptacle.name}"
            f"[{self.connection_name}] -> {self.target!r}>"
        )


class Receptacle:
    """A named required interface with arity constraints.

    Connections are keyed by *connection name*.  Single receptacles use the
    reserved name ``"0"`` by default and additionally forward interface
    methods directly (``receptacle.method(...)``).
    """

    def __init__(
        self,
        owner: "Component",
        name: str,
        itype: type[Interface],
        *,
        min_connections: int = 1,
        max_connections: int | None = 1,
    ) -> None:
        if min_connections < 0:
            raise ReceptacleError("min_connections must be >= 0")
        if max_connections is not None and max_connections < max(min_connections, 1):
            raise ReceptacleError("max_connections must be >= max(min_connections, 1)")
        self.owner = owner
        self.name = name
        self.itype = itype
        self.min_connections = min_connections
        self.max_connections = max_connections
        self._ports: dict[str, Port] = {}

    # -- connection management (driven by the bind primitive) -----------------

    def _attach(
        self, connection_name: str, target: "InterfaceRef", binding: "Binding"
    ) -> Port:
        if not (target.itype is self.itype or issubclass(target.itype, self.itype)):
            raise ReceptacleError(
                f"receptacle {self.owner.name}.{self.name} requires "
                f"{self.itype.interface_name()} but was offered "
                f"{target.itype.interface_name()}"
            )
        if self.max_connections is not None and len(self._ports) >= self.max_connections:
            raise ReceptacleError(
                f"receptacle {self.owner.name}.{self.name} is full "
                f"(max {self.max_connections})"
            )
        if connection_name in self._ports:
            raise ReceptacleError(
                f"receptacle {self.owner.name}.{self.name} already has a "
                f"connection named {connection_name!r}"
            )
        port = Port(self, connection_name, target, binding)
        self._ports[connection_name] = port
        return port

    def _detach(self, connection_name: str) -> None:
        if connection_name not in self._ports:
            raise ReceptacleError(
                f"receptacle {self.owner.name}.{self.name} has no connection "
                f"named {connection_name!r}"
            )
        del self._ports[connection_name]

    # -- introspection ---------------------------------------------------------

    def connections(self) -> list[Port]:
        """Live ports in stable connection-name order."""
        return [self._ports[k] for k in sorted(self._ports)]

    def connection_names(self) -> list[str]:
        """Names of live connections."""
        return sorted(self._ports)

    def port(self, connection_name: str) -> Port:
        """Return the port for one named connection."""
        try:
            return self._ports[connection_name]
        except KeyError:
            raise ReceptacleError(
                f"receptacle {self.owner.name}.{self.name} has no connection "
                f"named {connection_name!r}"
            ) from None

    @property
    def is_single(self) -> bool:
        """True for single-connection receptacles."""
        return self.max_connections == 1

    @property
    def bound(self) -> bool:
        """True when at least one connection is live."""
        return bool(self._ports)

    def satisfied(self) -> bool:
        """True when the arity constraint is currently met."""
        return len(self._ports) >= self.min_connections

    def fuse(self) -> None:
        """Fuse every live port (direct dispatch)."""
        for port in self._ports.values():
            port.fuse()

    def unfuse(self) -> None:
        """Unfuse every live port (vtable dispatch)."""
        for port in self._ports.values():
            port.unfuse()

    # -- call convenience --------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only reached for names not found normally: forward interface
        # methods when exactly one connection is live.
        ports = object.__getattribute__(self, "_ports")
        if len(ports) == 1:
            (port,) = ports.values()
            try:
                return getattr(port, name)
            except AttributeError:
                pass
        if not ports and not name.startswith("_"):
            raise ReceptacleError(
                f"receptacle {self.owner.name}.{self.name} is unbound; "
                f"cannot access {name!r}"
            )
        raise AttributeError(name)

    def __getitem__(self, connection_name: str) -> Port:
        return self.port(connection_name)

    def __iter__(self) -> Iterator[Port]:
        return iter(self.connections())

    def __len__(self) -> int:
        return len(self._ports)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<Receptacle {self.owner.name}.{self.name}:"
            f"{self.itype.interface_name()} "
            f"[{len(self._ports)}/{self.max_connections or 'inf'}]>"
        )
