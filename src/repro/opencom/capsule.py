"""Capsules: the address-space analogue hosting component instances.

A capsule owns a set of component instances, the bindings among them, the
per-address-space meta-models (architecture, resources) and the constraint
chain applied to the bind primitive.  Untrusted components are instantiated
in *child* capsules and bound across capsule boundaries through IPC
(:mod:`repro.opencom.ipc`), reproducing the isolation design of section 5.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.opencom.binding import Binding, BindConstraint, BindRequest
from repro.opencom.component import Component, InterfaceRef
from repro.opencom.errors import BindError, CapsuleError
from repro.opencom.events import EventBus
from repro.opencom.metamodel.architecture import ArchitectureMetaModel
from repro.opencom.metamodel.resources import ResourceMetaModel
from repro.opencom.receptacle import Receptacle


class Capsule:
    """An address space hosting components, bindings, and meta-models.

    Parameters
    ----------
    name:
        Diagnostic name, unique among siblings.
    parent:
        The capsule that spawned this one (``None`` for root capsules).
        Parent/child structure models the paper's separate-address-space
        isolation of untrusted constituents.
    """

    def __init__(self, name: str, parent: "Capsule | None" = None) -> None:
        self.name = name
        self.parent = parent
        self.children: dict[str, Capsule] = {}
        self.alive = True
        self.events = EventBus()
        self._components: dict[str, Component] = {}
        self._bindings: dict[int, Binding] = {}
        self._constraints: dict[str, BindConstraint] = {}
        self.architecture = ArchitectureMetaModel(self)
        self.resources = ResourceMetaModel(self)
        if parent is not None:
            if name in parent.children:
                raise CapsuleError(f"capsule {parent.name} already has child {name!r}")
            parent.children[name] = self

    # -- component lifecycle ----------------------------------------------------

    def instantiate(
        self,
        component_type: type[Component] | Callable[..., Component],
        name: str | None = None,
        /,
        *args: Any,
        **kwargs: Any,
    ) -> Component:
        """Create a component instance inside this capsule.

        ``component_type`` may be a Component subclass or any factory
        returning one.  ``name`` defaults to a unique name derived from the
        type.  Extra arguments are forwarded to the constructor.
        """
        self._require_alive()
        instance = component_type(*args, **kwargs)
        if not isinstance(instance, Component):
            raise CapsuleError(
                f"factory {component_type!r} did not produce a Component"
            )
        if name is not None:
            instance.name = name
        if instance.name in self._components:
            raise CapsuleError(
                f"capsule {self.name} already hosts a component named "
                f"{instance.name!r}"
            )
        instance.capsule = self
        self._components[instance.name] = instance
        self.architecture.component_added(instance)
        self.events.publish(
            "architecture.instantiate",
            capsule=self.name,
            component=instance.name,
            type=type(instance).__name__,
        )
        return instance

    def adopt(self, instance: Component, name: str | None = None) -> Component:
        """Take ownership of an externally constructed component instance."""
        self._require_alive()
        if instance.capsule is not None:
            raise CapsuleError(
                f"component {instance.name} already lives in capsule "
                f"{instance.capsule.name}"
            )
        if name is not None:
            instance.name = name
        if instance.name in self._components:
            raise CapsuleError(
                f"capsule {self.name} already hosts a component named "
                f"{instance.name!r}"
            )
        instance.capsule = self
        self._components[instance.name] = instance
        self.architecture.component_added(instance)
        self.events.publish(
            "architecture.instantiate",
            capsule=self.name,
            component=instance.name,
            type=type(instance).__name__,
        )
        return instance

    def destroy(self, component: Component | str) -> None:
        """Destroy a hosted component.

        All bindings touching the component must have been unbound first;
        destroying a component with live bindings is a structural error the
        architecture meta-model refuses.
        """
        instance = self._resolve(component)
        touching = [
            b
            for b in self._bindings.values()
            if b.source_component is instance or b.target_component is instance
        ]
        if touching:
            raise CapsuleError(
                f"cannot destroy {instance.name}: {len(touching)} live "
                "binding(s) reference it"
            )
        if instance.state == "running":
            instance.shutdown()
        del self._components[instance.name]
        instance.capsule = None
        instance.state = "dead"
        self.architecture.component_removed(instance)
        self.events.publish(
            "architecture.destroy", capsule=self.name, component=instance.name
        )

    def rename(self, component: Component | str, new_name: str) -> Component:
        """Rename a hosted component (used by hot swap to let a replacement
        take over the name of the component it replaced)."""
        instance = self._resolve(component)
        if new_name == instance.name:
            return instance
        if new_name in self._components:
            raise CapsuleError(
                f"capsule {self.name} already hosts a component named {new_name!r}"
            )
        old_name = instance.name
        del self._components[old_name]
        instance.name = new_name
        self._components[new_name] = instance
        self.architecture.component_changed(instance)
        self.events.publish(
            "architecture.rename",
            capsule=self.name,
            component=new_name,
            previous=old_name,
        )
        return instance

    def component(self, name: str) -> Component:
        """Look a hosted component up by name."""
        try:
            return self._components[name]
        except KeyError:
            raise CapsuleError(
                f"capsule {self.name} hosts no component {name!r}"
            ) from None

    def components(self) -> dict[str, Component]:
        """Snapshot of hosted components (name -> instance)."""
        return dict(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __iter__(self) -> Iterator[Component]:
        return iter(list(self._components.values()))

    def __len__(self) -> int:
        return len(self._components)

    # -- the bind primitive -------------------------------------------------------

    def bind(
        self,
        receptacle: Receptacle,
        target: InterfaceRef,
        *,
        connection_name: str | None = None,
        principal: str = "system",
    ) -> Binding:
        """Bind a receptacle connection to an interface instance.

        Both endpoints must be hosted by this capsule (cross-capsule
        bindings go through :func:`repro.opencom.ipc.bind_across`).  The
        constraint chain runs before the connection is made; any constraint
        may veto by raising ``ConstraintViolation``.
        """
        self._require_alive()
        self._require_hosted(receptacle.owner)
        self._require_hosted(target.component)
        name = connection_name if connection_name is not None else self._auto_connection_name(receptacle)
        request = BindRequest(
            self, receptacle, target, name, operation="bind", principal=principal
        )
        self._run_constraints(request)
        binding = Binding(self, receptacle, target, name, kind="local")
        binding._establish()
        self._bindings[binding.binding_id] = binding
        self.architecture.binding_added(binding)
        self.events.publish(
            "architecture.bind", capsule=self.name, **binding.describe()
        )
        return binding

    def unbind(self, binding: Binding, *, principal: str = "system") -> None:
        """Tear a binding down (constraint chain included)."""
        self._require_alive()
        if binding.binding_id not in self._bindings:
            raise BindError(
                f"binding #{binding.binding_id} is not registered with "
                f"capsule {self.name}"
            )
        request = BindRequest(
            self,
            binding.receptacle,
            binding.target,
            binding.connection_name,
            operation="unbind",
            principal=principal,
        )
        self._run_constraints(request)
        described = binding.describe()
        binding._teardown()
        del self._bindings[binding.binding_id]
        self.architecture.binding_removed(binding)
        self.events.publish("architecture.unbind", capsule=self.name, **described)

    def register_binding(self, binding: Binding) -> None:
        """Register an externally-constructed binding (IPC layer hook)."""
        self._bindings[binding.binding_id] = binding
        self.architecture.binding_added(binding)
        self.events.publish(
            "architecture.bind", capsule=self.name, **binding.describe()
        )

    def deregister_binding(self, binding: Binding) -> None:
        """Remove an externally-managed binding from the books (IPC hook)."""
        self._bindings.pop(binding.binding_id, None)
        self.architecture.binding_removed(binding)
        self.events.publish(
            "architecture.unbind", capsule=self.name, **binding.describe()
        )

    def bindings(self) -> list[Binding]:
        """All live bindings, in creation order."""
        return [self._bindings[k] for k in sorted(self._bindings)]

    def bindings_to(self, target: InterfaceRef) -> list[Binding]:
        """Live bindings whose provided side is *target*."""
        return [b for b in self._bindings.values() if b.target is target]

    def bindings_of(self, component: Component) -> list[Binding]:
        """Live bindings touching *component* on either side."""
        return [
            b
            for b in self._bindings.values()
            if b.source_component is component or b.target_component is component
        ]

    # -- bind constraints -----------------------------------------------------------

    def add_constraint(self, name: str, constraint: BindConstraint) -> None:
        """Install a named constraint on the bind primitive."""
        if name in self._constraints:
            raise BindError(f"constraint {name!r} already installed on {self.name}")
        self._constraints[name] = constraint
        self.events.publish("constraints.add", capsule=self.name, constraint=name)

    def remove_constraint(self, name: str) -> None:
        """Remove a named bind constraint."""
        if name not in self._constraints:
            raise BindError(f"no constraint {name!r} on capsule {self.name}")
        del self._constraints[name]
        self.events.publish("constraints.remove", capsule=self.name, constraint=name)

    def constraint_names(self) -> list[str]:
        """Names of installed bind constraints."""
        return sorted(self._constraints)

    def _run_constraints(self, request: BindRequest) -> None:
        for constraint in list(self._constraints.values()):
            constraint(request)

    # -- child capsules ---------------------------------------------------------------

    def spawn_child(self, name: str) -> "Capsule":
        """Create a child capsule (separate simulated address space)."""
        self._require_alive()
        return Capsule(name, parent=self)

    def kill(self, *, reason: str = "killed") -> None:
        """Terminate this capsule and everything inside it.

        Models an address-space crash: components die, bindings drop, and
        children are killed recursively.  Cross-capsule bindings into a dead
        capsule surface :class:`~repro.opencom.errors.IpcFault` on use.
        """
        if not self.alive:
            return
        self.alive = False
        self.death_reason = reason
        for child in list(self.children.values()):
            child.kill(reason=f"parent {self.name} died")
        for binding in list(self._bindings.values()):
            binding.live = False
        self._bindings.clear()
        for instance in self._components.values():
            instance.state = "dead"
            instance.capsule = None
        self._components.clear()
        if self.parent is not None:
            self.parent.children.pop(self.name, None)
            self.parent.events.publish(
                "capsule.child_died", capsule=self.parent.name, child=self.name, reason=reason
            )

    # -- helpers --------------------------------------------------------------------

    def _auto_connection_name(self, receptacle: Receptacle) -> str:
        if receptacle.is_single:
            return "0"
        index = len(receptacle.connection_names())
        while str(index) in receptacle.connection_names():
            index += 1
        return str(index)

    def _resolve(self, component: Component | str) -> Component:
        if isinstance(component, str):
            return self.component(component)
        if component.name not in self._components or self._components[component.name] is not component:
            raise CapsuleError(
                f"component {component.name} is not hosted by capsule {self.name}"
            )
        return component

    def _require_hosted(self, component: Component) -> None:
        if component.capsule is not self:
            raise BindError(
                f"component {component.name} is not hosted by capsule "
                f"{self.name}; cross-capsule bindings require ipc.bind_across"
            )

    def _require_alive(self) -> None:
        if not self.alive:
            raise CapsuleError(f"capsule {self.name} is dead")

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        status = "alive" if self.alive else "dead"
        return (
            f"<Capsule {self.name} ({status}) components={len(self._components)} "
            f"bindings={len(self._bindings)}>"
        )
