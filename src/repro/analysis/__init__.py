"""Analysis helpers: footprint accounting and benchmark statistics."""

from repro.analysis.footprint import (
    COST_TABLE,
    FootprintReport,
    measure_capsule,
    measure_tree,
)
from repro.analysis.stats import (
    format_table,
    mean,
    median,
    percentile,
    relative_factor,
    stddev,
    summarise,
)

__all__ = [
    "COST_TABLE",
    "FootprintReport",
    "format_table",
    "mean",
    "measure_capsule",
    "measure_tree",
    "median",
    "percentile",
    "relative_factor",
    "stddev",
    "summarise",
]
