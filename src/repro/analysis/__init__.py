"""Analysis helpers: footprint accounting and benchmark statistics."""

from repro.analysis.footprint import (
    COST_TABLE,
    ByteMovementReport,
    FootprintReport,
    measure_byte_movement,
    measure_capsule,
    measure_tree,
)
from repro.analysis.stats import (
    format_table,
    mean,
    median,
    percentile,
    relative_factor,
    stddev,
    summarise,
)

__all__ = [
    "COST_TABLE",
    "ByteMovementReport",
    "FootprintReport",
    "format_table",
    "mean",
    "measure_byte_movement",
    "measure_capsule",
    "measure_tree",
    "median",
    "percentile",
    "relative_factor",
    "stddev",
    "summarise",
]
