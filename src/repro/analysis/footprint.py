"""Footprint accounting: the 18 KB claim (experiment C3).

Section 5: "our Windows CE implementation now has a footprint of only
18Kbytes".  The claim behind the number is that *bespoke configurations
minimise memory footprint*: because everything is a component, a device
profile carries only the components it needs.

The accounting model charges each component type a code cost (shared by
all instances of a type within a capsule, as code pages are) plus a
per-instance state cost, plus a small cost per binding.  The cost table is
calibrated so the embedded-minimal profile lands at ≈18 "KB", making the
minimal-vs-full *ratio* the reproducible quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opencom.capsule import Capsule
from repro.osbase.memory import DATAPATH_LEDGER, CopyLedger

#: Per-type (code_bytes, per_instance_state_bytes).  The runtime row is
#: charged once per capsule.
COST_TABLE: dict[str, tuple[int, int]] = {
    "__runtime__": (9 * 1024, 1024),  # the OpenCOM runtime core itself
    "__binding__": (0, 40),
    "__default__": (2048, 256),
    # Stratum 1
    "BufferPool": (768, 320),
    "BufferManagementCF": (1024, 256),
    "ThreadManagerCF": (1536, 384),
    "RoundRobinScheduler": (384, 64),
    "PriorityScheduler": (448, 96),
    "LotteryScheduler": (512, 128),
    "EdfScheduler": (448, 96),
    "Nic": (896, 512),
    # Stratum 2
    "RouterCF": (1280, 256),
    "ProtocolRecognizer": (512, 64),
    "ChecksumValidator": (640, 64),
    "IPv4HeaderProcessor": (768, 96),
    "IPv6HeaderProcessor": (704, 96),
    "Classifier": (1152, 512),
    "FifoQueue": (512, 2048),
    "RedQueue": (896, 2048),
    "PriorityLinkScheduler": (640, 128),
    "DrrScheduler": (832, 256),
    "WfqScheduler": (960, 320),
    "Forwarder": (1024, 4096),
    "TokenBucketShaper": (704, 256),
    "Policer": (640, 128),
    "SourceNat": (1088, 2048),
    "NicIngress": (448, 96),
    "NicEgress": (448, 96),
    "TransmitAdapter": (512, 96),
    "CollectorSink": (256, 512),
    "DropSink": (192, 32),
    "PacketCounterTap": (320, 64),
    "RateMeter": (512, 384),
    "PullSource": (320, 256),
    # Composites / controllers
    "CompositeComponent": (1024, 384),
    "Controller": (896, 256),
    # Stratum 3
    "ExecutionEnvironment": (4096, 4096),
    "FlowManager": (1280, 2048),
    "MediaDownsampler": (576, 256),
    "PayloadTruncator": (448, 64),
    "FecEncoder": (1024, 1024),
    "FecDecoder": (1152, 1024),
    # IPC plumbing
    "RemoteProxy": (768, 256),
}


@dataclass
class FootprintReport:
    """Byte accounting for one capsule."""

    capsule: str
    code_bytes: int
    state_bytes: int
    binding_bytes: int
    by_type: dict[str, int]

    @property
    def total_bytes(self) -> int:
        """Code + state + binding bytes."""
        return self.code_bytes + self.state_bytes + self.binding_bytes

    @property
    def total_kb(self) -> float:
        """Total in KiB."""
        return self.total_bytes / 1024


def measure_capsule(capsule: Capsule) -> FootprintReport:
    """Account the footprint of every component and binding in *capsule*."""
    runtime_code, runtime_state = COST_TABLE["__runtime__"]
    code_by_type: dict[str, int] = {"__runtime__": runtime_code}
    state_bytes = runtime_state
    by_type: dict[str, int] = {}
    for component in capsule:
        type_name = type(component).__name__
        code, state = COST_TABLE.get(type_name, COST_TABLE["__default__"])
        charged = state
        if type_name not in code_by_type:
            code_by_type[type_name] = code
            charged += code  # code pages are shared by later instances
        state_bytes += state
        by_type[type_name] = by_type.get(type_name, 0) + charged
    binding_unit = COST_TABLE["__binding__"][1]
    binding_bytes = binding_unit * len(capsule.bindings())
    return FootprintReport(
        capsule=capsule.name,
        code_bytes=sum(code_by_type.values()),
        state_bytes=state_bytes,
        binding_bytes=binding_bytes,
        by_type=by_type,
    )


def measure_tree(capsule: Capsule) -> dict[str, FootprintReport]:
    """Account a capsule and all its children."""
    reports = {capsule.name: measure_capsule(capsule)}
    for child in capsule.children.values():
        reports.update(measure_tree(child))
    return reports


@dataclass
class ByteMovementReport:
    """Copy-vs-reference accounting over a datapath run.

    Produced from the :class:`~repro.osbase.memory.CopyLedger` the packet
    layer reports into: *copies* are byte-materialising operations (header
    packs, payload duplication, copy-on-write unsharing), *references* are
    zero-copy hand-offs (``WirePacket.clone_ref`` refcount bumps), and
    *allocations* are fresh backing-store carves (new
    :class:`~repro.osbase.buffers.Buffer` instances, as opposed to pool
    recycling).  The C13 experiment divides the movement by forwarded
    packets to get the copies-per-packet figure the zero-copy path is
    judged on; the C14 experiment asserts the allocation count stays at
    zero once the pooled lifecycle is warm.
    """

    copies: int
    copy_bytes: int
    references: int
    reference_bytes: int
    allocations: int = 0
    allocation_bytes: int = 0

    @property
    def events(self) -> int:
        """Total accounted byte-movement events."""
        return self.copies + self.references

    @property
    def reference_share(self) -> float:
        """Fraction of events that moved no bytes (0.0 when idle)."""
        if not self.events:
            return 0.0
        return self.references / self.events

    def per_packet(self, packets: int) -> dict[str, float]:
        """Copies/references/bytes normalised per forwarded packet."""
        n = max(packets, 1)
        return {
            "copies_per_packet": self.copies / n,
            "copy_bytes_per_packet": self.copy_bytes / n,
            "references_per_packet": self.references / n,
            "allocations_per_packet": self.allocations / n,
        }


def measure_byte_movement(
    since: dict[str, int] | None = None, *, ledger: CopyLedger | None = None
) -> ByteMovementReport:
    """Snapshot the datapath ledger (optionally as a delta over *since*,
    a previous ``ledger.snapshot()``)."""
    ledger = ledger if ledger is not None else DATAPATH_LEDGER
    counts = ledger.delta(since) if since is not None else ledger.snapshot()
    return ByteMovementReport(**counts)
