"""Small statistics and table-rendering helpers for the benchmark
harness."""

from __future__ import annotations

import math
from collections.abc import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50)


def summarise(values: Sequence[float]) -> dict[str, float]:
    """mean / median / p95 / stddev / min / max in one dict."""
    return {
        "mean": mean(values),
        "median": median(values),
        "p95": percentile(values, 95),
        "stddev": stddev(values),
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
    }


def relative_factor(baseline: float, candidate: float) -> float:
    """candidate / baseline (inf when the baseline is zero)."""
    if baseline == 0:
        return float("inf")
    return candidate / baseline


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned plain-text table (benchmark harness output)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), separator, *(line(row) for row in rendered)])
