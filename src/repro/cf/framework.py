"""Component frameworks: rule-governed plug-in domains.

A :class:`ComponentFramework` is itself an OpenCOM component (the paper:
"CFs accept plug-in components and, furthermore, are themselves built in
terms of components; the whole structure is uniformly component-based").
It owns a rule set, checks candidates at accept time — recursively for
composites — and *guards* dynamic structural change: interface instances
may be added to or removed from an accepted plug-in only through the CF,
which re-checks the rules and rolls the change back on violation.  That is
precisely the Router CF behaviour of section 5: "it is possible to
dynamically add/remove instances of these interfaces as long as the CF's
rules remain satisfied".
"""

from __future__ import annotations

from typing import Any

from repro.cf.acl import AccessControlList
from repro.cf.rules import Rule, check_rules
from repro.opencom.component import Component
from repro.opencom.errors import RuleViolation
from repro.opencom.interfaces import Interface


class ComponentFramework(Component):
    """Base class for all component frameworks.

    Subclasses populate :attr:`rules` (usually in ``__init__``) and may
    override :meth:`extra_checks` for rule logic that does not fit the
    declarative rule objects.

    Attributes
    ----------
    rules:
        Declarative plug-in rules applied to every candidate.
    acl:
        Access-control list policing management operations on this CF.
    """

    def __init__(self, *, rules: list[Rule] | None = None) -> None:
        super().__init__()
        self.rules: list[Rule] = list(rules) if rules else []
        self.acl = AccessControlList(owner=self.name)
        self._plugins: dict[str, Component] = {}

    # -- acceptance --------------------------------------------------------------

    def accept(self, component: Component, *, principal: str = "system") -> Component:
        """Validate *component* against the CF rules and register it.

        Composites are validated recursively: every constituent must
        (recursively) conform, per the composite rule of section 5.

        Raises
        ------
        RuleViolation
            Carrying every individual rule failure.
        """
        self.acl.check(principal, "plugin.accept")
        failures = self.validate_component(component)
        if failures:
            raise RuleViolation(component.name, failures)
        self._plugins[component.name] = component
        return component

    def eject(self, component: Component | str, *, principal: str = "system") -> None:
        """Remove a plug-in from the CF's management."""
        self.acl.check(principal, "plugin.eject")
        name = component if isinstance(component, str) else component.name
        if name not in self._plugins:
            raise RuleViolation(name, ["component is not a plug-in of this CF"])
        del self._plugins[name]

    def plugins(self) -> dict[str, Component]:
        """Snapshot of accepted plug-ins (name -> component)."""
        return dict(self._plugins)

    def is_plugin(self, component: Component) -> bool:
        """True when *component* is currently accepted by this CF."""
        return self._plugins.get(component.name) is component

    # -- validation ----------------------------------------------------------------

    def validate_component(self, component: Component) -> list[str]:
        """Check one candidate (recursively for composites); returns all
        failures."""
        failures = check_rules(self.rules, component)
        failures.extend(self.extra_checks(component))
        constituents = getattr(component, "constituents", None)
        if callable(constituents):
            for member in constituents():
                member_failures = self.validate_constituent(member)
                failures.extend(
                    f"constituent {member.name}: {failure}"
                    for failure in member_failures
                )
        return failures

    def validate_constituent(self, member: Component) -> list[str]:
        """Check one constituent of a composite.

        Defaults to the full rule set (the paper: "all their internal
        constituents must (recursively) conform to the CF's rules");
        subclasses may relax or tighten per-constituent checking.
        """
        if getattr(member, "IS_CONTROLLER", False):
            # Controllers are management components, not packet processors;
            # they are required by the composite rule, not subject to it.
            return []
        return self.validate_component(member)

    def extra_checks(self, component: Component) -> list[str]:
        """Subclass hook for non-declarative rules; return failures."""
        return []

    def validate_all(self) -> dict[str, list[str]]:
        """Re-validate every accepted plug-in.

        Returns a mapping of plug-in name to failure list for plug-ins that
        no longer conform (empty dict means the CF is consistent).
        """
        report: dict[str, list[str]] = {}
        for name, component in self._plugins.items():
            failures = self.validate_component(component)
            if failures:
                report[name] = failures
        return report

    # -- guarded structural change ----------------------------------------------------

    def add_interface_instance(
        self,
        plugin: Component,
        name: str,
        itype: type[Interface],
        *,
        impl: object | None = None,
        principal: str = "system",
    ) -> Any:
        """Dynamically expose a new interface instance on an accepted
        plug-in, re-checking the CF rules; rolled back on violation."""
        self.acl.check(principal, "plugin.modify")
        self._require_plugin(plugin)
        ref = plugin.expose(name, itype, impl=impl)
        failures = self.validate_component(plugin)
        if failures:
            plugin.withdraw(name)
            raise RuleViolation(plugin.name, failures)
        return ref

    def remove_interface_instance(
        self, plugin: Component, name: str, *, principal: str = "system"
    ) -> None:
        """Dynamically withdraw an interface instance, re-checking rules;
        rolled back on violation."""
        self.acl.check(principal, "plugin.modify")
        self._require_plugin(plugin)
        ref = plugin.interface(name)
        plugin.withdraw(name)
        failures = self.validate_component(plugin)
        if failures:
            plugin.expose(name, ref.itype, impl=ref.vtable.impl)
            raise RuleViolation(plugin.name, failures)

    def add_receptacle_instance(
        self,
        plugin: Component,
        name: str,
        itype: type[Interface],
        *,
        min_connections: int = 0,
        max_connections: int | None = 1,
        principal: str = "system",
    ) -> Any:
        """Dynamically add a receptacle, re-checking rules; rolled back on
        violation."""
        self.acl.check(principal, "plugin.modify")
        self._require_plugin(plugin)
        receptacle = plugin.add_receptacle(
            name,
            itype,
            min_connections=min_connections,
            max_connections=max_connections,
        )
        failures = self.validate_component(plugin)
        if failures:
            plugin.remove_receptacle(name)
            raise RuleViolation(plugin.name, failures)
        return receptacle

    def remove_receptacle_instance(
        self, plugin: Component, name: str, *, principal: str = "system"
    ) -> None:
        """Dynamically remove a receptacle, re-checking rules; rolled back
        on violation."""
        self.acl.check(principal, "plugin.modify")
        self._require_plugin(plugin)
        receptacle = plugin.receptacle(name)
        plugin.remove_receptacle(name)
        failures = self.validate_component(plugin)
        if failures:
            plugin.add_receptacle(
                name,
                receptacle.itype,
                min_connections=receptacle.min_connections,
                max_connections=receptacle.max_connections,
            )
            raise RuleViolation(plugin.name, failures)

    def _require_plugin(self, component: Component) -> None:
        if not self.is_plugin(component):
            raise RuleViolation(
                component.name, ["component is not a plug-in of this CF"]
            )

    def describe(self) -> dict[str, Any]:
        """Introspective summary of the CF (rules + plug-ins)."""
        return {
            "cf": self.name,
            "type": type(self).__name__,
            "rules": [r.name for r in self.rules],
            "plugins": sorted(self._plugins),
        }
