"""Component-framework (CF) infrastructure: rule-governed plug-in domains,
composites with controllers, topology constraints and ACLs."""

from repro.cf.acl import AccessControlList
from repro.cf.composite import CompositeComponent, Controller
from repro.cf.constraints import (
    TopologyConstraint,
    acyclic,
    component_state_transfer,
    frozen_topology,
    max_fan_out,
    no_binding_from,
    no_binding_to,
    only_interface_type,
    pipeline_order,
)
from repro.cf.framework import ComponentFramework
from repro.cf.rules import (
    AtLeastOneOf,
    ConditionalRule,
    InterfaceNamePattern,
    PredicateRule,
    ProvidesInterface,
    RequiresReceptacle,
    Rule,
    check_rules,
)

__all__ = [
    "AccessControlList",
    "AtLeastOneOf",
    "ComponentFramework",
    "CompositeComponent",
    "ConditionalRule",
    "Controller",
    "InterfaceNamePattern",
    "PredicateRule",
    "ProvidesInterface",
    "RequiresReceptacle",
    "Rule",
    "TopologyConstraint",
    "acyclic",
    "check_rules",
    "component_state_transfer",
    "frozen_topology",
    "max_fan_out",
    "no_binding_from",
    "no_binding_to",
    "only_interface_type",
    "pipeline_order",
]
