"""Topology constraints: interceptors on the bind primitive.

The paper: the CF "supports, on a per-component basis, the dynamic
addition/removal of arbitrary constraints.  These are implemented as
interceptors on OpenCOM's 'bind' primitive, and are mainly used to
constrain the internal topology of composite components."

A :class:`TopologyConstraint` is a named predicate over
:class:`~repro.opencom.binding.BindRequest` scoped to a membership set (the
composite's constituents); this module also provides the stock constraints
used by the Router CF and its tests.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.opencom.binding import BindRequest
from repro.opencom.component import Component
from repro.opencom.errors import ConstraintViolation
from repro.opencom.interfaces import Interface


class TopologyConstraint:
    """A named, scoped constraint on bind/unbind requests.

    Parameters
    ----------
    name:
        Constraint name (unique within its scope).
    predicate:
        Called with the request when in scope; returns a failure message to
        veto, or ``None``/"" to allow.
    members:
        When given, the constraint only applies to requests whose *both*
        endpoints belong to the membership set (the composite's internal
        topology); otherwise it applies to every request it sees.
    operations:
        Which operations to police (default: bind only).
    """

    def __init__(
        self,
        name: str,
        predicate: Callable[[BindRequest], str | None],
        *,
        members: set[str] | None = None,
        operations: tuple[str, ...] = ("bind",),
    ) -> None:
        self.name = name
        self.predicate = predicate
        self.members = members
        self.operations = operations

    def in_scope(self, request: BindRequest) -> bool:
        """True when this constraint applies to *request*."""
        if request.operation not in self.operations:
            return False
        if self.members is None:
            return True
        return (
            request.receptacle.owner.name in self.members
            and request.target.component.name in self.members
        )

    def __call__(self, request: BindRequest) -> None:
        if not self.in_scope(request):
            return
        failure = self.predicate(request)
        if failure:
            raise ConstraintViolation(self.name, failure)


def no_binding_to(component_name: str) -> Callable[[BindRequest], str | None]:
    """Stock predicate: forbid any binding *into* the named component."""

    def predicate(request: BindRequest) -> str | None:
        if request.target.component.name == component_name:
            return f"bindings into {component_name!r} are forbidden"
        return None

    return predicate


def no_binding_from(component_name: str) -> Callable[[BindRequest], str | None]:
    """Stock predicate: forbid any binding *out of* the named component."""

    def predicate(request: BindRequest) -> str | None:
        if request.receptacle.owner.name == component_name:
            return f"bindings out of {component_name!r} are forbidden"
        return None

    return predicate


def only_interface_type(
    itype: type[Interface],
) -> Callable[[BindRequest], str | None]:
    """Stock predicate: every in-scope binding must carry *itype* (or a
    subtype)."""

    def predicate(request: BindRequest) -> str | None:
        if not issubclass(request.target.itype, itype):
            return (
                f"only {itype.interface_name()} bindings are permitted, got "
                f"{request.target.itype.interface_name()}"
            )
        return None

    return predicate


def max_fan_out(limit: int) -> Callable[[BindRequest], str | None]:
    """Stock predicate: a component may have at most *limit* outgoing
    bindings (counting the one being requested)."""

    def predicate(request: BindRequest) -> str | None:
        source = request.receptacle.owner
        existing = sum(
            len(r.connections()) for r in source.receptacles().values()
        )
        if existing + 1 > limit:
            return (
                f"{source.name} would have {existing + 1} outgoing bindings, "
                f"limit is {limit}"
            )
        return None

    return predicate


def acyclic() -> Callable[[BindRequest], str | None]:
    """Stock predicate: reject bindings that would close a cycle.

    Packet-forwarding graphs must stay acyclic (a looping packet path is a
    router bug); the controller of the Figure-3 composite installs this.
    """

    def predicate(request: BindRequest) -> str | None:
        source = request.receptacle.owner
        target = request.target.component
        if source is target:
            return "self-binding would create a trivial cycle"
        # Would target reach source along existing bindings?
        view = request.capsule.architecture.snapshot()
        if source.name in view.reachable_from(target.name):
            return (
                f"binding {source.name} -> {target.name} would close a cycle"
            )
        return None

    return predicate


def frozen_topology(members: set[str]) -> Callable[[BindRequest], str | None]:
    """Stock predicate: freeze the internal topology of a region entirely
    (no bind or unbind touching two members)."""

    def predicate(request: BindRequest) -> str | None:
        return (
            "topology is frozen: no structural change permitted inside "
            f"{sorted(members)}"
        )

    return predicate


def pipeline_order(order: list[str]) -> Callable[[BindRequest], str | None]:
    """Stock predicate: bindings must respect a stage ordering.

    *order* lists component names from upstream to downstream; a binding is
    only allowed from an earlier stage to the *same or a later* stage.
    Components absent from the list are unconstrained.
    """
    position = {name: i for i, name in enumerate(order)}

    def predicate(request: BindRequest) -> str | None:
        src = position.get(request.receptacle.owner.name)
        dst = position.get(request.target.component.name)
        if src is None or dst is None:
            return None
        if dst < src:
            return (
                f"binding {request.receptacle.owner.name} -> "
                f"{request.target.component.name} violates pipeline order"
            )
        return None

    return predicate


def component_state_transfer(old: Component, new: Component) -> None:
    """Default state transfer used by controllers during hot swap.

    Copies attributes listed in the source component's ``STATE_ATTRS``
    declaration (components opt in to migration by declaring which
    attributes constitute their transferable state).
    """
    for attr in getattr(old, "STATE_ATTRS", ()):  # type: ignore[attr-defined]
        if hasattr(old, attr):
            setattr(new, attr, getattr(old, attr))
