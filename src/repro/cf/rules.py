"""Declarative plug-in rules for component frameworks.

Szyperski via the paper: a CF is a collection of "rules and interfaces that
govern the interaction of a set of components 'plugged into' them".  Rules
here are small objects with a ``check(component) -> list[str]`` method
returning failure descriptions (empty means pass), so a CF's rule set is a
plain list that can be introspected, extended per-CF, and reported on
precisely when a component is rejected.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.opencom.component import Component
from repro.opencom.interfaces import Interface


@dataclass(frozen=True)
class Violation:
    """One typed rule failure: *which* rule rejected and *why*.

    ``check_rules`` keeps returning bare strings (every existing CF call
    site reports failure lists); consumers that must act on the rule
    identity — the adaptation stratum vetoes an action and records the
    rule that stopped it — use :func:`explain_rules` instead and get the
    (rule, reason) pair intact.
    """

    rule: str
    reason: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.reason}"


class Rule:
    """Base class for CF plug-in rules."""

    #: Human-readable rule name used in violation reports.
    name = "rule"

    def check(self, component: Component) -> list[str]:
        """Return failure descriptions; empty list means the rule passes."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<{type(self).__name__} {self.name}>"


class ProvidesInterface(Rule):
    """The component must expose between *min_count* and *max_count*
    instances of *itype* (``max_count=None`` = unbounded)."""

    def __init__(
        self,
        itype: type[Interface],
        *,
        min_count: int = 1,
        max_count: int | None = None,
    ) -> None:
        self.itype = itype
        self.min_count = min_count
        self.max_count = max_count
        self.name = f"provides-{itype.interface_name()}"

    def check(self, component: Component) -> list[str]:
        count = len(component.interfaces_of_type(self.itype))
        iname = self.itype.interface_name()
        if count < self.min_count:
            return [
                f"exposes {count} instance(s) of {iname}, requires at least "
                f"{self.min_count}"
            ]
        if self.max_count is not None and count > self.max_count:
            return [
                f"exposes {count} instance(s) of {iname}, allows at most "
                f"{self.max_count}"
            ]
        return []


class RequiresReceptacle(Rule):
    """The component must declare between *min_count* and *max_count*
    receptacles of *itype*."""

    def __init__(
        self,
        itype: type[Interface],
        *,
        min_count: int = 1,
        max_count: int | None = None,
    ) -> None:
        self.itype = itype
        self.min_count = min_count
        self.max_count = max_count
        self.name = f"requires-receptacle-{itype.interface_name()}"

    def check(self, component: Component) -> list[str]:
        count = len(component.receptacles_of_type(self.itype))
        iname = self.itype.interface_name()
        if count < self.min_count:
            return [
                f"declares {count} receptacle(s) of {iname}, requires at "
                f"least {self.min_count}"
            ]
        if self.max_count is not None and count > self.max_count:
            return [
                f"declares {count} receptacle(s) of {iname}, allows at most "
                f"{self.max_count}"
            ]
        return []


class AtLeastOneOf(Rule):
    """The component must expose or require at least one instance drawn
    from a set of interface types (in either role).

    The Router CF uses this for "appropriate numbers and combinations" of
    packet-passing interfaces: a plug-in that neither accepts nor emits
    packets is meaningless.
    """

    def __init__(self, itypes: list[type[Interface]], *, role: str = "any") -> None:
        if role not in ("provides", "requires", "any"):
            raise ValueError(f"invalid role {role!r}")
        self.itypes = list(itypes)
        self.role = role
        names = "/".join(t.interface_name() for t in self.itypes)
        self.name = f"at-least-one-of-{names}-{role}"

    def check(self, component: Component) -> list[str]:
        provided = sum(
            len(component.interfaces_of_type(t)) for t in self.itypes
        )
        required = sum(
            len(component.receptacles_of_type(t)) for t in self.itypes
        )
        names = ", ".join(t.interface_name() for t in self.itypes)
        if self.role == "provides" and provided == 0:
            return [f"must expose at least one of: {names}"]
        if self.role == "requires" and required == 0:
            return [f"must declare a receptacle for at least one of: {names}"]
        if self.role == "any" and provided + required == 0:
            return [f"must expose or require at least one of: {names}"]
        return []


class ConditionalRule(Rule):
    """Apply *then_rules* only when *condition* holds for the component.

    Used for the Router CF's IClassifier rule: *if* a plug-in exposes
    IClassifier it must also satisfy the filter-semantics requirements.
    """

    def __init__(
        self,
        condition: Callable[[Component], bool],
        then_rules: list[Rule],
        *,
        name: str = "conditional",
    ) -> None:
        self.condition = condition
        self.then_rules = list(then_rules)
        self.name = name

    def check(self, component: Component) -> list[str]:
        if not self.condition(component):
            return []
        failures: list[str] = []
        for rule in self.then_rules:
            failures.extend(
                f"[{self.name}] {failure}" for failure in rule.check(component)
            )
        return failures


class PredicateRule(Rule):
    """Wrap an arbitrary predicate; fails with *message* when it returns
    False."""

    def __init__(
        self, name: str, predicate: Callable[[Component], bool], message: str
    ) -> None:
        self.name = name
        self.predicate = predicate
        self.message = message

    def check(self, component: Component) -> list[str]:
        if self.predicate(component):
            return []
        return [self.message]


class InterfaceNamePattern(Rule):
    """Exposed instances of *itype* must have names with the given prefix.

    CFs use naming conventions to address interface instances in filter
    specifications (e.g. outgoing ports named ``out-...``); this rule makes
    the convention checkable.
    """

    def __init__(self, itype: type[Interface], prefix: str) -> None:
        self.itype = itype
        self.prefix = prefix
        self.name = f"naming-{itype.interface_name()}-{prefix}"

    def check(self, component: Component) -> list[str]:
        failures = []
        for ref in component.interfaces_of_type(self.itype):
            if not ref.name.startswith(self.prefix):
                failures.append(
                    f"interface instance {ref.name!r} of type "
                    f"{self.itype.interface_name()} must be named "
                    f"{self.prefix}*"
                )
        return failures


def check_rules(rules: list[Rule], component: Component) -> list[str]:
    """Run every rule against *component*, collecting all failures."""
    failures: list[str] = []
    for rule in rules:
        failures.extend(rule.check(component))
    return failures


def explain_rules(rules: list, subject: object, *args: object) -> list[Violation]:
    """Run every rule against *subject*, collecting typed violations.

    Like :func:`check_rules` but each failure is returned as a
    :class:`Violation` naming the rule that produced it.  *subject* (and
    any extra ``*args``) are passed straight to each rule's ``check`` —
    the rule set decides what it governs: CF rules check components,
    adaptation rules check (action, system-view) pairs.
    """
    violations: list[Violation] = []
    for rule in rules:
        violations.extend(
            Violation(rule=rule.name, reason=failure)
            for failure in rule.check(subject, *args)
        )
    return violations
