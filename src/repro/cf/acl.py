"""Access-control lists policing CF management operations.

The paper: "addition/removal of constraints is policed by an ACL managed by
the composite's controller".  The ACL here is a deliberately simple
principal → operation-set map with wildcard support, enough to demonstrate
policed management without inventing a security model the paper does not
describe.
"""

from __future__ import annotations

from repro.opencom.errors import AccessDenied


class AccessControlList:
    """Principal → permitted-operations map.

    Operations are dotted strings (``"constraint.add"``); granting
    ``"constraint.*"`` permits every operation under that prefix, and
    granting ``"*"`` permits everything.  The special principal ``"system"``
    is always permitted (the runtime itself).
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._grants: dict[str, set[str]] = {}

    def grant(self, principal: str, operation: str) -> None:
        """Permit *principal* to perform *operation* (may be a wildcard)."""
        self._grants.setdefault(principal, set()).add(operation)

    def revoke(self, principal: str, operation: str) -> None:
        """Withdraw a previously granted permission (exact match)."""
        operations = self._grants.get(principal)
        if operations is not None:
            operations.discard(operation)
            if not operations:
                del self._grants[principal]

    def allows(self, principal: str, operation: str) -> bool:
        """True when *principal* may perform *operation*."""
        if principal == "system":
            return True
        operations = self._grants.get(principal, set())
        if "*" in operations or operation in operations:
            return True
        parts = operation.split(".")
        for i in range(1, len(parts)):
            if ".".join(parts[:i]) + ".*" in operations:
                return True
        return False

    def check(self, principal: str, operation: str) -> None:
        """Raise :class:`~repro.opencom.errors.AccessDenied` unless
        permitted."""
        if not self.allows(principal, operation):
            raise AccessDenied(principal, operation)

    def grants(self) -> dict[str, list[str]]:
        """Snapshot of all grants (principal -> sorted operations)."""
        return {p: sorted(ops) for p, ops in sorted(self._grants.items())}
