"""Composite components with controllers (Figure 3 of the paper).

A composite groups constituent components behind one facade: it exposes
selected internal interfaces at its boundary (delegation), carries a
*controller* that "manages and configures the other internal constituents",
and polices its internal topology with constraints implemented as
interceptors on the bind primitive — addition/removal of which is policed
by an ACL managed by the controller.

Constituents may be *isolated*: instantiated in a child capsule so that a
crash cannot take the composite's address space down; internal bindings to
isolated members transparently become IPC bindings.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.cf.acl import AccessControlList
from repro.cf.constraints import TopologyConstraint, component_state_transfer
from repro.opencom.binding import Binding, BindRequest
from repro.opencom.capsule import Capsule
from repro.opencom.component import Component, InterfaceRef
from repro.opencom.errors import CapsuleError, ConstraintViolation
from repro.opencom.interfaces import methods_of
from repro.opencom.ipc import RemoteBinding, bind_across


class _DelegateImpl:
    """Implementation object forwarding an exported interface to an
    internal constituent's vtable (so interception on the inner interface
    still applies to calls arriving at the composite boundary)."""

    def __init__(self, target: InterfaceRef) -> None:
        self._target = target
        for method in methods_of(target.itype):
            setattr(self, method.name, self._make_forwarder(method.name))

    def _make_forwarder(self, method_name: str):
        vtable = self._target.vtable

        def forward(*args: Any, **kwargs: Any) -> Any:
            return vtable.invoke(method_name, *args, **kwargs)

        forward.__name__ = method_name
        return forward


class Controller(Component):
    """The management constituent of a composite.

    Owns the composite's ACL, the set of installed topology constraints,
    and the hot-swap operation for members.  Marked ``IS_CONTROLLER`` so
    that CF rule checking can recognise it (controllers are management
    plumbing, not packet processors).
    """

    IS_CONTROLLER = True

    def __init__(self, composite: "CompositeComponent") -> None:
        super().__init__()
        self.composite = composite
        self.acl = AccessControlList(owner=composite.name)
        self._constraints: dict[str, TopologyConstraint] = {}

    # -- constraint management (ACL-policed) ------------------------------------

    def add_constraint(
        self,
        name: str,
        predicate: Callable[[BindRequest], str | None],
        *,
        principal: str = "system",
        operations: tuple[str, ...] = ("bind",),
    ) -> TopologyConstraint:
        """Install a topology constraint scoped to the composite's members."""
        self.acl.check(principal, "constraint.add")
        if name in self._constraints:
            raise ConstraintViolation(name, "constraint name already installed")
        constraint = TopologyConstraint(
            name,
            predicate,
            members=self.composite.member_names(),
            operations=operations,
        )
        self._constraints[name] = constraint
        self.composite.host_capsule.add_constraint(
            self._scoped_name(name), constraint
        )
        return constraint

    def remove_constraint(self, name: str, *, principal: str = "system") -> None:
        """Remove a previously installed constraint (ACL-policed)."""
        self.acl.check(principal, "constraint.remove")
        if name not in self._constraints:
            raise ConstraintViolation(name, "no such constraint")
        del self._constraints[name]
        self.composite.host_capsule.remove_constraint(self._scoped_name(name))

    def constraint_names(self) -> list[str]:
        """Names of constraints installed by this controller."""
        return sorted(self._constraints)

    def refresh_constraint_scopes(self) -> None:
        """Re-scope constraints after membership changes."""
        names = self.composite.member_names()
        for constraint in self._constraints.values():
            constraint.members = names

    def _scoped_name(self, name: str) -> str:
        return f"{self.composite.name}:{name}"

    # -- member management --------------------------------------------------------

    def replace_member(
        self,
        old_name: str,
        factory: Callable[[], Component],
        *,
        principal: str = "system",
        transfer_state: Callable[[Component, Component], None] | None = component_state_transfer,
    ) -> Component:
        """Hot-swap a member, preserving its bindings and exported
        interfaces (delegates re-pointed to the replacement)."""
        self.acl.check(principal, "member.replace")
        return self.composite._replace_member(old_name, factory, transfer_state)


class CompositeComponent(Component):
    """A component composed of internal constituents plus a controller.

    Parameters
    ----------
    host_capsule:
        The capsule the composite (and its non-isolated members) live in.
        The composite itself must be instantiated into this capsule by the
        caller, e.g. ``capsule.instantiate(lambda: CompositeComponent(capsule), "gw")``.
    """

    def __init__(self, host_capsule: Capsule, *, controller_factory: Callable[["CompositeComponent"], Controller] | None = None) -> None:
        super().__init__()
        self.host_capsule = host_capsule
        self._members: dict[str, Component] = {}
        self._isolated: dict[str, Capsule] = {}
        self._internal_bindings: list[Binding | RemoteBinding] = []
        self._exports: dict[str, tuple[str, str]] = {}
        factory = controller_factory if controller_factory is not None else Controller
        self.controller = factory(self)
        host_capsule.adopt(self.controller, f"{self.name}.controller")
        self._members[self.controller.name] = self.controller

    # -- membership -----------------------------------------------------------------

    def add_member(
        self,
        factory: Callable[..., Component],
        name: str,
        /,
        *args: Any,
        isolated: bool = False,
        **kwargs: Any,
    ) -> Component:
        """Instantiate a constituent.

        With ``isolated=True`` the constituent is created in a fresh child
        capsule (the untrusted-component path of section 5); bindings to it
        will transparently use IPC.
        """
        full_name = f"{self.name}.{name}"
        if full_name in self._members:
            raise CapsuleError(f"composite {self.name} already has member {name!r}")
        if isolated:
            child = self.host_capsule.spawn_child(f"{self.name}:{name}")
            member = child.instantiate(factory, full_name, *args, **kwargs)
            self._isolated[full_name] = child
        else:
            member = self.host_capsule.instantiate(factory, full_name, *args, **kwargs)
        self._members[full_name] = member
        self.controller.refresh_constraint_scopes()
        return member

    def remove_member(self, name: str) -> None:
        """Destroy a constituent (its internal bindings must be dropped
        first via :meth:`unbind_internal`)."""
        full_name = self._full_name(name)
        member = self._members[full_name]
        if member is self.controller:
            raise CapsuleError("the controller cannot be removed")
        exported = [e for e, (m, _) in self._exports.items() if m == full_name]
        if exported:
            raise CapsuleError(
                f"member {name!r} backs exported interface(s) "
                f"{exported}; withdraw them first"
            )
        child = self._isolated.pop(full_name, None)
        if child is not None:
            child.kill(reason="member removed")
        else:
            self.host_capsule.destroy(member)
        del self._members[full_name]
        self.controller.refresh_constraint_scopes()

    def member(self, name: str) -> Component:
        """Look a constituent up by short or full name."""
        return self._members[self._full_name(name)]

    def member_names(self) -> set[str]:
        """Full names of all constituents (controller included)."""
        return set(self._members)

    def constituents(self) -> Iterator[Component]:
        """Iterate constituents (recursive CF rule checking hook)."""
        return iter(list(self._members.values()))

    def is_isolated(self, name: str) -> bool:
        """True when the named member runs in its own child capsule."""
        return self._full_name(name) in self._isolated

    def member_capsule(self, name: str) -> Capsule:
        """The capsule a member runs in (host or child)."""
        full_name = self._full_name(name)
        return self._isolated.get(full_name, self.host_capsule)

    # -- internal topology -------------------------------------------------------------

    def bind_internal(
        self,
        source: str,
        receptacle_name: str,
        target: str,
        interface_name: str,
        *,
        connection_name: str | None = None,
        principal: str = "system",
    ) -> Binding | RemoteBinding:
        """Bind two constituents, choosing local vs IPC transparently."""
        source_member = self.member(source)
        target_member = self.member(target)
        receptacle = source_member.receptacle(receptacle_name)
        target_ref = target_member.interface(interface_name)
        if source_member.capsule is target_member.capsule:
            binding: Binding | RemoteBinding = source_member.capsule.bind(
                receptacle,
                target_ref,
                connection_name=connection_name,
                principal=principal,
            )
        else:
            binding = bind_across(
                receptacle,
                target_ref,
                connection_name=connection_name,
                principal=principal,
            )
        self._internal_bindings.append(binding)
        return binding

    def unbind_internal(self, binding: Binding | RemoteBinding, *, principal: str = "system") -> None:
        """Tear an internal binding down."""
        if binding not in self._internal_bindings:
            raise CapsuleError("binding is not internal to this composite")
        binding.unbind(principal=principal)
        self._internal_bindings.remove(binding)

    def internal_bindings(self) -> list[Binding | RemoteBinding]:
        """Snapshot of internal bindings."""
        return list(self._internal_bindings)

    # -- boundary exports -----------------------------------------------------------------

    def export(self, exported_name: str, member: str, interface_name: str) -> InterfaceRef:
        """Expose a constituent's interface at the composite boundary.

        Calls arriving at the exported interface are forwarded through the
        constituent's vtable (interception inside still applies).
        """
        member_component = self.member(member)
        inner = member_component.interface(interface_name)
        ref = self.expose(exported_name, inner.itype, impl=_DelegateImpl(inner))
        self._exports[exported_name] = (member_component.name, interface_name)
        return ref

    def export_map(self) -> dict[str, tuple[str, str]]:
        """Mapping of exported name -> (member full name, inner interface)."""
        return dict(self._exports)

    # -- reconfiguration ---------------------------------------------------------------------

    def _replace_member(
        self,
        old_name: str,
        factory: Callable[[], Component],
        transfer_state: Callable[[Component, Component], None] | None,
    ) -> Component:
        full_name = self._full_name(old_name)
        old = self._members[full_name]
        if old is self.controller:
            raise CapsuleError("the controller cannot be hot-swapped")
        if full_name in self._isolated:
            raise CapsuleError(
                "isolated members are replaced by killing and re-adding; "
                "use remove_member + add_member"
            )
        exports_backed = {
            e: iface for e, (m, iface) in self._exports.items() if m == full_name
        }
        replacement = self.host_capsule.architecture.replace_component(
            old,
            factory,
            transfer_state=transfer_state,
        )
        self.host_capsule.rename(replacement, full_name)
        self._members[full_name] = replacement
        # Refresh the internal-binding ledger: the swap replaced every
        # binding touching the old member with a fresh one.
        self._internal_bindings = [
            b
            for b in self._internal_bindings
            if (isinstance(b, Binding) and b.live)
            or (isinstance(b, RemoteBinding) and b.live)
        ]
        for binding in self.host_capsule.bindings_of(replacement):
            if binding not in self._internal_bindings:
                self._internal_bindings.append(binding)
        for exported_name, inner_iface in exports_backed.items():
            # Re-point the boundary delegate at the replacement's interface.
            self.withdraw(exported_name)
            del self._exports[exported_name]
            self.export(exported_name, full_name, inner_iface)
        self.controller.refresh_constraint_scopes()
        return replacement

    # -- helpers ----------------------------------------------------------------------------

    def _full_name(self, name: str) -> str:
        if name in self._members:
            return name
        full_name = f"{self.name}.{name}"
        if full_name in self._members:
            return full_name
        raise CapsuleError(f"composite {self.name} has no member {name!r}")

    def describe_internals(self) -> dict[str, Any]:
        """Introspective description of members, bindings and exports."""
        return {
            "composite": self.name,
            "members": {
                name: {
                    "type": type(member).__name__,
                    "isolated": name in self._isolated,
                    "controller": member is self.controller,
                }
                for name, member in sorted(self._members.items())
            },
            "bindings": [
                b.describe() if isinstance(b, Binding) else {
                    "kind": "ipc",
                    "source": b.local_binding.source_component.name,
                    "target": b.target.component.name,
                }
                for b in self._internal_bindings
            ],
            "exports": {
                name: {"member": member, "interface": iface}
                for name, (member, iface) in sorted(self._exports.items())
            },
            "constraints": self.controller.constraint_names(),
        }
