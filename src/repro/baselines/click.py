"""A Click-style modular router baseline.

Section 6: "The Click modular router employs a fine grained C++-based
component model with flexible support for the configuration (but not
reconfiguration) of packet scheduling, route lookup and queue drop
modules".  This baseline reproduces exactly that contrast:

- elements are plain Python objects composed from a declarative config
  (flexible *configuration*);
- connections are direct attribute references — no vtables, no
  receptacles, no interception points (fast, opaque);
- there is **no reconfiguration**: any change requires tearing the router
  down and rebuilding from a new config, and everything queued in the old
  instance is lost.  :meth:`ClickRouter.reconfigure` makes that cost
  explicit by counting the packets dropped on the floor.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.netsim.packet import IPv4Header, IPv6Header, Packet
from repro.opencom.errors import OpenComError
from repro.router.components.base import release_dropped
from repro.router.components.forwarding import Stride8LpmTable
from repro.router.filters import FilterTable


class ClickError(OpenComError):
    """Bad Click configuration."""


class ClickElement:
    """Base element: single output, direct call."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.next: "ClickElement | None" = None
        self.counters: dict[str, int] = {}

    def count(self, key: str, increment: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + increment

    def push(self, packet: Packet) -> None:
        raise NotImplementedError

    def push_batch(self, packets: list[Packet]) -> None:
        """Batch entry point; elements override to amortise per-call work
        (the default loops :meth:`push`)."""
        push = self.push
        for packet in packets:
            push(packet)

    def emit(self, packet: Packet) -> None:
        if self.next is not None:
            self.next.push(packet)

    def emit_batch(self, packets: list[Packet]) -> None:
        if self.next is not None and packets:
            self.next.push_batch(packets)


class ClickCheckHeader(ClickElement):
    """CheckIPHeader: checksum + TTL handling."""

    def push(self, packet: Packet) -> None:
        net = packet.net
        if isinstance(net, IPv4Header):
            if not net.checksum_ok():
                self.count("drop:bad-checksum")
                release_dropped(packet)
                return
            # Same polymorphic byte path as the CF components and the
            # monolithic baseline (incremental checksum on wire views).
            if not net.decrement_ttl():
                self.count("drop:ttl")
                release_dropped(packet)
                return
        elif isinstance(net, IPv6Header):
            if not net.decrement_hop_limit():
                self.count("drop:ttl")
                release_dropped(packet)
                return
        self.count("ok")
        self.emit(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        survivors: list[Packet] = []
        for packet in packets:
            net = packet.net
            if isinstance(net, IPv4Header):
                if not net.checksum_ok():
                    self.count("drop:bad-checksum")
                    release_dropped(packet)
                    continue
                if not net.decrement_ttl():
                    self.count("drop:ttl")
                    release_dropped(packet)
                    continue
            elif isinstance(net, IPv6Header):
                if not net.decrement_hop_limit():
                    self.count("drop:ttl")
                    release_dropped(packet)
                    continue
            survivors.append(packet)
        if survivors:
            self.count("ok", len(survivors))
            self.emit_batch(survivors)


class ClickClassifier(ClickElement):
    """Classifier with named outputs (multi-output element)."""

    def __init__(self, name: str, default_output: str | None = None) -> None:
        super().__init__(name)
        self.table = FilterTable()
        self.outputs: dict[str, ClickElement] = {}
        self.default_output = default_output

    def push(self, packet: Packet) -> None:
        spec = self.table.classify(packet)
        output = spec.output if spec is not None else self.default_output
        target = self.outputs.get(output) if output else None
        if target is None:
            self.count("drop:unclassified")
            release_dropped(packet)
            return
        self.count(f"class:{output}")
        target.push(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        default = self.default_output
        if not self.table and default is not None:
            # No filters installed: the whole batch takes the default
            # output without a per-packet classify.
            target = self.outputs.get(default)
            if target is None:
                self.count("drop:unclassified", len(packets))
                for packet in packets:
                    release_dropped(packet)
                return
            self.count(f"class:{default}", len(packets))
            target.push_batch(packets)
            return
        groups: dict[str, list[Packet]] = {}
        for packet in packets:
            spec = self.table.classify(packet)
            output = spec.output if spec is not None else default
            if output is None or output not in self.outputs:
                self.count("drop:unclassified")
                release_dropped(packet)
                continue
            groups.setdefault(output, []).append(packet)
        for output, group in groups.items():
            self.count(f"class:{output}", len(group))
            self.outputs[output].push_batch(group)


class ClickQueue(ClickElement):
    """Bounded FIFO; pulled by a scheduler."""

    def __init__(self, name: str, capacity: int = 128) -> None:
        super().__init__(name)
        self.capacity = capacity
        self.queue: deque[Packet] = deque()

    def push(self, packet: Packet) -> None:
        if len(self.queue) >= self.capacity:
            self.count("drop:overflow")
            release_dropped(packet)
            return
        self.queue.append(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        room = self.capacity - len(self.queue)
        if room >= len(packets):
            self.queue.extend(packets)
            return
        if room > 0:
            self.queue.extend(packets[:room])
        self.count("drop:overflow", len(packets) - max(room, 0))
        for packet in packets[max(room, 0):]:
            release_dropped(packet)

    def pull(self) -> Packet | None:
        if not self.queue:
            return None
        return self.queue.popleft()

    def pull_batch(self, max_n: int) -> list[Packet]:
        """Bulk dequeue up to *max_n* head packets (order preserved)."""
        queue = self.queue
        n = min(max_n, len(queue))
        if n <= 0:
            return []
        popleft = queue.popleft
        return [popleft() for _ in range(n)]


class ClickLookup(ClickElement):
    """LPM route lookup with per-hop outputs (stride-8 + result cache,
    the same table the component Forwarder uses — the baselines and the
    CF differ in structure, not in algorithms)."""

    def __init__(self, name: str, routes: dict[str, str]) -> None:
        super().__init__(name)
        self.table = Stride8LpmTable()
        self.table.load(routes)
        self.outputs: dict[str, ClickElement] = {}

    def push(self, packet: Packet) -> None:
        hop = self.table.lookup_cached(packet.net.dst, version=packet.version)
        target = self.outputs.get(hop) if hop else None
        if target is None:
            self.count("drop:no-route")
            release_dropped(packet)
            return
        self.count(f"hop:{hop}")
        target.push(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        lookup = self.table.lookup_cached
        groups: dict[str, list[Packet]] = {}
        for packet in packets:
            hop = lookup(packet.net.dst, version=packet.version)
            if not hop or hop not in self.outputs:
                self.count("drop:no-route")
                release_dropped(packet)
                continue
            groups.setdefault(hop, []).append(packet)
        for hop, group in groups.items():
            self.count(f"hop:{hop}", len(group))
            self.outputs[hop].push_batch(group)


class ClickScheduler(ClickElement):
    """Strict-priority pull scheduler over named queues."""

    def __init__(self, name: str, order: list[str]) -> None:
        super().__init__(name)
        self.order = list(order)
        self.queues: dict[str, ClickQueue] = {}

    def push(self, packet: Packet) -> None:
        raise ClickError("schedulers are pull elements")

    def service(self, budget: int = 1) -> int:
        # Bulk-drain in strict priority order through the queues'
        # pull_batch (connections in Click are plain references — the
        # point of the baseline — so this is a direct method call, the
        # same per-input-run algorithm the CF PriorityLinkScheduler
        # batches through its port handles).  Equivalent to the
        # per-packet rescan for acyclic configs; a config feeding the
        # scheduler's output back into its own queues sees those packets
        # in the *next* service call.
        batch: list[Packet] = []
        remaining = budget
        for queue_name in self.order:
            queue = self.queues.get(queue_name)
            if queue is None:
                continue
            got = queue.pull_batch(remaining)
            if got:
                batch.extend(got)
                remaining -= len(got)
            if not remaining:
                break
        if batch:
            self.count("tx", len(batch))
            self.emit_batch(batch)
        return len(batch)


class ClickSink(ClickElement):
    """Terminal element (Discard / ToDevice stand-in).

    With ``recycle=True`` the sink counts each delivery but releases its
    pooled buffer immediately (ToDevice semantics: the frame left the
    machine) instead of retaining the packet.
    """

    def __init__(self, name: str, recycle: bool = False) -> None:
        super().__init__(name)
        self.recycle = recycle
        self.packets: list[Packet] = []

    def push(self, packet: Packet) -> None:
        self.count("rx")
        if self.recycle:
            release_dropped(packet)
        else:
            self.packets.append(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        self.count("rx", len(packets))
        if self.recycle:
            for packet in packets:
                release_dropped(packet)
        else:
            self.packets.extend(packets)


class ClickRouter:
    """A router built once from a config dict.

    Config format (see :func:`standard_click_config` for a template)::

        {"elements": {name: (kind, kwargs)},
         "links": [(src, dst)],                  # single-output wiring
         "outputs": {src: {output_name: dst}},   # multi-output wiring
         "scheduler_queues": {sched: {qname: queue_element}}}
    """

    KINDS = {
        "check": ClickCheckHeader,
        "classifier": ClickClassifier,
        "queue": ClickQueue,
        "lookup": ClickLookup,
        "scheduler": ClickScheduler,
        "sink": ClickSink,
    }

    def __init__(self, config: dict[str, Any]) -> None:
        self.config = config
        self.elements: dict[str, ClickElement] = {}
        self.generation = 0
        self.reconfiguration_losses = 0
        self._build(config)

    def _build(self, config: dict[str, Any]) -> None:
        self.elements.clear()
        for name, (kind, kwargs) in config.get("elements", {}).items():
            klass = self.KINDS.get(kind)
            if klass is None:
                raise ClickError(f"unknown element kind {kind!r}")
            self.elements[name] = klass(name, **kwargs)
        for src, dst in config.get("links", []):
            self.elements[src].next = self.elements[dst]
        for src, outputs in config.get("outputs", {}).items():
            element = self.elements[src]
            if not hasattr(element, "outputs"):
                raise ClickError(f"element {src!r} has no named outputs")
            element.outputs = {
                output: self.elements[dst] for output, dst in outputs.items()
            }
        for sched, queues in config.get("scheduler_queues", {}).items():
            scheduler = self.elements[sched]
            if not isinstance(scheduler, ClickScheduler):
                raise ClickError(f"element {sched!r} is not a scheduler")
            scheduler.queues = {
                qname: self.elements[qelem] for qname, qelem in queues.items()
            }
        self.entry_name = config.get("entry")
        if self.entry_name not in self.elements:
            raise ClickError(f"entry element {self.entry_name!r} missing")
        self.generation += 1

    # -- operation ------------------------------------------------------------------

    def push(self, packet: Packet) -> None:
        """Inject one packet at the entry element."""
        self.elements[self.entry_name].push(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Inject a whole batch at the entry element."""
        self.elements[self.entry_name].push_batch(packets)

    def service(self, budget: int = 64) -> int:
        """Pump every scheduler element."""
        serviced = 0
        for element in self.elements.values():
            if isinstance(element, ClickScheduler):
                serviced += element.service(budget)
        return serviced

    def reconfigure(self, new_config: dict[str, Any]) -> int:
        """Replace the configuration — the only way Click changes.

        The router is rebuilt from scratch; every packet queued in the old
        instance is lost.  Returns the number of packets dropped by the
        rebuild (also accumulated in :attr:`reconfiguration_losses`).
        """
        stranded = sum(
            len(element.queue)
            for element in self.elements.values()
            if isinstance(element, ClickQueue)
        )
        self.reconfiguration_losses += stranded
        self.config = new_config
        self._build(new_config)
        return stranded

    def sink(self, name: str) -> ClickSink:
        """A sink element by name (typed accessor for tests)."""
        element = self.elements[name]
        if not isinstance(element, ClickSink):
            raise ClickError(f"element {name!r} is not a sink")
        return element


def standard_click_config(
    *,
    routes: dict[str, str],
    queue_capacity: int = 128,
    classes: tuple[str, ...] = ("expedited", "best-effort"),
    class_filters: list[str] | None = None,
    recycle_sinks: bool = False,
) -> dict[str, Any]:
    """The Click equivalent of the Figure-3 data path: check -> classify ->
    per-class queues -> priority scheduler -> lookup -> per-hop sinks."""
    elements: dict[str, Any] = {
        "check": ("check", {}),
        "classify": ("classifier", {"default_output": classes[-1]}),
        "sched": ("scheduler", {"order": list(classes)}),
        "lookup": ("lookup", {"routes": routes}),
    }
    outputs: dict[str, dict[str, str]] = {"classify": {}, "lookup": {}}
    scheduler_queues: dict[str, dict[str, str]] = {"sched": {}}
    for klass in classes:
        elements[f"q-{klass}"] = ("queue", {"capacity": queue_capacity})
        outputs["classify"][klass] = f"q-{klass}"
        scheduler_queues["sched"][klass] = f"q-{klass}"
    for hop in sorted(set(routes.values())):
        elements[f"sink-{hop}"] = ("sink", {"recycle": recycle_sinks})
        outputs["lookup"][hop] = f"sink-{hop}"
    config = {
        "elements": elements,
        "links": [("check", "classify"), ("sched", "lookup")],
        "outputs": outputs,
        "scheduler_queues": scheduler_queues,
        "entry": "check",
    }
    if class_filters:
        # Filters are installed post-build by the caller via the element;
        # record them so rebuilds can re-install.
        config["class_filters"] = list(class_filters)
    return config


def apply_class_filters(router: ClickRouter) -> None:
    """Install the config's class filters on the classifier element."""
    for text in router.config.get("class_filters", []):
        classifier = router.elements["classify"]
        if isinstance(classifier, ClickClassifier):
            classifier.table.add(text)
