"""A monolithic router baseline: one hard-coded function.

The zero-flexibility end of the design space: header validation,
classification, queueing, scheduling and route lookup are a single code
path with no component boundaries at all.  It is the fastest thing the
data-path benchmark (C6) measures and the thing that *cannot* be
reconfigured in experiment C4 — changing anything means changing the
source.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import IPv4Header, IPv6Header, Packet
from repro.router.components.base import release_dropped
from repro.router.components.forwarding import Stride8LpmTable
from repro.router.filters import FilterTable


class MonolithicRouter:
    """Fixed two-class priority router with LPM forwarding."""

    def __init__(
        self,
        routes: dict[str, str],
        *,
        queue_capacity: int = 128,
        expedited_filters: list[str] | None = None,
        recycle_delivered: bool = False,
    ) -> None:
        #: Steady-state egress mode: deliveries are counted but their
        #: pooled buffers are released immediately instead of being
        #: retained in ``delivered`` (the baseline analogue of a
        #: recycling terminal sink).
        self.recycle_delivered = recycle_delivered
        self.table = Stride8LpmTable()
        self.table.load(routes)
        self.filters = FilterTable()
        for text in expedited_filters or []:
            self.filters.add(text)
        self.queue_capacity = queue_capacity
        self._expedited: deque[Packet] = deque()
        self._best_effort: deque[Packet] = deque()
        self.delivered: dict[str, list[Packet]] = {
            hop: [] for hop in set(routes.values())
        }
        self.counters = {
            "rx": 0,
            "tx": 0,
            "drop:bad-checksum": 0,
            "drop:ttl": 0,
            "drop:overflow": 0,
            "drop:no-route": 0,
        }

    def push(self, packet: Packet) -> None:
        """The whole ingress path, inlined."""
        self.counters["rx"] += 1
        net = packet.net
        if isinstance(net, IPv4Header):
            if not net.checksum_ok():
                self.counters["drop:bad-checksum"] += 1
                release_dropped(packet)
                return
            # Polymorphic byte path (same as the component router and
            # Click): full re-sum on materialised headers, RFC 1624
            # incremental update on wire-resident views.
            if not net.decrement_ttl():
                self.counters["drop:ttl"] += 1
                release_dropped(packet)
                return
        elif isinstance(net, IPv6Header):
            if not net.decrement_hop_limit():
                self.counters["drop:ttl"] += 1
                release_dropped(packet)
                return
        queue = (
            self._expedited
            if self.filters.classify(packet) is not None
            else self._best_effort
        )
        if len(queue) >= self.queue_capacity:
            self.counters["drop:overflow"] += 1
            release_dropped(packet)
            return
        queue.append(packet)

    def push_batch(self, packets: list[Packet]) -> None:
        """Batch ingress: the whole path inlined per packet, with the
        bookkeeping (rx counter, bound lookups) hoisted out of the loop."""
        counters = self.counters
        counters["rx"] += len(packets)
        # One emptiness probe replaces a per-packet classify against an
        # empty filter table (classify still runs per packet otherwise).
        classify = self.filters.classify if self.filters else None
        expedited, best_effort = self._expedited, self._best_effort
        capacity = self.queue_capacity
        for packet in packets:
            net = packet.net
            if isinstance(net, IPv4Header):
                if not net.checksum_ok():
                    counters["drop:bad-checksum"] += 1
                    release_dropped(packet)
                    continue
                if not net.decrement_ttl():
                    counters["drop:ttl"] += 1
                    release_dropped(packet)
                    continue
            elif isinstance(net, IPv6Header):
                if not net.decrement_hop_limit():
                    counters["drop:ttl"] += 1
                    release_dropped(packet)
                    continue
            queue = (
                expedited
                if classify is not None and classify(packet) is not None
                else best_effort
            )
            if len(queue) >= capacity:
                counters["drop:overflow"] += 1
                release_dropped(packet)
                continue
            queue.append(packet)

    def service(self, budget: int = 64) -> int:
        """The whole egress path, inlined (strict priority + LPM).

        Drains each class deque as one run (the batched pull side of the
        component pipelines, hand-inlined): within one service call no
        pushes interleave, so a run per class in priority order is the
        same packet order as the per-packet priority rescan.
        """
        serviced = 0
        counters = self.counters
        delivered = self.delivered
        recycle = self.recycle_delivered
        lookup = self.table.lookup_cached
        for queue in (self._expedited, self._best_effort):
            n = min(budget - serviced, len(queue))
            if n <= 0:
                if serviced >= budget:
                    break
                continue
            popleft = queue.popleft
            for _ in range(n):
                packet = popleft()
                hop = lookup(packet.net.dst, version=packet.version)
                if hop is None:
                    counters["drop:no-route"] += 1
                    release_dropped(packet)
                elif recycle:
                    counters["tx"] += 1
                    release_dropped(packet)
                else:
                    delivered.setdefault(hop, []).append(packet)
                    counters["tx"] += 1
            serviced += n
        return serviced

    @property
    def queued(self) -> int:
        """Packets currently queued."""
        return len(self._expedited) + len(self._best_effort)


def monolithic_shard_fleet(
    routes: dict[str, str],
    shards: int,
    *,
    queue_capacity: int = 128,
    expedited_filters: list[str] | None = None,
    recycle_delivered: bool = True,
) -> list[MonolithicRouter]:
    """*shards* independent :class:`MonolithicRouter` instances sharing
    one route table definition — the sharded *monolithic* comparator.

    The sharding experiment (C15) must compare datapath *structure*, not
    runtime topology: the CF pipelines run N per-shard copies behind one
    steering stage, so the baseline gets the same treatment — each fleet
    member becomes one shard's engine (``push_batch`` + ``service``)
    under the identical :class:`~repro.osbase.sharding.ShardedDatapath`
    runtime, and the only difference left is what a shard's engine is
    made of.  Recycling delivery is the default because shard engines
    run in steady state (the C14 discipline).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [
        MonolithicRouter(
            routes,
            queue_capacity=queue_capacity,
            expedited_filters=list(expedited_filters or []),
            recycle_delivered=recycle_delivered,
        )
        for _ in range(shards)
    ]
