"""Comparison baselines: a Click-style static modular router and a
monolithic hard-coded router (section 6's related-work contrast)."""

from repro.baselines.click import (
    ClickClassifier,
    ClickElement,
    ClickError,
    ClickQueue,
    ClickRouter,
    ClickScheduler,
    ClickSink,
    apply_class_filters,
    standard_click_config,
)
from repro.baselines.monolithic import MonolithicRouter, monolithic_shard_fleet

__all__ = [
    "ClickClassifier",
    "ClickElement",
    "ClickError",
    "ClickQueue",
    "ClickRouter",
    "ClickScheduler",
    "ClickSink",
    "MonolithicRouter",
    "apply_class_filters",
    "monolithic_shard_fleet",
    "standard_click_config",
]
