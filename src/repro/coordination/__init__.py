"""Stratum 4 — coordination: out-of-band signaling, RSVP-style
reservation, Genesis spawning networks, distributed reconfiguration, and
remote deployment / managed evolution."""

from repro.coordination.deployment import (
    DeploymentAborted,
    DeploymentAgent,
    DeploymentError,
    DeploymentManager,
    StagedRollout,
    deploy_agents,
)
from repro.coordination.genesis import (
    GenesisError,
    GenesisFramework,
    PROTO_VIRTUAL,
    VirtualDelivery,
    VirtualNetwork,
    VirtualRouter,
)
from repro.coordination.reconfig import (
    ActionSet,
    ReconfigCoordinator,
    ReconfigError,
    ReconfigParticipant,
    ReconfigRound,
    register_capsule_upgrade,
    register_shard_recovery,
    register_shard_resize,
)
from repro.coordination.rsvp import (
    BANDWIDTH_POOL,
    EdgeAdmission,
    RsvpAgent,
    RsvpError,
    RsvpTimeout,
    Session,
    deploy_rsvp,
)
from repro.coordination.signaling import (
    Delivery,
    SignalingAgent,
    SignalingError,
    attach_agents,
    decode_message,
    encode_message,
)

__all__ = [
    "ActionSet",
    "BANDWIDTH_POOL",
    "Delivery",
    "DeploymentAborted",
    "DeploymentAgent",
    "DeploymentError",
    "DeploymentManager",
    "EdgeAdmission",
    "StagedRollout",
    "deploy_agents",
    "GenesisError",
    "GenesisFramework",
    "PROTO_VIRTUAL",
    "ReconfigCoordinator",
    "ReconfigError",
    "ReconfigParticipant",
    "ReconfigRound",
    "RsvpAgent",
    "RsvpError",
    "RsvpTimeout",
    "Session",
    "SignalingAgent",
    "SignalingError",
    "VirtualDelivery",
    "VirtualNetwork",
    "VirtualRouter",
    "attach_agents",
    "decode_message",
    "deploy_rsvp",
    "encode_message",
    "register_capsule_upgrade",
    "register_shard_recovery",
    "register_shard_resize",
]
