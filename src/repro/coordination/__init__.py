"""Stratum 4 — coordination: out-of-band signaling, RSVP-style
reservation, Genesis spawning networks, distributed reconfiguration, and
remote deployment / managed evolution."""

from repro.coordination.deployment import (
    DeploymentAgent,
    DeploymentError,
    DeploymentManager,
    deploy_agents,
)
from repro.coordination.genesis import (
    GenesisError,
    GenesisFramework,
    PROTO_VIRTUAL,
    VirtualDelivery,
    VirtualNetwork,
    VirtualRouter,
)
from repro.coordination.reconfig import (
    ActionSet,
    ReconfigCoordinator,
    ReconfigError,
    ReconfigParticipant,
    ReconfigRound,
    register_shard_recovery,
    register_shard_resize,
)
from repro.coordination.rsvp import (
    BANDWIDTH_POOL,
    RsvpAgent,
    RsvpError,
    RsvpTimeout,
    Session,
    deploy_rsvp,
)
from repro.coordination.signaling import (
    Delivery,
    SignalingAgent,
    SignalingError,
    attach_agents,
    decode_message,
    encode_message,
)

__all__ = [
    "ActionSet",
    "BANDWIDTH_POOL",
    "Delivery",
    "DeploymentAgent",
    "DeploymentError",
    "DeploymentManager",
    "deploy_agents",
    "GenesisError",
    "GenesisFramework",
    "PROTO_VIRTUAL",
    "ReconfigCoordinator",
    "ReconfigError",
    "ReconfigParticipant",
    "ReconfigRound",
    "RsvpAgent",
    "RsvpError",
    "RsvpTimeout",
    "Session",
    "SignalingAgent",
    "SignalingError",
    "VirtualDelivery",
    "VirtualNetwork",
    "VirtualRouter",
    "attach_agents",
    "decode_message",
    "deploy_rsvp",
    "encode_message",
    "register_shard_recovery",
    "register_shard_resize",
]
