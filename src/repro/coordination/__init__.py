"""Stratum 4 — coordination: out-of-band signaling, RSVP-style
reservation, Genesis spawning networks, distributed reconfiguration, and
remote deployment / managed evolution."""

from repro.coordination.deployment import (
    DeploymentAgent,
    DeploymentError,
    DeploymentManager,
    deploy_agents,
)
from repro.coordination.genesis import (
    GenesisError,
    GenesisFramework,
    PROTO_VIRTUAL,
    VirtualDelivery,
    VirtualNetwork,
    VirtualRouter,
)
from repro.coordination.reconfig import (
    ActionSet,
    ReconfigCoordinator,
    ReconfigError,
    ReconfigParticipant,
    ReconfigRound,
)
from repro.coordination.rsvp import (
    BANDWIDTH_POOL,
    RsvpAgent,
    Session,
    deploy_rsvp,
)
from repro.coordination.signaling import (
    SignalingAgent,
    SignalingError,
    attach_agents,
    decode_message,
    encode_message,
)

__all__ = [
    "ActionSet",
    "BANDWIDTH_POOL",
    "DeploymentAgent",
    "DeploymentError",
    "DeploymentManager",
    "deploy_agents",
    "GenesisError",
    "GenesisFramework",
    "PROTO_VIRTUAL",
    "ReconfigCoordinator",
    "ReconfigError",
    "ReconfigParticipant",
    "ReconfigRound",
    "RsvpAgent",
    "Session",
    "SignalingAgent",
    "SignalingError",
    "VirtualDelivery",
    "VirtualNetwork",
    "VirtualRouter",
    "attach_agents",
    "decode_message",
    "deploy_rsvp",
    "encode_message",
]
