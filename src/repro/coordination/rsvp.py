"""RSVP-style resource reservation (stratum 4).

The paper names RSVP as the canonical coordination-stratum protocol.  The
reproduction follows the RSVP shape:

- the sender emits ``PATH`` toward the receiver; each hop records the
  upstream node (path state) and appends itself to the route;
- the receiver answers ``RESV`` back along the *recorded reverse path*;
  each hop performs admission control against its per-node bandwidth pool
  (the resources meta-model) and either reserves and forwards upstream, or
  answers ``RESV_ERR`` downstream, releasing nothing it did not take;
- ``TEAR`` releases reservations along the path.

Reservations land in each node capsule's
:class:`~repro.opencom.metamodel.resources.ResourceMetaModel` under the
pool ``"bandwidth"`` and a per-session task, so experiment C8 can assert
end-to-end containment: a session is admitted iff *every* hop had
capacity, and rejected sessions leave zero residue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.coordination.signaling import SignalingAgent, SignalingError
from repro.netsim.topology import Topology
from repro.opencom.errors import ResourceError

_SESSION_IDS = itertools.count(1)

#: Pool name used on every RSVP-managed node.
BANDWIDTH_POOL = "bandwidth"


@dataclass
class Session:
    """Sender-side record of one reservation session."""

    session_id: int
    sender: str
    receiver: str
    bandwidth: float
    status: str = "pending"  # pending | established | rejected | torn-down
    path: list[str] = field(default_factory=list)
    reject_reason: str = ""
    events: list[str] = field(default_factory=list)


class RsvpAgent:
    """Per-node RSVP endpoint over a signaling agent."""

    def __init__(
        self,
        signaling: SignalingAgent,
        *,
        bandwidth_capacity: float = 100e6,
    ) -> None:
        self.signaling = signaling
        self.node = signaling.node
        resources = self.node.capsule.resources
        if BANDWIDTH_POOL not in resources.pools():
            resources.create_pool(BANDWIDTH_POOL, "bandwidth", bandwidth_capacity)
        #: session id -> {"prev": upstream node, "next": downstream node}
        self._path_state: dict[int, dict[str, Any]] = {}
        #: session ids this node holds reservations for.
        self._reserved: set[int] = set()
        #: sender-side sessions originated here.
        self.sessions: dict[int, Session] = {}
        signaling.on("rsvp.path", self._on_path)
        signaling.on("rsvp.resv", self._on_resv)
        signaling.on("rsvp.resv_err", self._on_resv_err)
        signaling.on("rsvp.established", self._on_established)
        signaling.on("rsvp.tear", self._on_tear)

    # -- sender API --------------------------------------------------------------

    def reserve(self, receiver: str, bandwidth: float) -> Session:
        """Initiate a reservation toward *receiver*; returns the session
        (status resolves once the engine runs the signaling exchange)."""
        if bandwidth <= 0:
            raise SignalingError("bandwidth must be positive")
        session = Session(
            session_id=next(_SESSION_IDS),
            sender=self.node.name,
            receiver=receiver,
            bandwidth=bandwidth,
        )
        self.sessions[session.session_id] = session
        hop = self._next_hop_toward(receiver)
        session.events.append(f"path-sent via {hop}")
        self.signaling.send(
            hop,
            "rsvp.path",
            session=session.session_id,
            sender=self.node.name,
            receiver=receiver,
            bandwidth=bandwidth,
            route=[self.node.name],
        )
        return session

    def teardown(self, session: Session) -> None:
        """Release an established session along its path."""
        if session.status != "established":
            return
        session.status = "torn-down"
        self._release_local(session.session_id)
        for hop in session.path[1:]:
            self.signaling.send(hop, "rsvp.tear", session=session.session_id)

    # -- protocol handlers ----------------------------------------------------------

    def _on_path(self, message: dict, sender: str) -> None:
        session_id = message["session"]
        receiver = message["receiver"]
        route = list(message["route"]) + [self.node.name]
        self._path_state[session_id] = {
            "prev": route[-2],
            "bandwidth": message["bandwidth"],
            "sender": message["sender"],
            "route": route,
        }
        if receiver == self.node.name:
            # Receiver: start the RESV wave back upstream, reserving here
            # first (the receiver's own downlink counts).
            if self._try_reserve(session_id, message["bandwidth"]):
                self.signaling.send(
                    route[-2],
                    "rsvp.resv",
                    session=session_id,
                    bandwidth=message["bandwidth"],
                    sender=message["sender"],
                    route=route,
                )
            else:
                self.signaling.send(
                    message["sender"],
                    "rsvp.resv_err",
                    session=session_id,
                    at=self.node.name,
                    reason="admission failed at receiver",
                )
            return
        hop = self._next_hop_toward(receiver)
        self.signaling.send(
            hop,
            "rsvp.path",
            session=session_id,
            sender=message["sender"],
            receiver=receiver,
            bandwidth=message["bandwidth"],
            route=route,
        )

    def _on_resv(self, message: dict, sender: str) -> None:
        session_id = message["session"]
        state = self._path_state.get(session_id)
        origin = message["sender"]
        if origin == self.node.name:
            # The RESV wave reached the sender: success iff we can also
            # admit locally.
            session = self.sessions.get(session_id)
            if session is None:
                return
            if self._try_reserve(session_id, message["bandwidth"]):
                session.status = "established"
                session.path = list(message["route"])
                session.events.append("established")
                for hop in session.path[1:]:
                    self.signaling.send(
                        hop, "rsvp.established", session=session_id
                    )
            else:
                session.status = "rejected"
                session.reject_reason = "admission failed at sender"
                for hop in message["route"][1:]:
                    self.signaling.send(hop, "rsvp.tear", session=session_id)
            return
        if state is None:
            return
        if self._try_reserve(session_id, message["bandwidth"]):
            self.signaling.send(
                state["prev"],
                "rsvp.resv",
                session=session_id,
                bandwidth=message["bandwidth"],
                sender=origin,
                route=message["route"],
            )
        else:
            # Admission failed mid-path: tell the sender, release the
            # downstream reservations already made by this RESV wave.
            self.signaling.send(
                origin,
                "rsvp.resv_err",
                session=session_id,
                at=self.node.name,
                reason="admission failed",
            )
            downstream = self._downstream_of(message["route"], self.node.name)
            for hop in downstream:
                self.signaling.send(hop, "rsvp.tear", session=session_id)

    def _on_resv_err(self, message: dict, sender: str) -> None:
        session = self.sessions.get(message["session"])
        if session is not None and session.status == "pending":
            session.status = "rejected"
            session.reject_reason = (
                f"{message.get('reason', 'admission failed')} at "
                f"{message.get('at', '?')}"
            )
            session.events.append("rejected")

    def _on_established(self, message: dict, sender: str) -> None:
        # Informational at transit nodes; state already held.
        state = self._path_state.get(message["session"])
        if state is not None:
            state["established"] = True

    def _on_tear(self, message: dict, sender: str) -> None:
        self._release_local(message["session"])
        self._path_state.pop(message["session"], None)

    # -- admission control --------------------------------------------------------------

    def _try_reserve(self, session_id: int, bandwidth: float) -> bool:
        resources = self.node.capsule.resources
        task_name = f"rsvp:{session_id}"
        if task_name not in resources.tasks():
            resources.create_task(task_name)
        try:
            resources.allocate(task_name, BANDWIDTH_POOL, bandwidth)
        except ResourceError:
            resources.destroy_task(task_name)
            return False
        self._reserved.add(session_id)
        return True

    def _release_local(self, session_id: int) -> None:
        if session_id not in self._reserved:
            return
        resources = self.node.capsule.resources
        task_name = f"rsvp:{session_id}"
        if task_name in resources.tasks():
            resources.destroy_task(task_name)
        self._reserved.discard(session_id)

    # -- helpers ---------------------------------------------------------------------------

    def _next_hop_toward(self, destination: str) -> str:
        hop = self.signaling.topology.next_hops(self.node.name).get(destination)
        if hop is None:
            raise SignalingError(
                f"{self.node.name} has no route to {destination!r}"
            )
        return hop

    @staticmethod
    def _downstream_of(route: list[str], here: str) -> list[str]:
        if here not in route:
            return []
        return route[route.index(here) + 1 :]

    def reserved_bandwidth(self) -> float:
        """Bandwidth currently reserved at this node."""
        pool = self.node.capsule.resources.pool(BANDWIDTH_POOL)
        return pool.allocated

    def reservation_count(self) -> int:
        """Sessions holding bandwidth here."""
        return len(self._reserved)


def deploy_rsvp(
    topology: Topology,
    agents: dict[str, SignalingAgent],
    *,
    bandwidth_capacity: float = 100e6,
) -> dict[str, RsvpAgent]:
    """Attach an RSVP agent to every signaling agent."""
    return {
        name: RsvpAgent(agent, bandwidth_capacity=bandwidth_capacity)
        for name, agent in agents.items()
    }
