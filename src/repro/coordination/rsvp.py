"""RSVP-style resource reservation (stratum 4).

The paper names RSVP as the canonical coordination-stratum protocol.  The
reproduction follows the RSVP shape:

- the sender emits ``PATH`` toward the receiver; each hop records the
  upstream node (path state) and appends itself to the route;
- the receiver answers ``RESV`` back along the *recorded reverse path*;
  each hop performs admission control against its per-node bandwidth pool
  (the resources meta-model) and either reserves and forwards upstream, or
  answers ``RESV_ERR`` downstream, releasing nothing it did not take;
- ``TEAR`` releases reservations along the path.

Reservations land in each node capsule's
:class:`~repro.opencom.metamodel.resources.ResourceMetaModel` under the
pool ``"bandwidth"`` and a per-session task, so experiment C8 can assert
end-to-end containment: a session is admitted iff *every* hop had
capacity, and rejected sessions leave zero residue.

Failure model
-------------
RSVP state is *soft state*, exactly as in the RFC: a lost PATH or RESV
must degrade to a clean, typed rejection — never a hung ``pending``
session or a stranded mid-path reservation.  Three mechanisms:

- ``reserve(..., timeout=)`` arms an engine-time deadline; while
  attempts remain the PATH is retried under capped exponential backoff
  (same :class:`~repro.netsim.engine.BackoffPolicy` machinery as
  signaling), and when they run out the session resolves to
  ``timed-out`` with a typed :class:`RsvpTimeout` on ``session.error``
  and a best-effort TEAR along whatever route is known;
- with ``soft_state_ttl`` set, every piece of distributed state — path
  state at transit hops, reservations made by a partial RESV wave —
  expires *ttl* seconds after it was last confirmed unless refreshed, so
  orphaned state evaporates instead of leaking bandwidth;
- established sessions are kept alive by ``rsvp.refresh`` messages
  (:meth:`RsvpAgent.refresh` manually, :meth:`RsvpAgent.auto_refresh`
  on an engine-time period with a bounded horizon), which bump expiry at
  every hop on the recorded path.

Retries are idempotent: a hop already holding a session's reservation
answers a duplicate RESV wave without reserving twice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.coordination.signaling import SignalingAgent, SignalingError
from repro.netsim.engine import BackoffPolicy, EventHandle
from repro.netsim.topology import Topology
from repro.opencom.errors import ResourceError

_SESSION_IDS = itertools.count(1)

#: Pool name used on every RSVP-managed node.
BANDWIDTH_POOL = "bandwidth"


class RsvpError(SignalingError):
    """RSVP protocol failure."""


class RsvpTimeout(RsvpError):
    """A reservation ran out of attempts without resolving — the typed
    error surfaced on ``Session.error`` (the session is torn down, not
    left hanging)."""


@dataclass
class Session:
    """Sender-side record of one reservation session."""

    session_id: int
    sender: str
    receiver: str
    bandwidth: float
    status: str = "pending"  # pending | established | rejected | timed-out | torn-down
    path: list[str] = field(default_factory=list)
    reject_reason: str = ""
    events: list[str] = field(default_factory=list)
    #: Typed failure (RsvpTimeout) when the session could not resolve.
    error: Exception | None = None
    #: PATH transmissions so far (1 = no retries needed).
    attempts: int = 1
    #: Owner capsule of the reservation (fleet admission tags each
    #: session with the flow's home capsule, so a node-kill can tear the
    #: dead node's reservations down via :meth:`RsvpAgent.release_owned`
    #: instead of waiting out the soft-state TTL).
    owner: str | None = None

    @property
    def resolved(self) -> bool:
        """True once the session can no longer change state by itself."""
        return self.status != "pending"


class RsvpAgent:
    """Per-node RSVP endpoint over a signaling agent."""

    def __init__(
        self,
        signaling: SignalingAgent,
        *,
        bandwidth_capacity: float = 100e6,
        soft_state_ttl: float | None = None,
    ) -> None:
        self.signaling = signaling
        self.node = signaling.node
        self.engine = signaling.topology.engine
        resources = self.node.capsule.resources
        if BANDWIDTH_POOL not in resources.pools():
            resources.create_pool(BANDWIDTH_POOL, "bandwidth", bandwidth_capacity)
        if soft_state_ttl is not None and soft_state_ttl <= 0:
            raise RsvpError(f"soft_state_ttl must be positive, got {soft_state_ttl}")
        self.soft_state_ttl = soft_state_ttl
        #: session id -> {"prev": upstream node, "route": ..., "expires_at": ...}
        self._path_state: dict[int, dict[str, Any]] = {}
        #: session ids this node holds reservations for.
        self._reserved: set[int] = set()
        #: session id -> owner capsule, for reservations held *here* that
        #: exist on behalf of another node (see :meth:`release_owned`).
        self._reservation_owner: dict[int, str] = {}
        #: session id -> expiry time for soft reservation state.
        self._reservation_expiry: dict[int, float] = {}
        #: sender-side sessions originated here.
        self.sessions: dict[int, Session] = {}
        #: sender-side retry state: session id -> deadline EventHandle.
        self._deadlines: dict[int, EventHandle] = {}
        self.counters = {"expired_reservations": 0, "expired_path_state": 0,
                         "path_retries": 0, "refreshes": 0}
        signaling.on("rsvp.path", self._on_path)
        signaling.on("rsvp.resv", self._on_resv)
        signaling.on("rsvp.resv_err", self._on_resv_err)
        signaling.on("rsvp.established", self._on_established)
        signaling.on("rsvp.tear", self._on_tear)
        signaling.on("rsvp.refresh", self._on_refresh)

    # -- sender API --------------------------------------------------------------

    def reserve(
        self,
        receiver: str,
        bandwidth: float,
        *,
        timeout: float | None = None,
        max_attempts: int = 1,
        backoff: BackoffPolicy | None = None,
        owner: str | None = None,
    ) -> Session:
        """Initiate a reservation toward *receiver*; returns the session
        (status resolves once the engine runs the signaling exchange).

        *owner* tags every piece of soft state the session creates (at
        this sender and at every hop) with an owning capsule, so a
        node-kill can sweep the dead capsule's reservations with
        :meth:`release_owned` — how fleet admission ties reservations to
        a flow's home capsule.

        With *timeout*, the session cannot hang: if no RESV (or error)
        arrives within *timeout* virtual seconds, the PATH is resent —
        up to *max_attempts* transmissions total, each wait stretched by
        *backoff* (timeout + ``policy.delay(attempt)``) — and when the
        last attempt expires the session resolves to ``timed-out``, with
        an :class:`RsvpTimeout` on ``session.error`` and a best-effort
        TEAR sweeping whatever partial state is reachable.  Without
        *timeout* the historical contract holds: resolution only ever
        comes from the network (lost messages are the caller's risk).
        """
        if bandwidth <= 0:
            raise SignalingError("bandwidth must be positive")
        if timeout is not None and timeout <= 0:
            raise RsvpError(f"timeout must be positive, got {timeout}")
        if max_attempts < 1:
            raise RsvpError(f"max_attempts must be >= 1, got {max_attempts}")
        session = Session(
            session_id=next(_SESSION_IDS),
            sender=self.node.name,
            receiver=receiver,
            bandwidth=bandwidth,
            owner=owner,
        )
        self.sessions[session.session_id] = session
        self._send_path(session)
        if timeout is not None:
            policy = backoff if backoff is not None else BackoffPolicy(
                base=timeout, cap=8 * timeout, jitter=0.0
            )
            self._arm_deadline(session, timeout, max_attempts, policy)
        return session

    def _send_path(self, session: Session) -> None:
        hop = self._next_hop_toward(session.receiver)
        session.events.append(f"path-sent via {hop}")
        self.signaling.send(
            hop,
            "rsvp.path",
            session=session.session_id,
            sender=self.node.name,
            receiver=session.receiver,
            bandwidth=session.bandwidth,
            owner=session.owner,
            route=[self.node.name],
        )

    def _arm_deadline(
        self,
        session: Session,
        timeout: float,
        max_attempts: int,
        policy: BackoffPolicy,
    ) -> None:
        def expire() -> None:
            self._deadlines.pop(session.session_id, None)
            if session.resolved:
                return
            if session.attempts < max_attempts:
                session.attempts += 1
                self.counters["path_retries"] += 1
                session.events.append(f"path-retry {session.attempts}")
                self._send_path(session)
                # Next wait: the base timeout stretched by the backoff
                # schedule (attempt-indexed, deterministic jitter).
                wait = timeout + policy.delay(session.attempts - 1)
                self._deadlines[session.session_id] = self.engine.schedule(
                    wait, expire
                )
                return
            session.status = "timed-out"
            session.reject_reason = (
                f"no RESV within {session.attempts} attempt(s)"
            )
            session.error = RsvpTimeout(
                f"session {session.session_id} "
                f"{session.sender}->{session.receiver}: {session.reject_reason}"
            )
            session.events.append("timed-out")
            # Best-effort sweep: release anything local, tear whatever
            # partial route the (possibly lost) RESV wave may have
            # reserved on.  Unreachable state expires via soft-state TTL.
            self._release_local(session.session_id)
            for hop in self._known_route(session)[1:]:
                self.signaling.send(
                    hop, "rsvp.tear", session=session.session_id
                )

        self._deadlines[session.session_id] = self.engine.schedule(timeout, expire)

    def _known_route(self, session: Session) -> list[str]:
        if session.path:
            return session.path
        state = self._path_state.get(session.session_id)
        if state is not None:
            return list(state.get("route", ()))
        return []

    def teardown(self, session: Session) -> None:
        """Release an established session along its path."""
        if session.status != "established":
            return
        session.status = "torn-down"
        self._release_local(session.session_id)
        for hop in session.path[1:]:
            self.signaling.send(hop, "rsvp.tear", session=session.session_id)

    # -- soft-state refresh ----------------------------------------------------------

    def refresh(self, session: Session) -> None:
        """Re-confirm an established session's state at every hop on its
        recorded path (and locally), pushing expiry out by the TTL."""
        if session.status != "established":
            return
        self.counters["refreshes"] += 1
        self._touch_reservation(session.session_id)
        for hop in session.path[1:]:
            self.signaling.send(hop, "rsvp.refresh", session=session.session_id)

    def auto_refresh(
        self, session: Session, *, interval: float | None = None, until: float,
    ) -> EventHandle:
        """Refresh *session* periodically until the engine time *until*
        (bounded, so ``engine.run()`` still drains) or until the session
        leaves ``established``."""
        if interval is None:
            if self.soft_state_ttl is None:
                raise RsvpError("auto_refresh needs an interval or a soft_state_ttl")
            interval = self.soft_state_ttl / 2
        return self.engine.schedule_periodic(
            interval, lambda: self.refresh(session), until=until
        )

    def _soft_expiry(self) -> float | None:
        if self.soft_state_ttl is None:
            return None
        return self.engine.now + self.soft_state_ttl

    def _touch_reservation(self, session_id: int) -> None:
        if self.soft_state_ttl is None or session_id not in self._reserved:
            return
        self._reservation_expiry[session_id] = self.engine.now + self.soft_state_ttl
        self._schedule_expiry_check(session_id)

    def _schedule_expiry_check(self, session_id: int) -> None:
        expires_at = self._reservation_expiry.get(session_id)
        if expires_at is None:
            return

        def check() -> None:
            current = self._reservation_expiry.get(session_id)
            if current is None or session_id not in self._reserved:
                return
            if self.engine.now + 1e-12 < current:
                # Refreshed since this check was scheduled: re-arm.
                self.engine.schedule_at(current, check)
                return
            self.counters["expired_reservations"] += 1
            self._release_local(session_id)
            self._path_state.pop(session_id, None)
            session = self.sessions.get(session_id)
            if session is not None and session.status == "established":
                session.status = "torn-down"
                session.events.append("expired")

        self.engine.schedule_at(expires_at, check)

    def _touch_path_state(self, session_id: int) -> None:
        state = self._path_state.get(session_id)
        if state is None or self.soft_state_ttl is None:
            return
        state["expires_at"] = self.engine.now + self.soft_state_ttl

        def check() -> None:
            current = self._path_state.get(session_id)
            if current is None:
                return
            expires_at = current.get("expires_at")
            if expires_at is None:
                return
            if self.engine.now + 1e-12 < expires_at:
                self.engine.schedule_at(expires_at, check)
                return
            # Path state (not a reservation) going stale is free to drop;
            # any reservation has its own expiry.
            self._path_state.pop(session_id, None)
            self.counters["expired_path_state"] += 1

        self.engine.schedule_at(state["expires_at"], check)

    def _on_refresh(self, message: dict, sender: str) -> None:
        session_id = message["session"]
        self._touch_reservation(session_id)
        self._touch_path_state(session_id)

    # -- protocol handlers ----------------------------------------------------------

    def _on_path(self, message: dict, sender: str) -> None:
        session_id = message["session"]
        receiver = message["receiver"]
        route = list(message["route"]) + [self.node.name]
        owner = message.get("owner")
        self._path_state[session_id] = {
            "prev": route[-2],
            "bandwidth": message["bandwidth"],
            "sender": message["sender"],
            "owner": owner,
            "route": route,
        }
        self._touch_path_state(session_id)
        if receiver == self.node.name:
            # Receiver: start the RESV wave back upstream, reserving here
            # first (the receiver's own downlink counts).
            if self._try_reserve(session_id, message["bandwidth"], owner=owner):
                self.signaling.send(
                    route[-2],
                    "rsvp.resv",
                    session=session_id,
                    bandwidth=message["bandwidth"],
                    sender=message["sender"],
                    route=route,
                )
            else:
                self.signaling.send(
                    message["sender"],
                    "rsvp.resv_err",
                    session=session_id,
                    at=self.node.name,
                    reason="admission failed at receiver",
                )
            return
        hop = self._next_hop_toward(receiver)
        self.signaling.send(
            hop,
            "rsvp.path",
            session=session_id,
            sender=message["sender"],
            receiver=receiver,
            bandwidth=message["bandwidth"],
            owner=owner,
            route=route,
        )

    def _on_resv(self, message: dict, sender: str) -> None:
        session_id = message["session"]
        state = self._path_state.get(session_id)
        origin = message["sender"]
        if origin == self.node.name:
            # The RESV wave reached the sender: success iff we can also
            # admit locally.
            session = self.sessions.get(session_id)
            if session is None:
                return
            if session.resolved:
                if session.status == "established":
                    return  # duplicate wave from a retried PATH
                # Late RESV after the session already failed (timeout):
                # the reservations it made downstream must not leak.
                for hop in message["route"][1:]:
                    self.signaling.send(hop, "rsvp.tear", session=session_id)
                return
            if self._try_reserve(
                session_id, message["bandwidth"], owner=session.owner
            ):
                session.status = "established"
                session.path = list(message["route"])
                session.events.append("established")
                handle = self._deadlines.pop(session_id, None)
                if handle is not None:
                    handle.cancel()
                for hop in session.path[1:]:
                    self.signaling.send(
                        hop, "rsvp.established", session=session_id
                    )
            else:
                session.status = "rejected"
                session.reject_reason = "admission failed at sender"
                for hop in message["route"][1:]:
                    self.signaling.send(hop, "rsvp.tear", session=session_id)
            return
        if state is None:
            return
        if self._try_reserve(
            session_id, message["bandwidth"], owner=state.get("owner")
        ):
            self.signaling.send(
                state["prev"],
                "rsvp.resv",
                session=session_id,
                bandwidth=message["bandwidth"],
                sender=origin,
                route=message["route"],
            )
        else:
            # Admission failed mid-path: tell the sender, release the
            # downstream reservations already made by this RESV wave.
            self.signaling.send(
                origin,
                "rsvp.resv_err",
                session=session_id,
                at=self.node.name,
                reason="admission failed",
            )
            downstream = self._downstream_of(message["route"], self.node.name)
            for hop in downstream:
                self.signaling.send(hop, "rsvp.tear", session=session_id)

    def _on_resv_err(self, message: dict, sender: str) -> None:
        session = self.sessions.get(message["session"])
        if session is not None and session.status == "pending":
            session.status = "rejected"
            session.reject_reason = (
                f"{message.get('reason', 'admission failed')} at "
                f"{message.get('at', '?')}"
            )
            session.events.append("rejected")
            handle = self._deadlines.pop(session.session_id, None)
            if handle is not None:
                handle.cancel()

    def _on_established(self, message: dict, sender: str) -> None:
        # Informational at transit nodes; state already held.
        state = self._path_state.get(message["session"])
        if state is not None:
            state["established"] = True

    def _on_tear(self, message: dict, sender: str) -> None:
        self._release_local(message["session"])
        self._path_state.pop(message["session"], None)

    # -- admission control --------------------------------------------------------------

    def _try_reserve(
        self, session_id: int, bandwidth: float, *, owner: str | None = None
    ) -> bool:
        if session_id in self._reserved:
            # Idempotent under retries: a duplicate RESV wave (resent
            # PATH after a lost RESV) re-confirms, never double-books.
            self._touch_reservation(session_id)
            return True
        resources = self.node.capsule.resources
        task_name = f"rsvp:{session_id}"
        if task_name not in resources.tasks():
            resources.create_task(task_name)
        try:
            resources.allocate(task_name, BANDWIDTH_POOL, bandwidth)
        except ResourceError:
            resources.destroy_task(task_name)
            return False
        self._reserved.add(session_id)
        if owner is not None:
            self._reservation_owner[session_id] = owner
        expiry = self._soft_expiry()
        if expiry is not None:
            self._reservation_expiry[session_id] = expiry
            self._schedule_expiry_check(session_id)
        return True

    def _release_local(self, session_id: int) -> None:
        self._reservation_expiry.pop(session_id, None)
        self._reservation_owner.pop(session_id, None)
        if session_id not in self._reserved:
            return
        resources = self.node.capsule.resources
        task_name = f"rsvp:{session_id}"
        if task_name in resources.tasks():
            resources.destroy_task(task_name)
        self._reserved.discard(session_id)

    def release_owned(self, owner: str) -> int:
        """Failover teardown: release every local reservation (and drop
        every piece of path state) owned by capsule *owner*, now.

        A killed capsule's reservations would otherwise sit in the
        admission pool until the soft-state TTL evaporated them — dead
        bandwidth the edge could not re-admit.  Locally originated
        sessions for the owner resolve to ``torn-down`` and their TEAR
        propagates along the recorded path, so downstream hops release
        immediately too; transit state (a hop that merely forwarded the
        PATH) can only release its own share — its upstreams get the
        originator's TEAR, its downstreams the TTL.  Returns the number
        of reservations released.
        """
        doomed = sorted(
            session_id
            for session_id, who in self._reservation_owner.items()
            if who == owner
        )
        for session_id in doomed:
            session = self.sessions.get(session_id)
            if session is not None and session.status == "established":
                for hop in session.path[1:]:
                    self.signaling.send(hop, "rsvp.tear", session=session_id)
            self._release_local(session_id)
            self._path_state.pop(session_id, None)
            handle = self._deadlines.pop(session_id, None)
            if handle is not None:
                handle.cancel()
            session = self.sessions.get(session_id)
            if session is not None and (
                not session.resolved or session.status == "established"
            ):
                session.status = "torn-down"
                session.events.append(f"owner {owner} killed")
        # Path state without a local reservation still names the owner.
        for session_id in [
            session_id
            for session_id, state in self._path_state.items()
            if state.get("owner") == owner
        ]:
            self._path_state.pop(session_id, None)
        return len(doomed)

    # -- helpers ---------------------------------------------------------------------------

    def _next_hop_toward(self, destination: str) -> str:
        hop = self.signaling.topology.next_hops(self.node.name).get(destination)
        if hop is None:
            raise SignalingError(
                f"{self.node.name} has no route to {destination!r}"
            )
        return hop

    @staticmethod
    def _downstream_of(route: list[str], here: str) -> list[str]:
        if here not in route:
            return []
        return route[route.index(here) + 1 :]

    def reserved_bandwidth(self) -> float:
        """Bandwidth currently reserved at this node."""
        pool = self.node.capsule.resources.pool(BANDWIDTH_POOL)
        return pool.allocated

    def reservation_count(self) -> int:
        """Sessions holding bandwidth here."""
        return len(self._reserved)


class EdgeAdmission:
    """Edge admission control for a capsule fleet.

    A new flow must reserve capacity *before* it is steered: the edge's
    :class:`RsvpAgent` runs a reservation toward the flow's home capsule
    (PATH over the real edge→capsule link, RESV back), debiting both the
    edge's aggregate admission pool — sized from the fleet's capacity
    curve, :meth:`repro.ixp.placement.FleetPlacement.aggregate_pps` —
    and the home capsule's own pool.  Over-subscription at either level
    is **rejected**, or **queued** at the edge (bounded FIFO) to retry
    as running flows complete.  Every reservation is tagged with the
    home capsule as its soft-state *owner*, so a node-kill tears the
    dead capsule's share down immediately (:meth:`on_capsule_killed`)
    instead of waiting out the TTL; flows nobody completes or kills
    still evaporate via the agent's ``soft_state_ttl``.
    """

    def __init__(
        self,
        agent: RsvpAgent,
        *,
        queue_limit: int = 8,
        timeout: float | None = None,
        max_attempts: int = 1,
    ) -> None:
        if queue_limit < 0:
            raise RsvpError(f"queue_limit must be >= 0, got {queue_limit}")
        self.agent = agent
        self.engine = agent.engine
        self.queue_limit = queue_limit
        self.timeout = timeout
        self.max_attempts = max_attempts
        #: Admitted flow -> {"session", "capsule", "rate"}.
        self._flows: dict[Any, dict[str, Any]] = {}
        #: Waiting flows in arrival order: (flow, capsule, rate).
        self._queue: list[tuple[Any, str, float]] = []
        self.counters = {
            "admitted": 0,
            "rejected": 0,
            "queued": 0,
            "dequeued": 0,
            "released": 0,
            "failover_released": 0,
        }

    def _reserve(self, flow: Any, capsule: str, rate: float) -> bool:
        session = self.agent.reserve(
            capsule,
            rate,
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            owner=capsule,
        )
        self.engine.run()
        if session.status != "established":
            return False
        self._flows[flow] = {"session": session, "capsule": capsule, "rate": rate}
        return True

    def admit(self, flow: Any, capsule: str, rate: float) -> str:
        """Admit *flow* (any hashable key — the fleet uses the flow
        hash) toward its home *capsule* at *rate* packets per second.
        Returns ``"admitted"``, ``"queued"`` or ``"rejected"``.
        Idempotent: an already-admitted or already-queued flow keeps its
        state."""
        if rate <= 0:
            raise RsvpError(f"rate must be positive, got {rate}")
        if flow in self._flows:
            return "admitted"
        if any(queued_flow == flow for queued_flow, _, _ in self._queue):
            return "queued"
        if self._reserve(flow, capsule, rate):
            self.counters["admitted"] += 1
            return "admitted"
        if len(self._queue) < self.queue_limit:
            self._queue.append((flow, capsule, rate))
            self.counters["queued"] += 1
            return "queued"
        self.counters["rejected"] += 1
        return "rejected"

    def is_admitted(self, flow: Any) -> bool:
        """True while *flow* holds an admission reservation."""
        return flow in self._flows

    def home_of(self, flow: Any) -> str | None:
        """The capsule an admitted flow reserved toward (None otherwise)."""
        entry = self._flows.get(flow)
        return None if entry is None else entry["capsule"]

    def complete(self, flow: Any) -> bool:
        """The flow finished: release its reservation along the path and
        retry queued flows (FIFO — the retry stops at the first flow the
        pool still cannot take, preserving arrival order)."""
        entry = self._flows.pop(flow, None)
        if entry is None:
            return False
        self.agent.teardown(entry["session"])
        self.engine.run()
        self.counters["released"] += 1
        self._retry_queued()
        return True

    def _retry_queued(self) -> None:
        while self._queue:
            flow, capsule, rate = self._queue[0]
            if not self._reserve(flow, capsule, rate):
                return
            self._queue.pop(0)
            self.counters["dequeued"] += 1
            self.counters["admitted"] += 1

    def queued_count(self) -> int:
        """Flows waiting at the edge for capacity."""
        return len(self._queue)

    def admitted_count(self) -> int:
        """Flows currently holding admission."""
        return len(self._flows)

    def on_capsule_killed(
        self, capsule: str, *, new_aggregate: float | None = None
    ) -> list[tuple[Any, float]]:
        """Failover teardown for a killed capsule.

        Releases every edge reservation owned by *capsule* right now
        (:meth:`RsvpAgent.release_owned` — no TTL wait), drops queued
        flows that targeted it, and — with *new_aggregate* — shrinks the
        edge admission pool to the surviving fleet's capacity curve
        (never below what is still allocated).  Returns the orphaned
        ``(flow, rate)`` pairs so the caller can re-admit them toward
        their new ring homes.
        """
        self.agent.release_owned(capsule)
        orphans = [
            (flow, entry["rate"])
            for flow, entry in self._flows.items()
            if entry["capsule"] == capsule
        ]
        for flow, _ in orphans:
            del self._flows[flow]
        self.counters["failover_released"] += len(orphans)
        requeue = [
            (flow, rate)
            for flow, queued_capsule, rate in self._queue
            if queued_capsule == capsule
        ]
        self._queue = [
            entry for entry in self._queue if entry[1] != capsule
        ]
        if new_aggregate is not None:
            resources = self.agent.node.capsule.resources
            pool = resources.pool(BANDWIDTH_POOL)
            resources.resize_pool(
                BANDWIDTH_POOL, max(new_aggregate, pool.allocated)
            )
        return orphans + requeue


def deploy_rsvp(
    topology: Topology,
    agents: dict[str, SignalingAgent],
    *,
    bandwidth_capacity: float = 100e6,
    soft_state_ttl: float | None = None,
) -> dict[str, RsvpAgent]:
    """Attach an RSVP agent to every signaling agent."""
    return {
        name: RsvpAgent(
            agent,
            bandwidth_capacity=bandwidth_capacity,
            soft_state_ttl=soft_state_ttl,
        )
        for name, agent in agents.items()
    }
