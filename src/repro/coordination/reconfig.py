"""Distributed reconfiguration: coordinated quiesce-and-swap (stratum 4).

The paper's coordination stratum performs "distributed coordination and
(re)configuration of the lower strata".  This module provides a two-phase
protocol over signaling:

- the coordinator sends ``reconfig.prepare`` to every participant; each
  participant quiesces the named local target (via a registered *action
  set*) and votes;
- on unanimous yes the coordinator sends ``reconfig.commit`` (apply the
  change, resume); any no (or missing vote by the engine-time deadline)
  triggers ``reconfig.abort`` (resume unchanged).

Action sets bind the protocol to real local work: each participating node
registers ``quiesce`` / ``apply`` / ``resume`` / ``rollback`` callables,
typically closing an :class:`~repro.opencom.metamodel.interception.AdmissionGate`,
calling ``architecture.replace_component``, and reopening.  The protocol
therefore drives exactly the same machinery as local hot swap, but
network-wide — the "evolution of deployed software" story.

Failure model
-------------
Every protocol message travels ``send_reliable`` (at-least-once with
engine-time retransmits and receiver-side dedupe — see
:mod:`repro.coordination.signaling`), so a lossy or transiently
partitioned network costs retransmits, not correctness.  A partition
that outlives every retransmit is resolved by the coordinator's
*deadline*: a round started with ``deadline=`` aborts when any vote is
still missing at that engine time, and the abort is itself delivered
reliably, so prepared participants roll back and resume instead of
holding their targets quiesced forever.  Every round therefore
terminates in ``committed`` or ``aborted`` — the invariant the R1 fault
bench gates on.  :func:`register_shard_recovery` wires the sharded
datapath's drain-and-re-steer failover
(:meth:`~repro.osbase.sharding.ShardedDatapath.recovery_action_set`)
into this protocol.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.coordination.signaling import SignalingAgent
from repro.opencom.errors import OpenComError

_ROUND_IDS = itertools.count(1)


class ReconfigError(OpenComError):
    """Reconfiguration protocol failure."""


@dataclass
class ActionSet:
    """Local actions a participant runs for one reconfiguration kind."""

    quiesce: Callable[[dict], bool]
    apply: Callable[[dict], None]
    resume: Callable[[dict], None]
    rollback: Callable[[dict], None] | None = None


@dataclass
class ReconfigRound:
    """Coordinator-side record of one two-phase round."""

    round_id: int
    kind: str
    participants: list[str]
    parameters: dict[str, Any]
    status: str = "preparing"  # preparing | committed | aborted
    votes: dict[str, bool] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True once the round has resolved either way."""
        return self.status in ("committed", "aborted")


class ReconfigCoordinator:
    """Drives two-phase reconfiguration rounds from one node."""

    def __init__(self, signaling: SignalingAgent) -> None:
        self.signaling = signaling
        self.rounds: dict[int, ReconfigRound] = {}
        signaling.on("reconfig.vote", self._on_vote)

    def start(
        self,
        kind: str,
        participants: list[str],
        parameters: dict[str, Any] | None = None,
        *,
        deadline: float | None = None,
    ) -> ReconfigRound:
        """Begin a round; resolution happens as the engine delivers votes.

        *deadline* (virtual seconds from now) arms the missing-vote
        abort: if the round is still unresolved when it expires — votes
        lost beyond retransmission, a partitioned participant, a crashed
        quiesce that never answered — the coordinator aborts, reliably
        telling every participant to roll back and resume.  Without a
        deadline the caller owns stall policy (:meth:`abort_stalled`),
        which is how the pre-existing tests drive it.
        """
        if not participants:
            raise ReconfigError("a round needs at least one participant")
        round_ = ReconfigRound(
            round_id=next(_ROUND_IDS),
            kind=kind,
            participants=list(participants),
            parameters=dict(parameters or {}),
        )
        self.rounds[round_.round_id] = round_
        round_.events.append("prepare-sent")
        for participant in participants:
            self.signaling.send_reliable(
                participant,
                "reconfig.prepare",
                round=round_.round_id,
                kind=kind,
                parameters=round_.parameters,
                coordinator=self.signaling.node.name,
            )
        if deadline is not None:
            if deadline <= 0:
                raise ReconfigError(f"deadline must be positive, got {deadline}")
            self.signaling.topology.engine.schedule(
                deadline, lambda: self._on_deadline(round_)
            )
        return round_

    def _on_deadline(self, round_: ReconfigRound) -> None:
        if round_.complete:
            return
        missing = sorted(set(round_.participants) - set(round_.votes))
        round_.events.append(f"deadline-expired (missing votes: {missing})")
        self._finish(round_, commit=False)

    def _on_vote(self, message: dict, sender: str) -> None:
        round_ = self.rounds.get(message["round"])
        if round_ is None or round_.complete:
            return
        round_.votes[sender] = bool(message["yes"])
        round_.events.append(f"vote {sender}: {message['yes']}")
        if not message["yes"]:
            self._finish(round_, commit=False)
            return
        if set(round_.votes) >= set(round_.participants):
            self._finish(round_, commit=True)

    def _finish(self, round_: ReconfigRound, *, commit: bool) -> None:
        round_.status = "committed" if commit else "aborted"
        verb = "commit" if commit else "abort"
        round_.events.append(verb)
        for participant in round_.participants:
            self.signaling.send_reliable(
                participant,
                f"reconfig.{verb}",
                round=round_.round_id,
                kind=round_.kind,
                parameters=round_.parameters,
            )

    def abort_stalled(self, round_: ReconfigRound) -> None:
        """Manually abort a round that never gathered all votes (deadline
        policy is the caller's: virtual time is theirs to manage)."""
        if not round_.complete:
            self._finish(round_, commit=False)


class ReconfigParticipant:
    """Per-node participant: executes registered action sets."""

    def __init__(self, signaling: SignalingAgent) -> None:
        self.signaling = signaling
        self._actions: dict[str, ActionSet] = {}
        self._prepared: dict[int, dict] = {}
        self.log: list[str] = []
        signaling.on("reconfig.prepare", self._on_prepare)
        signaling.on("reconfig.commit", self._on_commit)
        signaling.on("reconfig.abort", self._on_abort)

    def register(self, kind: str, actions: ActionSet) -> None:
        """Register the local action set for one reconfiguration kind."""
        if kind in self._actions:
            raise ReconfigError(f"actions for kind {kind!r} already registered")
        self._actions[kind] = actions

    def _on_prepare(self, message: dict, sender: str) -> None:
        kind = message["kind"]
        round_id = message["round"]
        actions = self._actions.get(kind)
        if actions is None:
            self.log.append(f"prepare {round_id}: unknown kind {kind}")
            self._vote(message, False)
            return
        try:
            ready = actions.quiesce(message["parameters"])
        except Exception as exc:  # noqa: BLE001 - vote no instead of dying
            self.log.append(f"prepare {round_id}: quiesce failed: {exc!r}")
            self._vote(message, False)
            return
        if ready:
            self._prepared[round_id] = message
            self.log.append(f"prepare {round_id}: quiesced")
        else:
            self.log.append(f"prepare {round_id}: refused")
        self._vote(message, ready)

    def _on_commit(self, message: dict, sender: str) -> None:
        round_id = message["round"]
        prepared = self._prepared.pop(round_id, None)
        if prepared is None:
            return
        actions = self._actions[message["kind"]]
        try:
            actions.apply(message["parameters"])
            self.log.append(f"commit {round_id}: applied")
        except Exception as exc:  # noqa: BLE001 - roll back on apply failure
            self.log.append(f"commit {round_id}: apply failed: {exc!r}")
            if actions.rollback is not None:
                actions.rollback(message["parameters"])
                self.log.append(f"commit {round_id}: rolled back")
        finally:
            actions.resume(message["parameters"])
            self.log.append(f"commit {round_id}: resumed")

    def _on_abort(self, message: dict, sender: str) -> None:
        round_id = message["round"]
        prepared = self._prepared.pop(round_id, None)
        actions = self._actions.get(message["kind"])
        if actions is None:
            return
        if prepared is not None:
            if actions.rollback is not None:
                actions.rollback(message["parameters"])
                self.log.append(f"abort {round_id}: rolled back")
            actions.resume(message["parameters"])
            self.log.append(f"abort {round_id}: resumed unchanged")

    def _vote(self, message: dict, yes: bool) -> None:
        self.signaling.send_reliable(
            message["coordinator"],
            "reconfig.vote",
            round=message["round"],
            yes=yes,
        )


def register_shard_recovery(
    participant: ReconfigParticipant,
    datapath: Any,
    *,
    kind: str = "shard-recovery",
) -> None:
    """Bind a sharded datapath's failure-domain recovery to the two-phase
    protocol.

    *datapath* is any object exposing ``recovery_action_set()`` (the
    :class:`~repro.osbase.sharding.ShardedDatapath` contract: a mapping
    of ``quiesce``/``apply``/``resume``/``rollback`` callables keyed for
    :class:`ActionSet`, each taking the round's parameter dict — which
    must carry ``{"shard": <dead index>}`` and may carry ``{"to":
    <successor index>}``).  osbase cannot import upward, so the bridge
    from duck-typed callables to a registered ActionSet lives here, on
    the coordination side.

    A committed round performs quiesce → drain-through-peers → re-steer
    (`docs/robustness.md` walks the sequence); an aborted round — lost
    votes, a deadline expiry mid-partition — rolls the quiesce back, and
    the supervisor's failover stealing keeps the dead shard's backlog
    draining in the meantime.
    """
    participant.register(kind, ActionSet(**datapath.recovery_action_set()))


def register_shard_resize(
    participant: ReconfigParticipant,
    datapath: Any,
    *,
    kind: str = "shard-resize",
) -> None:
    """Bind a sharded datapath's elastic resize to the two-phase
    protocol.

    *datapath* is any object exposing ``resize_action_set()`` (the
    :class:`~repro.osbase.sharding.ShardedDatapath` contract: a mapping
    of ``quiesce``/``apply``/``resume``/``rollback`` callables keyed for
    :class:`ActionSet`, each taking the round's parameter dict — which
    must carry ``{"shards": <target worker count>}``).  As with
    recovery, osbase cannot import upward, so the bridge lives here.

    A committed round performs quiesce-all → drain-before-rehash →
    pool re-carve → table swap (`docs/concurrency.md` walks the
    sequence); an aborted round — a refused target, a held buffer
    failing the exact pool hand-off, a deadline expiry — rolls the
    quiesce back with the fleet untouched and every parked frame
    returned to its ring.
    """
    participant.register(kind, ActionSet(**datapath.resize_action_set()))


def register_capsule_upgrade(
    participant: ReconfigParticipant,
    capsule_node: Any,
    *,
    kind: str = "capsule-upgrade",
) -> None:
    """Bind a fleet capsule's staged pipeline upgrade to the two-phase
    protocol.

    *capsule_node* is any object exposing ``upgrade_action_set()`` (the
    :class:`~repro.router.fleet.CapsuleNode` contract: quiesce parks
    ingress and drains the running datapath to empty; apply swaps in the
    pipeline version named by ``{"version": ...}``; resume re-steers the
    parked frames into whichever datapath survived; rollback re-installs
    the previous version).  The canary-gated driver over this kind is
    :class:`~repro.coordination.deployment.StagedRollout` — an aborted
    or reverted round leaves the capsule processing exactly the bytes it
    would have processed had the round never started.
    """
    participant.register(kind, ActionSet(**capsule_node.upgrade_action_set()))
