"""Closed-loop self-adaptation: monitor → policy → rule-checked actuation.

Every reconfiguration this repo can perform — queue-discipline swap,
scheduler swap, batch/steal retune, elastic resize — so far happened
because a test called it.  This module closes the loop in the style the
paper argues reflective middleware exists for: a monitor samples the
running system *through its meta-models* into a sliding
:class:`ContextWindow`, a :class:`PolicyEngine` maps window conditions
to :class:`AdaptationAction`\\ s, and **every** action is validated
against a typed rule set before it reaches the actuation machinery.  A
bad adaptation is not deployed and rolled back — it is *vetoed with a
typed reason* (:class:`AdaptationVeto`), observable state untouched.

Governance before actuation, concretely:

- ``no-resize-during-round`` — an elastic resize must not start while a
  two-phase round (resize or recovery) holds the datapath quiesced;
- ``no-swap-on-live-port`` — a discipline swap must quiesce the
  admission port it mutates (an action opting out via
  ``params["quiesce"]=False`` on a live port is refused);
- ``decompile-before-vtable-mutation`` — compiled hot-path regions must
  be torn down before any swap mutates a vtable (opting out via
  ``params["decompile"]=False`` while shards run compiled is refused);
- ``cf-admissible`` — the replacement component itself must satisfy the
  admission tier's Router-CF rules (:mod:`repro.cf.rules`) before the
  swap is attempted.

The rule objects share the ``check(subject, ...) -> list[str]``
convention of :mod:`repro.cf.rules`, so
:func:`~repro.cf.rules.explain_rules` produces the typed
(rule, reason) pairs for both CF plug-in rules and adaptation rules.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.cf.rules import Violation, explain_rules


class AdaptationError(Exception):
    """Raised on malformed actions or actuation misuse (not on vetoes —
    a veto is an outcome, not an error)."""


# ---------------------------------------------------------------------------
# Context window
# ---------------------------------------------------------------------------


class ContextWindow:
    """Sliding window of monitor samples (newest last).

    Each sample is a flat ``signal -> value`` dict; the monitor stamps
    virtual time under ``"t"``.  Accessors skip samples that lack the
    requested signal, so sources can come and go without poisoning the
    whole window.
    """

    def __init__(self, size: int = 16) -> None:
        if size < 1:
            raise AdaptationError(f"window size must be >= 1, got {size}")
        self.size = size
        self._samples: deque[dict[str, float]] = deque(maxlen=size)

    def record(self, sample: dict[str, float]) -> dict[str, float]:
        """Append one reading (stored as a copy); returns the stored dict."""
        stored = dict(sample)
        self._samples.append(stored)
        return stored

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[dict[str, float], ...]:
        return tuple(self._samples)

    def series(self, signal: str, *, ticks: int | None = None) -> list[float]:
        """Values of *signal* oldest→newest, restricted to the last
        *ticks* samples when given."""
        values = [s[signal] for s in self._samples if signal in s]
        if ticks is not None:
            values = values[-ticks:]
        return values

    def latest(self, signal: str, default: float = 0.0) -> float:
        for sample in reversed(self._samples):
            if signal in sample:
                return sample[signal]
        return default

    def mean(self, signal: str, *, ticks: int | None = None) -> float:
        values = self.series(signal, ticks=ticks)
        return sum(values) / len(values) if values else 0.0

    def delta(self, signal: str, *, ticks: int | None = None) -> float:
        """Newest minus oldest value over the (restricted) window."""
        values = self.series(signal, ticks=ticks)
        return values[-1] - values[0] if len(values) >= 2 else 0.0

    def rate(self, signal: str, *, ticks: int | None = None) -> float:
        """Per-virtual-time rate of a cumulative signal: Δsignal / Δt
        over the (restricted) window; 0 when time has not advanced."""
        samples = [s for s in self._samples if signal in s and "t" in s]
        if ticks is not None:
            samples = samples[-ticks:]
        if len(samples) < 2:
            return 0.0
        dt = samples[-1]["t"] - samples[0]["t"]
        if dt <= 0:
            return 0.0
        return (samples[-1][signal] - samples[0][signal]) / dt

    def sustained(
        self, signal: str, predicate: Callable[[float], bool], ticks: int
    ) -> bool:
        """*predicate* holds on every one of the last *ticks* samples
        (False when fewer than *ticks* readings exist yet)."""
        values = self.series(signal, ticks=ticks)
        return len(values) >= ticks and all(predicate(v) for v in values)

    def sustained_increase(self, signal: str, ticks: int) -> bool:
        """The cumulative *signal* grew across each of the last *ticks*
        consecutive sample pairs (needs ``ticks + 1`` readings)."""
        values = self.series(signal, ticks=ticks + 1)
        if len(values) < ticks + 1:
            return False
        return all(b > a for a, b in zip(values, values[1:]))


# ---------------------------------------------------------------------------
# Actions, vetoes, system view
# ---------------------------------------------------------------------------

#: The action catalog: every kind the actuator understands.
ACTION_KINDS = (
    "swap-queue",
    "swap-scheduler",
    "set-batch",
    "set-steal-watermark",
    "resize",
)


@dataclass(frozen=True)
class AdaptationAction:
    """One proposed adaptation.

    ``params`` by kind:

    - ``swap-queue``: ``class`` (traffic class), ``factory`` (queue
      component factory), optional ``label``; ``quiesce``/``decompile``
      default True — the safe actuation protocol.  Setting either False
      requests skipping that step, which the rule engine refuses
      whenever the step is actually needed.
    - ``swap-scheduler``: ``factory``, optional ``label``, same
      ``quiesce``/``decompile`` escape hatches.
    - ``set-batch`` / ``set-steal-watermark``: ``n``.
    - ``resize``: ``shards``.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise AdaptationError(
                f"unknown action kind {self.kind!r}; catalog: {ACTION_KINDS}"
            )

    def describe(self) -> str:
        label = self.params.get("label")
        detail = label if label else ", ".join(
            f"{k}={v!r}" for k, v in self.params.items() if k != "factory"
        )
        return f"{self.kind}({detail})" + (f" [{self.reason}]" if self.reason else "")


@dataclass(frozen=True)
class AdaptationVeto:
    """One refused adaptation: the action, the rule that stopped it, and
    the rule's reason — the typed (rule, reason) pair the tentpole
    requires instead of a deployed-then-rolled-back failure."""

    action: AdaptationAction
    rule: str
    reason: str

    def __str__(self) -> str:
        return f"VETO {self.action.describe()}: [{self.rule}] {self.reason}"


@dataclass
class SystemView:
    """What the rules and policies may observe: the sharded datapath, the
    edge admission tier, optional placement model, and any extra
    round-open probes (e.g. a distributed coordinator's in-flight
    rounds)."""

    datapath: Any
    admission: Any
    placement: Any = None
    round_probes: tuple[Callable[[], bool], ...] = ()

    def round_open(self) -> bool:
        if self.datapath.round_open:
            return True
        return any(probe() for probe in self.round_probes)

    def compiled_regions(self) -> list[str]:
        """Names of live compiled regions a vtable mutation would race."""
        regions = [f"shard{i}" for i in self.datapath.compiled_shards()]
        pipeline = getattr(self.admission, "pipeline", None)
        if pipeline is not None and pipeline.compiled_active:
            regions.append("admission")
        return regions


# ---------------------------------------------------------------------------
# Adaptation rules (check(action, view) -> list[str], explain_rules-shaped)
# ---------------------------------------------------------------------------


class AdaptationRule:
    """Base: same contract as :class:`repro.cf.rules.Rule` but over
    (action, view) pairs."""

    name = "adaptation-rule"

    def check(self, action: AdaptationAction, view: SystemView) -> list[str]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<{type(self).__name__} {self.name}>"


class NoResizeDuringRound(AdaptationRule):
    """An elastic resize must not start while a two-phase round is open
    (the rounds are mutually exclusive inside the datapath; this rule
    turns the late refusal into an up-front typed veto)."""

    name = "no-resize-during-round"

    def check(self, action: AdaptationAction, view: SystemView) -> list[str]:
        if action.kind != "resize":
            return []
        if view.round_open():
            return [
                "a two-phase round (resize/recovery) is open; a second "
                "structural change must wait for commit or rollback"
            ]
        return []


class NoSwapOnLivePort(AdaptationRule):
    """Discipline swaps must quiesce the admission port they mutate: an
    action opting out (``quiesce=False``) while the port is live is
    refused."""

    name = "no-swap-on-live-port"

    def check(self, action: AdaptationAction, view: SystemView) -> list[str]:
        if action.kind not in ("swap-queue", "swap-scheduler"):
            return []
        if action.params.get("quiesce", True):
            return []
        if not view.admission.quiesced:
            return [
                "swap requests quiesce=False but the admission port is "
                "live; quiesce the port (or let the actuator do it)"
            ]
        return []


class DecompileBeforeVtableMutation(AdaptationRule):
    """Compiled hot-path regions must be torn down before a swap mutates
    vtables: an action opting out (``decompile=False``) while regions
    run compiled is refused."""

    name = "decompile-before-vtable-mutation"

    def check(self, action: AdaptationAction, view: SystemView) -> list[str]:
        if action.kind not in ("swap-queue", "swap-scheduler"):
            return []
        if action.params.get("decompile", True):
            return []
        regions = view.compiled_regions()
        if regions:
            return [
                "swap requests decompile=False with compiled regions "
                f"active ({', '.join(regions)}); a vtable mutation must "
                "not race a specialised chain"
            ]
        return []


class CfAdmissible(AdaptationRule):
    """The replacement component must itself satisfy the admission
    tier's CF rules — the :mod:`repro.cf.rules` half of validation.  A
    probe instance is built from the action's factory and checked
    *before* any swap machinery runs."""

    name = "cf-admissible"

    def check(self, action: AdaptationAction, view: SystemView) -> list[str]:
        if action.kind not in ("swap-queue", "swap-scheduler"):
            return []
        factory = action.params.get("factory")
        if factory is None:
            return ["swap action carries no replacement factory"]
        try:
            probe = factory()
        except Exception as exc:  # noqa: BLE001 - any factory failure is a veto
            return [f"replacement factory failed: {exc!r}"]
        failures = view.admission.pipeline.cf.validate_component(probe)
        return [f"replacement rejected by CF: {failure}" for failure in failures]


def adaptation_rules() -> list[AdaptationRule]:
    """The stock adaptation rule set (fresh instances)."""
    return [
        NoResizeDuringRound(),
        NoSwapOnLivePort(),
        DecompileBeforeVtableMutation(),
        CfAdmissible(),
    ]


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class Policy:
    """One condition → action mapping over the context window."""

    name = "policy"

    def evaluate(
        self, window: ContextWindow, view: SystemView
    ) -> list[AdaptationAction]:
        raise NotImplementedError


class SustainedBurstPolicy(Policy):
    """Sustained burst pressure → drop-tail→RED on the configured class,
    plus batch/steal retuning so the fleet drains deeper backlogs.

    Fires when the drop signal grew across each of the last *ticks*
    sample pairs (cumulative counters: growth == fresh drops) — a single
    spike never triggers it — and only while the class still runs a
    non-RED queue, so the swap is emitted once.
    """

    name = "sustained-burst"

    def __init__(
        self,
        *,
        queue_class: str,
        red_factory: Callable[[], Any],
        drop_signal: str = "admission_drops",
        ticks: int = 3,
        batch: int | None = None,
        steal_watermark: int | None = None,
    ) -> None:
        self.queue_class = queue_class
        self.red_factory = red_factory
        self.drop_signal = drop_signal
        self.ticks = ticks
        self.batch = batch
        self.steal_watermark = steal_watermark

    def evaluate(
        self, window: ContextWindow, view: SystemView
    ) -> list[AdaptationAction]:
        if not window.sustained_increase(self.drop_signal, self.ticks):
            return []
        reason = (
            f"{self.drop_signal} grew {self.ticks} consecutive ticks "
            f"(+{window.delta(self.drop_signal, ticks=self.ticks + 1):.0f})"
        )
        actions: list[AdaptationAction] = []
        shape = view.admission.describe()
        if shape["queues"].get(self.queue_class) != "RedQueue":
            actions.append(
                AdaptationAction(
                    "swap-queue",
                    {
                        "class": self.queue_class,
                        "factory": self.red_factory,
                        "label": f"{self.queue_class}: drop-tail -> RED",
                    },
                    reason=reason,
                )
            )
        if self.batch is not None and view.datapath.batch != self.batch:
            actions.append(
                AdaptationAction("set-batch", {"n": self.batch}, reason=reason)
            )
        if (
            self.steal_watermark is not None
            and getattr(view.datapath, "steal_watermark", None) != self.steal_watermark
        ):
            actions.append(
                AdaptationAction(
                    "set-steal-watermark",
                    {"n": self.steal_watermark},
                    reason=reason,
                )
            )
        return actions


class ClassStarvationPolicy(Policy):
    """A latency class pinned at depth under a fair scheduler → strict
    priority, so the starved class drains first.

    Fires when the class's admission depth stayed at or above
    *min_depth* for *ticks* consecutive samples and the tier is not
    already running the target scheduler.
    """

    name = "class-starvation"

    def __init__(
        self,
        *,
        klass: str,
        scheduler_factory: Callable[[], Any],
        scheduler_type: str = "PriorityLinkScheduler",
        min_depth: int = 1,
        ticks: int = 3,
    ) -> None:
        self.klass = klass
        self.scheduler_factory = scheduler_factory
        self.scheduler_type = scheduler_type
        self.min_depth = min_depth
        self.ticks = ticks

    def evaluate(
        self, window: ContextWindow, view: SystemView
    ) -> list[AdaptationAction]:
        if view.admission.describe()["scheduler"] == self.scheduler_type:
            return []
        signal = f"admission_depth:{self.klass}"
        if not window.sustained(signal, lambda v: v >= self.min_depth, self.ticks):
            return []
        return [
            AdaptationAction(
                "swap-scheduler",
                {
                    "factory": self.scheduler_factory,
                    "label": f"scheduler -> {self.scheduler_type}",
                },
                reason=(
                    f"class {self.klass!r} pinned >= {self.min_depth} deep "
                    f"for {self.ticks} ticks (starved under fair sharing)"
                ),
            )
        ]


class PlacementResizePolicy(Policy):
    """Load-driven elastic sizing through the placement model.

    - *Scale up*: sustained offered load (admitted-rate over the window,
      scaled by *rate_scale*) asks the placement model
      (:meth:`ShardPlacement.recommend`) for the smallest covering fleet;
      a recommendation above the current live fleet — with backlog
      *balanced* (divergence at most *max_divergence*: skew means steal
      or recovery work, not capacity) — emits a resize.
    - *Scale down*: a quiet system (admission empty, backlog empty, rate
      under *quiet_rate*) for *ticks* samples shrinks back to
      *min_shards*.
    """

    name = "placement-resize"

    def __init__(
        self,
        *,
        placement: Any,
        rate_scale: float = 1.0,
        headroom: float = 1.25,
        max_divergence: float = 64.0,
        quiet_rate: float = 1.0,
        ticks: int = 3,
        min_shards: int = 1,
        max_shards: int | None = None,
    ) -> None:
        self.placement = placement
        self.rate_scale = rate_scale
        self.headroom = headroom
        self.max_divergence = max_divergence
        self.quiet_rate = quiet_rate
        self.ticks = ticks
        self.min_shards = min_shards
        self.max_shards = max_shards

    def evaluate(
        self, window: ContextWindow, view: SystemView
    ) -> list[AdaptationAction]:
        if len(window) < self.ticks:
            return []
        current = len(view.datapath.shards)
        rate = window.rate("admitted_total", ticks=self.ticks) * self.rate_scale
        if rate >= self.quiet_rate:
            if window.mean("backlog_divergence", ticks=self.ticks) > self.max_divergence:
                return []
            target = self.placement.recommend(rate, headroom=self.headroom)
            if self.max_shards is not None:
                target = min(target, self.max_shards)
            if target > current:
                return [
                    AdaptationAction(
                        "resize",
                        {"shards": target},
                        reason=(
                            f"offered load ~{rate:.0f} pps exceeds the "
                            f"{current}-shard envelope; placement recommends "
                            f"{target}"
                        ),
                    )
                ]
            return []
        quiet = (
            window.sustained("admission_depth", lambda v: v <= 0, self.ticks)
            and window.sustained("backlog_total", lambda v: v <= 0, self.ticks)
        )
        if quiet and current > self.min_shards:
            return [
                AdaptationAction(
                    "resize",
                    {"shards": self.min_shards},
                    reason=(
                        f"quiet for {self.ticks} ticks (rate {rate:.1f} < "
                        f"{self.quiet_rate}); shrinking to {self.min_shards}"
                    ),
                )
            ]
        return []


class PolicyEngine:
    """Evaluates every policy against the window, in order."""

    def __init__(self, policies: Iterable[Policy] = ()) -> None:
        self.policies: list[Policy] = list(policies)

    def decide(
        self, window: ContextWindow, view: SystemView
    ) -> list[AdaptationAction]:
        decided: list[AdaptationAction] = []
        for policy in self.policies:
            decided.extend(policy.evaluate(window, view))
        return decided


# ---------------------------------------------------------------------------
# Manager + monitor thread
# ---------------------------------------------------------------------------


class AdaptationManager:
    """The closed loop: sample → decide → rule-check → actuate.

    ``monitor`` is a :class:`~repro.appservices.monitor.MonitorCF` (its
    ``sample_all()`` is the merged reading); ``clock`` defaults to the
    datapath's virtual clock and stamps each sample's ``"t"``.  Every
    action — policy-decided or externally :meth:`request`\\ ed — passes
    the rule set first; refusals append an :class:`AdaptationVeto` and
    leave the system untouched.
    """

    def __init__(
        self,
        view: SystemView,
        monitor: Any,
        *,
        policies: Sequence[Policy] = (),
        rules: Sequence[AdaptationRule] | None = None,
        window_size: int = 16,
        clock: Any = None,
    ) -> None:
        self.view = view
        self.monitor = monitor
        self.engine = PolicyEngine(policies)
        self.rules: list[AdaptationRule] = (
            list(rules) if rules is not None else adaptation_rules()
        )
        self.window = ContextWindow(window_size)
        self.clock = clock if clock is not None else view.datapath.threads.clock
        self.applied: list[AdaptationAction] = []
        self.vetoes: list[AdaptationVeto] = []

    # -- the loop ----------------------------------------------------------

    def sample(self) -> dict[str, float]:
        """Take one merged monitor reading into the window."""
        reading = self.monitor.sample_all()
        reading["t"] = self.clock.now
        return self.window.record(reading)

    def tick(self) -> list[AdaptationAction]:
        """One control-loop iteration: sample, decide, request each
        decided action; returns the actions actually applied."""
        self.sample()
        applied: list[AdaptationAction] = []
        for action in self.engine.decide(self.window, self.view):
            if self.request(action):
                applied.append(action)
        return applied

    def request(self, action: AdaptationAction) -> bool:
        """Validate and (only if clean) actuate one action.

        Returns True when applied.  On refusal every (rule, reason) pair
        becomes an :class:`AdaptationVeto` and *nothing* is actuated —
        the typed-veto guarantee the property suite pins down as
        byte-identical observable state.
        """
        violations: list[Violation] = explain_rules(self.rules, action, self.view)
        if violations:
            self.vetoes.extend(
                AdaptationVeto(action=action, rule=v.rule, reason=v.reason)
                for v in violations
            )
            return False
        self._actuate(action)
        self.applied.append(action)
        return True

    def audit(self) -> list[str]:
        """Re-validate every governed CF (admission + monitor); a
        rule-valid system returns ``[]`` — the post-application check
        the property suite runs after every applied action."""
        failures: list[str] = []
        for cf in (self.view.admission.pipeline.cf, self.monitor):
            for name, plugin_failures in cf.validate_all().items():
                failures.extend(f"{name}: {f}" for f in plugin_failures)
        return failures

    # -- actuation ---------------------------------------------------------

    def _actuate(self, action: AdaptationAction) -> None:
        datapath = self.view.datapath
        admission = self.view.admission
        params = action.params
        if action.kind == "set-batch":
            datapath.retune_batch(params["n"])
            return
        if action.kind == "set-steal-watermark":
            datapath.retune_steal_watermark(params["n"])
            return
        if action.kind == "resize":
            if params["shards"] != len(datapath.shards):
                datapath.resize(params["shards"])
            return
        # swap-queue / swap-scheduler: quiesce the port and tear down
        # compiled regions around the mutation (the rule set already
        # refused any action that opted out while the step was needed).
        quiesce = params.get("quiesce", True)
        decompile = params.get("decompile", True)
        was_quiesced = admission.quiesced
        recompile_after = False
        if quiesce and not was_quiesced:
            admission.quiesce()
        try:
            if decompile:
                recompile_after = bool(datapath.compiled_shards())
                datapath.decompile_all()
                admission.pipeline.decompile()
            if action.kind == "swap-queue":
                admission.swap_queue(params["class"], params["factory"])
            else:
                admission.swap_scheduler(params["factory"])
        finally:
            if recompile_after:
                datapath.recompile_all()
            if quiesce and not was_quiesced:
                admission.resume()


class MonitorThread:
    """The monitor as a SimThread on the existing engine: one
    :meth:`AdaptationManager.tick` every *period* quanta, sharing the
    virtual clock with the workers it observes."""

    def __init__(
        self,
        manager: AdaptationManager,
        *,
        period: int = 1,
        name: str = "adaptation-monitor",
    ) -> None:
        if period < 1:
            raise AdaptationError(f"period must be >= 1, got {period}")
        self.manager = manager
        self.period = period
        self.name = name
        self.thread: Any = None
        self._stop = False
        self.ticks = 0

    def body(self):
        while not self._stop:
            self.manager.tick()
            self.ticks += 1
            for _ in range(self.period):
                yield
                if self._stop:
                    return

    def spawn(self, threads: Any) -> Any:
        """Spawn onto a :class:`~repro.osbase.scheduler.ThreadManagerCF`;
        returns the SimThread."""
        self.thread = threads.spawn(self.name, self.body())
        return self.thread

    def stop(self) -> None:
        """Ask the body to finish at its next quantum."""
        self._stop = True
