"""Out-of-band signaling (stratum 4).

A :class:`SignalingAgent` lives on each participating node, registered for
the ``PROTO_SIGNALING`` protocol number.  Messages are dicts serialised
with ``repr``/``ast.literal_eval`` (literals only) and routed hop-by-hop
along shortest paths: intermediate agents forward messages not addressed
to them, so signaling really crosses the simulated network rather than
teleporting.

Higher protocols (RSVP-like reservation, Genesis spawning, distributed
reconfiguration) register typed message handlers on the agent.

Delivery model
--------------
``send`` is fire-and-forget: the network may lose, partition away, or
(under fault injection) duplicate or delay the message, and nobody will
ever know.  ``send_reliable`` layers *at-least-once* delivery on top —
the receiver acks by message id, the sender retransmits on an engine-time
timeout under capped exponential backoff with deterministic jitter
(:class:`~repro.netsim.engine.BackoffPolicy`), and receivers dedupe by
message id so a retransmitted (or fault-duplicated) message dispatches
its handler exactly once.  At-least-once *transport* plus idempotent
*receive* is what lets the reconfiguration protocol survive real loss:
a dropped prepare is retried, a dropped vote is retried, and a partition
that outlives every retry resolves through the coordinator's deadline
(abort), never as a hung round.  ``docs/robustness.md`` tabulates the
retry/backoff policies.

Fault injection hooks in *below* the reliability layer: an installed
:attr:`SignalingAgent.fault_hook` sees every locally originated
transmission (first sends and retransmits alike) and may drop, delay, or
duplicate it — see :class:`repro.netsim.faults.SignalingFaults`.
"""

from __future__ import annotations

import ast
import itertools
from collections.abc import Callable
from typing import Any

from repro.netsim.engine import BackoffPolicy, RetryTimer
from repro.netsim.node import Node
from repro.netsim.packet import (
    PROTO_SIGNALING,
    IPv4Header,
    Packet,
    PacketError,
)
from repro.netsim.topology import Topology
from repro.opencom.errors import OpenComError

_MESSAGE_IDS = itertools.count(1)

MessageHandler = Callable[[dict, str], None]

#: Default reliable-delivery policy: first retransmit after 20 virtual
#: milliseconds, doubling to a 200 ms cap, five transmissions total.
#: (Hop latencies in the testbed are ~1 ms, so the initial timeout is an
#: order of magnitude above a healthy round trip.)
DEFAULT_TIMEOUT = 0.02
DEFAULT_ATTEMPTS = 5


class SignalingError(OpenComError):
    """Signaling failure: unknown destination, malformed message, ..."""


def encode_message(message: dict) -> bytes:
    """Serialise a signaling message (literals only)."""
    return repr(message).encode()


def decode_message(payload: bytes | memoryview) -> dict:
    """Parse a signaling message; raises PacketError when malformed.

    Accepts the zero-copy path's memoryview payloads (one materialisation
    at the delivery edge, as in ``appservices.capsules.decode_capsule``).
    """
    if isinstance(payload, memoryview):
        payload = payload.tobytes()
    try:
        message = ast.literal_eval(payload.decode())
    except (ValueError, SyntaxError, UnicodeDecodeError) as exc:
        raise PacketError(f"malformed signaling message: {exc}") from exc
    if not isinstance(message, dict):
        raise PacketError("signaling payload is not a dict")
    return message


class Delivery:
    """Sender-side record of one reliable send.

    ``status`` moves ``pending`` → ``delivered`` (ack received) or
    ``failed`` (every transmission timed out).  *on_result* — if given —
    fires exactly once with ``True``/``False`` at that transition.
    """

    __slots__ = ("message_id", "message", "status", "attempts", "on_result", "timer")

    def __init__(
        self,
        message_id: int,
        message: dict,
        on_result: Callable[[bool], None] | None,
    ) -> None:
        self.message_id = message_id
        self.message = message
        self.status = "pending"
        self.attempts = 1
        self.on_result = on_result
        self.timer: RetryTimer | None = None

    @property
    def pending(self) -> bool:
        return self.status == "pending"


class SignalingAgent:
    """Per-node signaling endpoint with hop-by-hop forwarding."""

    #: Receiver-side dedupe window: remembered message ids (per agent).
    #: Ids are globally unique (one process-wide counter), so the set
    #: only ever grows by messages actually addressed here; the cap
    #: bounds a pathological run.
    DEDUPE_LIMIT = 4096

    def __init__(
        self,
        node: Node,
        topology: Topology,
        *,
        retry_policy: BackoffPolicy | None = None,
    ) -> None:
        self.node = node
        self.topology = topology
        self._handlers: dict[str, MessageHandler] = {}
        self.counters = {
            "sent": 0,
            "received": 0,
            "forwarded": 0,
            "dropped": 0,
            "retransmits": 0,
            "acks_sent": 0,
            "duplicates": 0,
            "delivery_failures": 0,
            "injected_drops": 0,
            "injected_delays": 0,
            "injected_duplicates": 0,
        }
        node.register_protocol(PROTO_SIGNALING, self._on_packet)
        #: node name -> agent, maintained by attach_agents for direct tests.
        self.sent_log: list[dict] = []
        #: Reliable-delivery state: message id -> Delivery.
        self.deliveries: dict[int, Delivery] = {}
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else BackoffPolicy(
                base=DEFAULT_TIMEOUT, cap=10 * DEFAULT_TIMEOUT, seed=node.name
            )
        )
        #: Receiver-side dedupe of reliable messages (insertion-ordered
        #: so eviction drops the oldest ids first).
        self._seen: dict[int, None] = {}
        #: Fault-injection hook over locally originated transmissions:
        #: ``hook(message) -> None | float | list[float]`` — None passes
        #: the message through, a float delays it that many seconds, a
        #: list transmits one copy per entry (empty list = drop).
        self.fault_hook: Callable[[dict], Any] | None = None

    # -- sending -----------------------------------------------------------------

    def send(self, dst_node: str, message_type: str, **fields: Any) -> int:
        """Send a typed message to the named node; returns the message id.

        The message travels the simulated network: it is scheduled onto
        links and arrives after real propagation/serialisation delay.
        Fire-and-forget — loss, partition, or an unlucky fault schedule
        loses it silently.
        """
        message_id = next(_MESSAGE_IDS)
        message = {
            "id": message_id,
            "type": message_type,
            "from": self.node.name,
            "to": dst_node,
            **fields,
        }
        self._transmit(message)
        self.counters["sent"] += 1
        self.sent_log.append(message)
        return message_id

    def send_reliable(
        self,
        dst_node: str,
        message_type: str,
        *,
        max_attempts: int = DEFAULT_ATTEMPTS,
        on_result: Callable[[bool], None] | None = None,
        **fields: Any,
    ) -> Delivery:
        """Send with at-least-once delivery; returns the Delivery record.

        The receiver acks by message id; this sender retransmits the
        *same* message (same id — the receiver's dedupe makes redelivery
        idempotent) on engine-time timeouts under the agent's backoff
        policy, up to *max_attempts* transmissions, then marks the
        delivery ``failed``.  Self-sends dispatch (and "ack") inline.
        """
        message_id = next(_MESSAGE_IDS)
        message = {
            "id": message_id,
            "type": message_type,
            "from": self.node.name,
            "to": dst_node,
            "ack": True,
            **fields,
        }
        delivery = Delivery(message_id, message, on_result)
        self.deliveries[message_id] = delivery
        self.counters["sent"] += 1
        self.sent_log.append(message)
        if dst_node == self.node.name:
            # Loopback: dispatched synchronously, trivially delivered.
            self._transmit(message)
            self._settle(delivery, True)
            return delivery
        delivery.timer = RetryTimer(
            self.topology.engine,
            policy=self.retry_policy,
            max_attempts=max_attempts,
            on_expire=lambda attempt, d=delivery: self._retransmit(d),
            on_exhausted=lambda d=delivery: self._settle(d, False),
        )
        self._transmit(message)
        delivery.timer.start()
        return delivery

    def _retransmit(self, delivery: Delivery) -> None:
        if not delivery.pending:
            return
        delivery.attempts += 1
        self.counters["retransmits"] += 1
        self._transmit(delivery.message)

    def _settle(self, delivery: Delivery, delivered: bool) -> None:
        if not delivery.pending:
            return
        delivery.status = "delivered" if delivered else "failed"
        if not delivered:
            self.counters["delivery_failures"] += 1
        if delivery.timer is not None:
            delivery.timer.cancel()
        if delivery.on_result is not None:
            delivery.on_result(delivered)

    def _transmit(self, message: dict) -> None:
        """Hand one message to the network (or the fault hook)."""
        if self.fault_hook is not None:
            plan = self.fault_hook(message)
            if plan is not None:
                copies = plan if isinstance(plan, list) else [plan]
                if not copies:
                    self.counters["injected_drops"] += 1
                    return
                if len(copies) > 1:
                    self.counters["injected_duplicates"] += len(copies) - 1
                engine = self.topology.engine
                for delay in copies:
                    if delay <= 0:
                        self._route_and_send(message)
                    else:
                        self.counters["injected_delays"] += 1
                        engine.schedule(
                            delay, lambda m=message: self._route_and_send(m)
                        )
                return
        self._route_and_send(message)

    def _route_and_send(self, message: dict) -> None:
        dst_node = message["to"]
        if dst_node == self.node.name:
            # Loopback delivery without touching the network.
            self._deliver_local(message)
            return
        next_hops = self.topology.next_hops(self.node.name)
        hop = next_hops.get(dst_node)
        if hop is None:
            raise SignalingError(
                f"{self.node.name} has no route to {dst_node!r}"
            )
        dst_address = self.topology.node(dst_node).address
        packet = Packet(
            IPv4Header(
                src=self.node.address,
                dst=dst_address,
                ttl=64,
                protocol=PROTO_SIGNALING,
            ),
            None,
            encode_message(message),
            created_at=self.topology.engine.now,
        )
        if not self.node.send_to_neighbor(hop, packet):
            self.counters["dropped"] += 1

    # -- receiving -----------------------------------------------------------------

    def _on_packet(self, packet: Packet, port: str) -> None:
        try:
            message = decode_message(packet.payload)
        except PacketError:
            self.counters["dropped"] += 1
            return
        if message.get("to") == self.node.name:
            self.counters["received"] += 1
            self._deliver_local(message)
            return
        # Transit: forward toward the destination.
        hop = self.topology.next_hops(self.node.name).get(message.get("to", ""))
        if hop is None or packet.net.ttl <= 1:
            self.counters["dropped"] += 1
            return
        packet.net.ttl -= 1
        packet.net.refresh_checksum()
        self.counters["forwarded"] += 1
        self.node.send_to_neighbor(hop, packet)

    def _deliver_local(self, message: dict) -> None:
        """Terminal delivery: ack/dedupe bookkeeping, then dispatch."""
        if message.get("type") == "sig.ack":
            delivery = self.deliveries.get(message.get("ack_of"))
            if delivery is not None:
                self._settle(delivery, True)
            return
        if message.get("ack"):
            message_id = message.get("id")
            # Ack first (even duplicates — the duplicate usually means
            # our previous ack was lost), then dispatch at most once.
            self.counters["acks_sent"] += 1
            self.send(message.get("from", "?"), "sig.ack", ack_of=message_id)
            if message_id in self._seen:
                self.counters["duplicates"] += 1
                return
            self._seen[message_id] = None
            if len(self._seen) > self.DEDUPE_LIMIT:
                self._seen.pop(next(iter(self._seen)))
        self._dispatch(message)

    def _dispatch(self, message: dict) -> None:
        handler = self._handlers.get(message.get("type", ""))
        if handler is None:
            self.counters["dropped"] += 1
            return
        handler(message, message.get("from", "?"))

    def on(self, message_type: str, handler: MessageHandler) -> None:
        """Register the handler for one message type."""
        if message_type in self._handlers:
            raise SignalingError(
                f"{self.node.name} already handles {message_type!r}"
            )
        self._handlers[message_type] = handler

    def off(self, message_type: str) -> None:
        """Remove a message-type handler."""
        self._handlers.pop(message_type, None)


def attach_agents(
    topology: Topology, *, retry_policy: BackoffPolicy | None = None
) -> dict[str, SignalingAgent]:
    """Create a signaling agent on every node of *topology*."""
    return {
        name: SignalingAgent(node, topology, retry_policy=retry_policy)
        for name, node in topology.nodes.items()
    }
