"""Out-of-band signaling (stratum 4).

A :class:`SignalingAgent` lives on each participating node, registered for
the ``PROTO_SIGNALING`` protocol number.  Messages are dicts serialised
with ``repr``/``ast.literal_eval`` (literals only) and routed hop-by-hop
along shortest paths: intermediate agents forward messages not addressed
to them, so signaling really crosses the simulated network rather than
teleporting.

Higher protocols (RSVP-like reservation, Genesis spawning, distributed
reconfiguration) register typed message handlers on the agent.
"""

from __future__ import annotations

import ast
import itertools
from collections.abc import Callable
from typing import Any

from repro.netsim.node import Node
from repro.netsim.packet import (
    PROTO_SIGNALING,
    IPv4Header,
    Packet,
    PacketError,
)
from repro.netsim.topology import Topology
from repro.opencom.errors import OpenComError

_MESSAGE_IDS = itertools.count(1)

MessageHandler = Callable[[dict, str], None]


class SignalingError(OpenComError):
    """Signaling failure: unknown destination, malformed message, ..."""


def encode_message(message: dict) -> bytes:
    """Serialise a signaling message (literals only)."""
    return repr(message).encode()


def decode_message(payload: bytes | memoryview) -> dict:
    """Parse a signaling message; raises PacketError when malformed.

    Accepts the zero-copy path's memoryview payloads (one materialisation
    at the delivery edge, as in ``appservices.capsules.decode_capsule``).
    """
    if isinstance(payload, memoryview):
        payload = payload.tobytes()
    try:
        message = ast.literal_eval(payload.decode())
    except (ValueError, SyntaxError, UnicodeDecodeError) as exc:
        raise PacketError(f"malformed signaling message: {exc}") from exc
    if not isinstance(message, dict):
        raise PacketError("signaling payload is not a dict")
    return message


class SignalingAgent:
    """Per-node signaling endpoint with hop-by-hop forwarding."""

    def __init__(self, node: Node, topology: Topology) -> None:
        self.node = node
        self.topology = topology
        self._handlers: dict[str, MessageHandler] = {}
        self.counters = {"sent": 0, "received": 0, "forwarded": 0, "dropped": 0}
        node.register_protocol(PROTO_SIGNALING, self._on_packet)
        #: node name -> agent, maintained by attach_agents for direct tests.
        self.sent_log: list[dict] = []

    # -- sending -----------------------------------------------------------------

    def send(self, dst_node: str, message_type: str, **fields: Any) -> int:
        """Send a typed message to the named node; returns the message id.

        The message travels the simulated network: it is scheduled onto
        links and arrives after real propagation/serialisation delay.
        """
        message_id = next(_MESSAGE_IDS)
        message = {
            "id": message_id,
            "type": message_type,
            "from": self.node.name,
            "to": dst_node,
            **fields,
        }
        self._route_and_send(message)
        self.counters["sent"] += 1
        self.sent_log.append(message)
        return message_id

    def _route_and_send(self, message: dict) -> None:
        dst_node = message["to"]
        if dst_node == self.node.name:
            # Loopback delivery without touching the network.
            self._dispatch(message)
            return
        next_hops = self.topology.next_hops(self.node.name)
        hop = next_hops.get(dst_node)
        if hop is None:
            raise SignalingError(
                f"{self.node.name} has no route to {dst_node!r}"
            )
        dst_address = self.topology.node(dst_node).address
        packet = Packet(
            IPv4Header(
                src=self.node.address,
                dst=dst_address,
                ttl=64,
                protocol=PROTO_SIGNALING,
            ),
            None,
            encode_message(message),
            created_at=self.topology.engine.now,
        )
        if not self.node.send_to_neighbor(hop, packet):
            self.counters["dropped"] += 1

    # -- receiving -----------------------------------------------------------------

    def _on_packet(self, packet: Packet, port: str) -> None:
        try:
            message = decode_message(packet.payload)
        except PacketError:
            self.counters["dropped"] += 1
            return
        if message.get("to") == self.node.name:
            self.counters["received"] += 1
            self._dispatch(message)
            return
        # Transit: forward toward the destination.
        hop = self.topology.next_hops(self.node.name).get(message.get("to", ""))
        if hop is None or packet.net.ttl <= 1:
            self.counters["dropped"] += 1
            return
        packet.net.ttl -= 1
        packet.net.refresh_checksum()
        self.counters["forwarded"] += 1
        self.node.send_to_neighbor(hop, packet)

    def _dispatch(self, message: dict) -> None:
        handler = self._handlers.get(message.get("type", ""))
        if handler is None:
            self.counters["dropped"] += 1
            return
        handler(message, message.get("from", "?"))

    def on(self, message_type: str, handler: MessageHandler) -> None:
        """Register the handler for one message type."""
        if message_type in self._handlers:
            raise SignalingError(
                f"{self.node.name} already handles {message_type!r}"
            )
        self._handlers[message_type] = handler

    def off(self, message_type: str) -> None:
        """Remove a message-type handler."""
        self._handlers.pop(message_type, None)


def attach_agents(topology: Topology) -> dict[str, SignalingAgent]:
    """Create a signaling agent on every node of *topology*."""
    return {
        name: SignalingAgent(node, topology)
        for name, node in topology.nodes.items()
    }
