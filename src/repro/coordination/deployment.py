"""Remote deployment and managed software evolution (stratum 4).

The paper's conclusions promise "common support such as dynamic remote
instantiation, and standard meta-models" and "managed software evolution".
This module provides both over the signaling layer:

- :class:`DeploymentAgent` — per-node service that instantiates registered
  component types on request, binds them into the node's architecture,
  hot-upgrades running instances to newer registered versions, and answers
  introspection queries (the "standard meta-models" made remote);
- :class:`DeploymentManager` — operator-side façade: deploy / upgrade /
  query across many nodes with correlated replies;
- :class:`StagedRollout` — canary-gated fleet evolution: upgrade one
  capsule through a two-phase reconfiguration round, health-check it,
  then proceed across the fleet or roll the canary back.

Component *code* distribution is modelled by the chained
:class:`~repro.opencom.registry.ComponentRegistry`: a node-local registry
falls back to the network-wide one, so "shipping" a new version means
registering it network-wide and asking nodes to upgrade — exactly the
evolution story of section 2.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from typing import Any

from repro.coordination.reconfig import ReconfigCoordinator, ReconfigRound
from repro.coordination.signaling import SignalingAgent
from repro.netsim.node import Node
from repro.opencom.errors import OpenComError
from repro.opencom.metamodel.interface_meta import describe_component
from repro.opencom.registry import ComponentRegistry

_REQUEST_IDS = itertools.count(1)


class DeploymentError(OpenComError):
    """Remote deployment/upgrade failure."""


class DeploymentAborted(DeploymentError):
    """A deployment request was abandoned rather than answered: the
    reliable channel exhausted its retransmissions, or the caller's
    round deadline expired with no reply.  Carries the synthesized
    abort reply as :attr:`reply`."""

    def __init__(self, reply: dict) -> None:
        super().__init__(reply.get("error", "deployment request aborted"))
        self.reply = reply


class DeploymentAgent:
    """Per-node deployment service."""

    def __init__(
        self,
        signaling: SignalingAgent,
        registry: ComponentRegistry,
    ) -> None:
        self.signaling = signaling
        self.node: Node = signaling.node
        self.registry = registry
        self.log: list[str] = []
        signaling.on("deploy.instantiate", self._on_instantiate)
        signaling.on("deploy.upgrade", self._on_upgrade)
        signaling.on("deploy.query", self._on_query)
        signaling.on("deploy.destroy", self._on_destroy)

    # -- handlers -----------------------------------------------------------------

    def _reply(self, message: dict, **fields: Any) -> None:
        self.signaling.send_reliable(
            message["from"], "deploy.reply", request=message["request"], **fields
        )

    def _on_instantiate(self, message: dict, sender: str) -> None:
        type_name = message["component_type"]
        name = message["name"]
        version = message.get("version")
        try:
            entry = self.registry.lookup(type_name, version)
            instance = entry.factory()
            self.node.capsule.adopt(instance, name)
            if message.get("start", True):
                instance.startup()
            self.log.append(f"instantiate {name} ({type_name} {entry.version})")
            self._reply(
                message, ok=True, name=name, version=entry.version,
                node=self.node.name,
            )
        except Exception as exc:  # noqa: BLE001 - reported to the requester
            self.log.append(f"instantiate {name} failed: {exc!r}")
            self._reply(message, ok=False, error=repr(exc), node=self.node.name)

    def _on_upgrade(self, message: dict, sender: str) -> None:
        name = message["name"]
        type_name = message["component_type"]
        version = message.get("version")
        try:
            entry = self.registry.lookup(type_name, version)
            old = self.node.capsule.component(name)
            replacement = self.node.capsule.architecture.replace_component(
                old,
                entry.factory,
                transfer_state=_declared_state_transfer,
            )
            self.node.capsule.rename(replacement, name)
            self.log.append(f"upgrade {name} -> {type_name} {entry.version}")
            self._reply(
                message, ok=True, name=name, version=entry.version,
                node=self.node.name,
            )
        except Exception as exc:  # noqa: BLE001 - reported to the requester
            self.log.append(f"upgrade {name} failed: {exc!r}")
            self._reply(message, ok=False, error=repr(exc), node=self.node.name)

    def _on_query(self, message: dict, sender: str) -> None:
        name = message.get("name")
        if name:
            try:
                component = self.node.capsule.component(name)
                self._reply(
                    message, ok=True, node=self.node.name,
                    description=describe_component(component),
                )
            except OpenComError as exc:
                self._reply(message, ok=False, error=str(exc), node=self.node.name)
            return
        inventory = [
            {"name": component_name, "type": type(component).__name__,
             "state": component.state}
            for component_name, component in sorted(
                self.node.capsule.components().items()
            )
        ]
        self._reply(message, ok=True, node=self.node.name, inventory=inventory)

    def _on_destroy(self, message: dict, sender: str) -> None:
        name = message["name"]
        try:
            component = self.node.capsule.component(name)
            for binding in self.node.capsule.bindings_of(component):
                self.node.capsule.unbind(binding)
            self.node.capsule.destroy(component)
            self.log.append(f"destroy {name}")
            self._reply(message, ok=True, node=self.node.name)
        except Exception as exc:  # noqa: BLE001 - reported to the requester
            self._reply(message, ok=False, error=repr(exc), node=self.node.name)


def _declared_state_transfer(old: Any, new: Any) -> None:
    for attr in getattr(old, "STATE_ATTRS", ()):
        if hasattr(old, attr):
            setattr(new, attr, getattr(old, attr))


class DeploymentManager:
    """Operator-side deployment façade.

    Replies arrive asynchronously (they cross the simulated network); they
    are collected in :attr:`replies` keyed by request id.  Drive the
    engine, then inspect.  Both directions ride ``send_reliable``, so a
    lossy network costs retransmits, not lost requests; a request whose
    retransmissions are exhausted — or whose *deadline* expires with no
    reply — resolves to a synthesized **typed abort** reply
    (``aborted: True``), which :meth:`result_for` raises as
    :class:`DeploymentAborted`.  First result wins: a reply that limps
    in after the abort cannot un-abort the request.
    """

    def __init__(self, signaling: SignalingAgent) -> None:
        self.signaling = signaling
        self.replies: dict[int, dict] = {}
        signaling.on("deploy.reply", self._on_reply)

    def _on_reply(self, message: dict, sender: str) -> None:
        if message["request"] in self.replies:
            return
        self.replies[message["request"]] = message

    def _request(
        self,
        node: str,
        message_type: str,
        *,
        deadline: float | None = None,
        **fields: Any,
    ) -> int:
        request = next(_REQUEST_IDS)

        def _abort(reason: str) -> None:
            if request in self.replies:
                return
            self.replies[request] = {
                "ok": False,
                "aborted": True,
                "error": reason,
                "node": node,
                "request": request,
            }

        self.signaling.send_reliable(
            node,
            message_type,
            request=request,
            on_result=lambda delivered: None if delivered else _abort(
                f"{message_type} to {node!r} undeliverable (retries exhausted)"
            ),
            **fields,
        )
        if deadline is not None:
            if deadline <= 0:
                raise DeploymentError(
                    f"deadline must be positive, got {deadline}"
                )
            self.signaling.topology.engine.schedule(
                deadline,
                lambda: _abort(
                    f"{message_type} to {node!r}: no reply within {deadline}s"
                ),
            )
        return request

    # -- operations -----------------------------------------------------------------

    def instantiate(
        self,
        node: str,
        component_type: str,
        name: str,
        *,
        version: str | None = None,
        start: bool = True,
        deadline: float | None = None,
    ) -> int:
        """Ask *node* to instantiate a registered type; returns request id."""
        return self._request(
            node, "deploy.instantiate", deadline=deadline,
            component_type=component_type, name=name, version=version,
            start=start,
        )

    def upgrade(
        self,
        node: str,
        name: str,
        component_type: str,
        *,
        version: str | None = None,
        deadline: float | None = None,
    ) -> int:
        """Ask *node* to hot-upgrade a running instance to a (newer)
        registered version, preserving bindings and declared state."""
        return self._request(
            node, "deploy.upgrade", deadline=deadline,
            name=name, component_type=component_type, version=version,
        )

    def query(
        self, node: str, name: str | None = None, *, deadline: float | None = None
    ) -> int:
        """Ask *node* for its inventory, or one component's description."""
        return self._request(node, "deploy.query", deadline=deadline, name=name)

    def destroy(
        self, node: str, name: str, *, deadline: float | None = None
    ) -> int:
        """Ask *node* to unbind and destroy a component."""
        return self._request(node, "deploy.destroy", deadline=deadline, name=name)

    def reply_for(self, request: int) -> dict:
        """The reply for a request (raises until it has arrived)."""
        try:
            return self.replies[request]
        except KeyError:
            raise DeploymentError(
                f"no reply for request {request} yet (run the engine?)"
            ) from None

    def result_for(self, request: int) -> dict:
        """Like :meth:`reply_for`, but a synthesized abort — retries
        exhausted or deadline expired — raises :class:`DeploymentAborted`
        instead of masquerading as an ordinary failure reply."""
        reply = self.reply_for(request)
        if reply.get("aborted"):
            raise DeploymentAborted(reply)
        return reply

    def rollout(
        self,
        nodes: list[str],
        name: str,
        component_type: str,
        *,
        version: str | None = None,
        deadline: float | None = None,
    ) -> dict[str, int]:
        """Fleet-wide upgrade: one upgrade request per node."""
        return {
            node: self.upgrade(
                node, name, component_type, version=version, deadline=deadline
            )
            for node in nodes
        }


class StagedRollout:
    """Canary-gated rollout of a new datapath version across a capsule
    fleet, riding the two-phase reconfiguration protocol.

    One capsule (the *canary*, first in the fleet by default) is taken
    through a ``capsule-upgrade`` round first: the participant's action
    set quiesces ingress, drains the running datapath through the PR 6/7
    quiesce machinery, swaps in the new pipeline version, and re-steers
    parked frames (see
    :func:`~repro.coordination.reconfig.register_capsule_upgrade`).  If
    the round aborts — the capsule refused to quiesce, the new version
    failed to build, the deadline expired mid-partition — the rollout
    stops with the fleet untouched.  If it commits, *health_check* probes
    the canary; a failing probe triggers a revert round that re-installs
    the previous version, again leaving the fleet as it was.  Only a
    healthy canary lets the remaining capsules upgrade, one round each.
    """

    def __init__(
        self,
        coordinator: ReconfigCoordinator,
        *,
        capsules: list[str] | Callable[[], list[str]],
        version_of: Callable[[str], str],
        kind: str = "capsule-upgrade",
        deadline: float | None = 1.0,
        health_check: Callable[[str], bool] | None = None,
    ) -> None:
        if not callable(capsules) and not capsules:
            raise DeploymentError("a rollout needs at least one capsule")
        self.coordinator = coordinator
        self.engine = coordinator.signaling.topology.engine
        #: Static member list, or a callable returning the *current*
        #: members — so a fleet that loses a node between rollouts does
        #: not keep targeting the corpse.
        self._capsules = capsules if callable(capsules) else list(capsules)
        self.version_of = version_of
        self.kind = kind
        self.deadline = deadline
        #: Default canary probe; ``run(health_check=...)`` overrides it.
        self.health_check = health_check
        self.history: list[dict] = []

    @property
    def capsules(self) -> list[str]:
        """The rollout's current targets (resolved per access when
        membership is dynamic)."""
        members = self._capsules() if callable(self._capsules) else self._capsules
        if not members:
            raise DeploymentError("a rollout needs at least one capsule")
        return list(members)

    def _round(self, capsule: str, version: str) -> ReconfigRound:
        round_ = self.coordinator.start(
            self.kind, [capsule], {"version": version}, deadline=self.deadline
        )
        self.engine.run()
        return round_

    def run(
        self,
        version: str,
        *,
        health_check: Callable[[str], bool] | None = None,
        canary: str | None = None,
    ) -> dict:
        """Roll *version* out.  Returns a record whose ``status`` is
        ``completed`` (whole fleet upgraded), ``rolled-back`` (canary
        upgraded but failed *health_check*; previous version restored)
        or ``aborted`` (an upgrade round refused or timed out).

        *health_check* overrides the instance default for this run;
        with neither set, the canary gates on version consistency alone
        (the round committed and ``version_of`` reports the new
        version — already enforced above the probe)."""
        if health_check is None:
            health_check = self.health_check or (lambda capsule: True)
        capsules = self.capsules  # one snapshot per run
        canary = canary if canary is not None else capsules[0]
        if canary not in capsules:
            raise DeploymentError(f"canary {canary!r} is not in the fleet")
        previous = {capsule: self.version_of(capsule) for capsule in capsules}
        record: dict[str, Any] = {
            "version": version,
            "canary": canary,
            "previous": previous,
            "rounds": [],
            "status": "running",
        }
        self.history.append(record)

        canary_round = self._round(canary, version)
        record["rounds"].append((canary, canary_round.status))
        if canary_round.status != "committed" or self.version_of(canary) != version:
            record["status"] = "aborted"
            return record
        if not health_check(canary):
            revert = self._round(canary, previous[canary])
            record["rounds"].append((canary, revert.status))
            record["status"] = "rolled-back"
            return record
        for capsule in capsules:
            if capsule == canary:
                continue
            round_ = self._round(capsule, version)
            record["rounds"].append((capsule, round_.status))
            if round_.status != "committed" or self.version_of(capsule) != version:
                record["status"] = "aborted"
                return record
        record["status"] = "completed"
        return record


def deploy_agents(
    agents: dict[str, SignalingAgent],
    registry: ComponentRegistry,
) -> dict[str, DeploymentAgent]:
    """Attach a deployment agent (with a node-local registry chained onto
    *registry*) to every signaling agent."""
    return {
        name: DeploymentAgent(agent, ComponentRegistry(parent=registry))
        for name, agent in agents.items()
    }
