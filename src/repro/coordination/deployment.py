"""Remote deployment and managed software evolution (stratum 4).

The paper's conclusions promise "common support such as dynamic remote
instantiation, and standard meta-models" and "managed software evolution".
This module provides both over the signaling layer:

- :class:`DeploymentAgent` — per-node service that instantiates registered
  component types on request, binds them into the node's architecture,
  hot-upgrades running instances to newer registered versions, and answers
  introspection queries (the "standard meta-models" made remote);
- :class:`DeploymentManager` — operator-side façade: deploy / upgrade /
  query across many nodes with correlated replies.

Component *code* distribution is modelled by the chained
:class:`~repro.opencom.registry.ComponentRegistry`: a node-local registry
falls back to the network-wide one, so "shipping" a new version means
registering it network-wide and asking nodes to upgrade — exactly the
evolution story of section 2.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.coordination.signaling import SignalingAgent
from repro.netsim.node import Node
from repro.opencom.errors import OpenComError
from repro.opencom.metamodel.interface_meta import describe_component
from repro.opencom.registry import ComponentRegistry

_REQUEST_IDS = itertools.count(1)


class DeploymentError(OpenComError):
    """Remote deployment/upgrade failure."""


class DeploymentAgent:
    """Per-node deployment service."""

    def __init__(
        self,
        signaling: SignalingAgent,
        registry: ComponentRegistry,
    ) -> None:
        self.signaling = signaling
        self.node: Node = signaling.node
        self.registry = registry
        self.log: list[str] = []
        signaling.on("deploy.instantiate", self._on_instantiate)
        signaling.on("deploy.upgrade", self._on_upgrade)
        signaling.on("deploy.query", self._on_query)
        signaling.on("deploy.destroy", self._on_destroy)

    # -- handlers -----------------------------------------------------------------

    def _reply(self, message: dict, **fields: Any) -> None:
        self.signaling.send(
            message["from"], "deploy.reply", request=message["request"], **fields
        )

    def _on_instantiate(self, message: dict, sender: str) -> None:
        type_name = message["component_type"]
        name = message["name"]
        version = message.get("version")
        try:
            entry = self.registry.lookup(type_name, version)
            instance = entry.factory()
            self.node.capsule.adopt(instance, name)
            if message.get("start", True):
                instance.startup()
            self.log.append(f"instantiate {name} ({type_name} {entry.version})")
            self._reply(
                message, ok=True, name=name, version=entry.version,
                node=self.node.name,
            )
        except Exception as exc:  # noqa: BLE001 - reported to the requester
            self.log.append(f"instantiate {name} failed: {exc!r}")
            self._reply(message, ok=False, error=repr(exc), node=self.node.name)

    def _on_upgrade(self, message: dict, sender: str) -> None:
        name = message["name"]
        type_name = message["component_type"]
        version = message.get("version")
        try:
            entry = self.registry.lookup(type_name, version)
            old = self.node.capsule.component(name)
            replacement = self.node.capsule.architecture.replace_component(
                old,
                entry.factory,
                transfer_state=_declared_state_transfer,
            )
            self.node.capsule.rename(replacement, name)
            self.log.append(f"upgrade {name} -> {type_name} {entry.version}")
            self._reply(
                message, ok=True, name=name, version=entry.version,
                node=self.node.name,
            )
        except Exception as exc:  # noqa: BLE001 - reported to the requester
            self.log.append(f"upgrade {name} failed: {exc!r}")
            self._reply(message, ok=False, error=repr(exc), node=self.node.name)

    def _on_query(self, message: dict, sender: str) -> None:
        name = message.get("name")
        if name:
            try:
                component = self.node.capsule.component(name)
                self._reply(
                    message, ok=True, node=self.node.name,
                    description=describe_component(component),
                )
            except OpenComError as exc:
                self._reply(message, ok=False, error=str(exc), node=self.node.name)
            return
        inventory = [
            {"name": component_name, "type": type(component).__name__,
             "state": component.state}
            for component_name, component in sorted(
                self.node.capsule.components().items()
            )
        ]
        self._reply(message, ok=True, node=self.node.name, inventory=inventory)

    def _on_destroy(self, message: dict, sender: str) -> None:
        name = message["name"]
        try:
            component = self.node.capsule.component(name)
            for binding in self.node.capsule.bindings_of(component):
                self.node.capsule.unbind(binding)
            self.node.capsule.destroy(component)
            self.log.append(f"destroy {name}")
            self._reply(message, ok=True, node=self.node.name)
        except Exception as exc:  # noqa: BLE001 - reported to the requester
            self._reply(message, ok=False, error=repr(exc), node=self.node.name)


def _declared_state_transfer(old: Any, new: Any) -> None:
    for attr in getattr(old, "STATE_ATTRS", ()):
        if hasattr(old, attr):
            setattr(new, attr, getattr(old, attr))


class DeploymentManager:
    """Operator-side deployment façade.

    Replies arrive asynchronously (they cross the simulated network); they
    are collected in :attr:`replies` keyed by request id.  Drive the
    engine, then inspect.
    """

    def __init__(self, signaling: SignalingAgent) -> None:
        self.signaling = signaling
        self.replies: dict[int, dict] = {}
        signaling.on("deploy.reply", self._on_reply)

    def _on_reply(self, message: dict, sender: str) -> None:
        self.replies[message["request"]] = message

    def _request(self, node: str, message_type: str, **fields: Any) -> int:
        request = next(_REQUEST_IDS)
        self.signaling.send(node, message_type, request=request, **fields)
        return request

    # -- operations -----------------------------------------------------------------

    def instantiate(
        self,
        node: str,
        component_type: str,
        name: str,
        *,
        version: str | None = None,
        start: bool = True,
    ) -> int:
        """Ask *node* to instantiate a registered type; returns request id."""
        return self._request(
            node, "deploy.instantiate",
            component_type=component_type, name=name, version=version,
            start=start,
        )

    def upgrade(
        self,
        node: str,
        name: str,
        component_type: str,
        *,
        version: str | None = None,
    ) -> int:
        """Ask *node* to hot-upgrade a running instance to a (newer)
        registered version, preserving bindings and declared state."""
        return self._request(
            node, "deploy.upgrade",
            name=name, component_type=component_type, version=version,
        )

    def query(self, node: str, name: str | None = None) -> int:
        """Ask *node* for its inventory, or one component's description."""
        return self._request(node, "deploy.query", name=name)

    def destroy(self, node: str, name: str) -> int:
        """Ask *node* to unbind and destroy a component."""
        return self._request(node, "deploy.destroy", name=name)

    def reply_for(self, request: int) -> dict:
        """The reply for a request (raises until it has arrived)."""
        try:
            return self.replies[request]
        except KeyError:
            raise DeploymentError(
                f"no reply for request {request} yet (run the engine?)"
            ) from None

    def rollout(
        self,
        nodes: list[str],
        name: str,
        component_type: str,
        *,
        version: str | None = None,
    ) -> dict[str, int]:
        """Fleet-wide upgrade: one upgrade request per node."""
        return {
            node: self.upgrade(node, name, component_type, version=version)
            for node in nodes
        }


def deploy_agents(
    agents: dict[str, SignalingAgent],
    registry: ComponentRegistry,
) -> dict[str, DeploymentAgent]:
    """Attach a deployment agent (with a node-local registry chained onto
    *registry*) to every signaling agent."""
    return {
        name: DeploymentAgent(agent, ComponentRegistry(parent=registry))
        for name, agent in agents.items()
    }
