"""Genesis-style spawning networks (stratum 4).

Section 7: Columbia's Genesis "supports dynamic private virtual networks,
each potentially with its own semantics (addressing, routing, QoS, etc.)".
The reproduction keeps the Genesis lifecycle — *profile* (choose members
and resources), *spawn* (instantiate per-node virtual routers), *manage*
(send traffic, observe), *release* — with the paper-relevant invariants
enforced and testable:

- **own addressing**: each virtual network gets a private prefix; members
  receive virtual addresses out of it;
- **own routing**: shortest paths are computed over the member-induced
  subgraph only — a virtual network spanning a subset of nodes cannot
  route through non-members even when the physical network could;
- **resource containment**: every member node allocates the network's
  bandwidth share from its physical ``bandwidth`` pool into a
  ``virtnet:<name>`` task; traffic is policed against a token bucket of
  that share;
- **isolation**: per-node virtual routers are instantiated in *child
  capsules*, and cross-network delivery is impossible by construction
  (dispatch is keyed by network name and verified).

Virtual-network packets really traverse the physical simulator:
encapsulated with an outer IPv4 header (protocol ``PROTO_VIRTUAL``) and
forwarded hop-by-hop along the virtual route.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass
from typing import Any

from repro.netsim.node import Node
from repro.netsim.packet import IPv4Header, Packet, format_ipv4, ipv4
from repro.netsim.topology import Topology
from repro.opencom.capsule import Capsule
from repro.opencom.errors import OpenComError, ResourceError
from repro.router.components.forwarding import LpmTable
from repro.router.components.shaper import _TokenBucket

#: Protocol number for encapsulated virtual-network traffic.
PROTO_VIRTUAL = 252

_VN_IDS = itertools.count(1)


class GenesisError(OpenComError):
    """Spawning or virtual-network operation failure."""


@dataclass
class VirtualDelivery:
    """Record of one packet delivered inside a virtual network."""

    network: str
    src: str
    dst: str
    payload: bytes
    hops: list[str]
    delivered_at: float


class VirtualRouter:
    """Per-node presence of one virtual network.

    Lives in a child capsule of the hosting node (spawned networks cannot
    crash the host), owns the virtual routing table and the bandwidth
    policer for this node's share.
    """

    def __init__(
        self,
        network: "VirtualNetwork",
        node: Node,
        virtual_address: int,
        bandwidth_share: float,
    ) -> None:
        self.network = network
        self.node = node
        self.virtual_address = virtual_address
        self.capsule: Capsule = node.capsule.spawn_child(f"virtnet:{network.name}")
        self.table = LpmTable()
        self.bucket = _TokenBucket(
            network.topology.engine.clock, bandwidth_share / 8, bandwidth_share / 4
        )
        self.counters = {"forwarded": 0, "delivered": 0, "policed": 0, "foreign": 0}

    def route_for(self, virtual_dst: int) -> str | None:
        """Next member node toward a virtual destination."""
        return self.table.lookup(virtual_dst, version=4)

    def teardown(self) -> None:
        """Kill the router's capsule (releases everything inside)."""
        self.capsule.kill(reason="virtual network released")


class VirtualNetwork:
    """One spawned private virtual network."""

    def __init__(
        self,
        framework: "GenesisFramework",
        name: str,
        members: list[str],
        *,
        prefix: str,
        bandwidth_share: float,
    ) -> None:
        self.framework = framework
        self.topology = framework.topology
        self.vn_id = next(_VN_IDS)
        self.name = name
        self.members = list(members)
        self.prefix = prefix
        self.bandwidth_share = bandwidth_share
        self.routers: dict[str, VirtualRouter] = {}
        self.deliveries: list[VirtualDelivery] = []
        self.released = False
        #: Child networks spawned from this one (nested spawning).
        self.children: list[VirtualNetwork] = []

    # -- addressing ------------------------------------------------------------------

    def virtual_address_of(self, member: str) -> int:
        """The member's address inside this network."""
        return self.routers[member].virtual_address

    # -- data plane --------------------------------------------------------------------

    def send(self, src_member: str, dst_member: str, payload: bytes) -> None:
        """Inject a payload at one member toward another.

        The packet is policed against the source's bandwidth share,
        encapsulated, and forwarded member-by-member over physical links.
        """
        self._require_live()
        if src_member not in self.routers or dst_member not in self.routers:
            raise GenesisError(
                f"{src_member!r} or {dst_member!r} is not a member of "
                f"{self.name!r}"
            )
        router = self.routers[src_member]
        virtual_dst = self.virtual_address_of(dst_member)
        inner = {
            "network": self.name,
            "vdst": virtual_dst,
            "vsrc": router.virtual_address,
            "payload": payload,
            "hops": [src_member],
        }
        if not router.bucket.try_consume(len(payload) + 64):
            router.counters["policed"] += 1
            return
        self.framework._forward_virtual(self, src_member, inner)

    # -- management -------------------------------------------------------------------------

    def spawn_child(
        self,
        name: str,
        members: list[str],
        *,
        bandwidth_share: float,
        prefix: str | None = None,
    ) -> "VirtualNetwork":
        """Spawn a nested network out of this one's members and resources."""
        self._require_live()
        outside = [m for m in members if m not in self.members]
        if outside:
            raise GenesisError(
                f"child members {outside} are not members of parent {self.name!r}"
            )
        if bandwidth_share > self.bandwidth_share:
            raise GenesisError(
                "child bandwidth share exceeds the parent's allocation"
            )
        child = self.framework.spawn(
            name,
            members,
            bandwidth_share=bandwidth_share,
            prefix=prefix,
            parent=self,
        )
        self.children.append(child)
        return child

    def release(self) -> None:
        """Tear the network down: kill routers, free resources, release
        children first."""
        if self.released:
            return
        for child in list(self.children):
            child.release()
        self.framework._release(self)
        self.released = True

    def _require_live(self) -> None:
        if self.released:
            raise GenesisError(f"virtual network {self.name!r} was released")

    def describe(self) -> dict[str, Any]:
        """Summary: members, addresses, per-router counters."""
        return {
            "name": self.name,
            "prefix": self.prefix,
            "members": {
                member: {
                    "virtual_address": format_ipv4(router.virtual_address),
                    "counters": dict(router.counters),
                }
                for member, router in sorted(self.routers.items())
            },
            "bandwidth_share": self.bandwidth_share,
            "released": self.released,
            "children": [c.name for c in self.children],
        }


class GenesisFramework:
    """The spawning framework: profiles, spawns, routes and releases
    virtual networks over one physical topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.networks: dict[str, VirtualNetwork] = {}
        self._next_prefix_octet = itertools.count(1)
        for node in topology.nodes.values():
            resources = node.capsule.resources
            if "bandwidth" not in resources.pools():
                resources.create_pool("bandwidth", "bandwidth", 100e6)
            node.register_protocol(PROTO_VIRTUAL, self._make_dispatcher(node))

    # -- spawning ----------------------------------------------------------------------

    def spawn(
        self,
        name: str,
        members: list[str],
        *,
        bandwidth_share: float,
        prefix: str | None = None,
        parent: VirtualNetwork | None = None,
    ) -> VirtualNetwork:
        """Spawn a virtual network over *members*.

        Members must induce a connected subgraph; every member node must
        have *bandwidth_share* available in its physical pool.  Allocation
        is all-or-nothing: a failure at any node rolls back the others.
        """
        if name in self.networks:
            raise GenesisError(f"virtual network {name!r} already exists")
        if len(members) < 2:
            raise GenesisError("a virtual network needs at least 2 members")
        unknown = [m for m in members if m not in self.topology.nodes]
        if unknown:
            raise GenesisError(f"unknown member nodes: {unknown}")
        if not self._subgraph_connected(members):
            raise GenesisError(
                f"members {members} do not induce a connected subgraph"
            )
        network_prefix = prefix or f"10.{100 + next(self._next_prefix_octet)}.0.0/16"
        network = VirtualNetwork(
            self, name, members,
            prefix=network_prefix, bandwidth_share=bandwidth_share,
        )

        # All-or-nothing resource allocation across members.
        allocated: list[str] = []
        task_name = f"virtnet:{name}"
        try:
            for member in members:
                resources = self.topology.node(member).capsule.resources
                if task_name not in resources.tasks():
                    resources.create_task(task_name)
                resources.allocate(task_name, "bandwidth", bandwidth_share)
                allocated.append(member)
        except ResourceError as exc:
            for member in allocated:
                resources = self.topology.node(member).capsule.resources
                resources.destroy_task(task_name)
            raise GenesisError(
                f"insufficient bandwidth for {name!r} at "
                f"{members[len(allocated)]}: {exc}"
            ) from exc

        base = ipv4(network_prefix.split("/")[0])
        for index, member in enumerate(sorted(members)):
            node = self.topology.node(member)
            router = VirtualRouter(network, node, base + index + 1, bandwidth_share)
            network.routers[member] = router
        self._install_virtual_routes(network)
        self.networks[name] = network
        return network

    def _install_virtual_routes(self, network: VirtualNetwork) -> None:
        """Shortest paths over the member-induced subgraph only."""
        member_set = set(network.members)
        for member, router in network.routers.items():
            hops = self._subgraph_next_hops(member, member_set)
            for dst, hop in hops.items():
                dst_address = network.virtual_address_of(dst)
                router.table.insert(f"{format_ipv4(dst_address)}/32", hop)

    def _subgraph_next_hops(self, source: str, members: set[str]) -> dict[str, str]:
        # BFS restricted to member nodes (uniform hop metric inside a VN).
        parents: dict[str, str] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            nxt: list[str] = []
            for current in frontier:
                node = self.topology.node(current)
                for port in node.ports():
                    peer = node.neighbor(port).name
                    if peer in members and peer not in seen:
                        seen.add(peer)
                        parents[peer] = current
                        nxt.append(peer)
            frontier = nxt
        hops: dict[str, str] = {}
        for dst in members:
            if dst == source or dst not in seen:
                continue
            walk = dst
            while parents[walk] != source:
                walk = parents[walk]
            hops[dst] = walk
        return hops

    def _subgraph_connected(self, members: list[str]) -> bool:
        member_set = set(members)
        reached = self._subgraph_next_hops(members[0], member_set)
        return len(reached) == len(member_set) - 1

    # -- virtual data plane ----------------------------------------------------------------

    def _forward_virtual(
        self, network: VirtualNetwork, at_member: str, inner: dict
    ) -> None:
        router = network.routers[at_member]
        virtual_dst = inner["vdst"]
        if virtual_dst == router.virtual_address:
            router.counters["delivered"] += 1
            network.deliveries.append(
                VirtualDelivery(
                    network=network.name,
                    src=format_ipv4(inner["vsrc"]),
                    dst=format_ipv4(inner["vdst"]),
                    payload=inner["payload"],
                    hops=list(inner["hops"]),
                    delivered_at=self.topology.engine.now,
                )
            )
            return
        next_member = router.route_for(virtual_dst)
        if next_member is None:
            router.counters["foreign"] += 1
            return
        router.counters["forwarded"] += 1
        node = self.topology.node(at_member)
        peer = self.topology.node(next_member)
        outer = Packet(
            IPv4Header(
                src=node.address, dst=peer.address, ttl=16, protocol=PROTO_VIRTUAL
            ),
            None,
            repr(inner).encode(),
            created_at=self.topology.engine.now,
        )
        node.send_to_neighbor(next_member, outer)

    def _make_dispatcher(self, node: Node):
        def dispatch(packet: Packet, port: str) -> None:
            payload = packet.payload
            if isinstance(payload, memoryview):  # zero-copy wire packets
                payload = payload.tobytes()
            try:
                inner = ast.literal_eval(payload.decode())
            except (ValueError, SyntaxError, UnicodeDecodeError):
                return
            if not isinstance(inner, dict):
                return
            network = self.networks.get(inner.get("network", ""))
            if network is None or network.released:
                return
            if node.name not in network.routers:
                # Isolation: a non-member physical node never dispatches
                # into the virtual network.
                return
            inner["hops"] = list(inner.get("hops", [])) + [node.name]
            self._forward_virtual(network, node.name, inner)

        return dispatch

    # -- release ------------------------------------------------------------------------------

    def _release(self, network: VirtualNetwork) -> None:
        task_name = f"virtnet:{network.name}"
        for member, router in network.routers.items():
            router.teardown()
            resources = self.topology.node(member).capsule.resources
            if task_name in resources.tasks():
                resources.destroy_task(task_name)
        self.networks.pop(network.name, None)

    def total_spawned(self) -> int:
        """Live virtual networks."""
        return len(self.networks)
