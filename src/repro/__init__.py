"""NETKIT reproduction: reflective middleware-based programmable networking.

Reproduces Coulson et al., "Reflective Middleware-based Programmable
Networking" (Reflective and Adaptive Middleware workshop, Middleware 2003):
the OpenCOM reflective component model, component frameworks, and the four
strata of programmable networking software -- hardware abstraction, in-band
functions (the Router CF), application services (active networking), and
coordination (RSVP-style signaling and Genesis-style spawning networks) --
plus the IXP1200 placement meta-model and the Click/monolithic baselines.

Sub-packages
------------
``repro.opencom``
    The component model: interfaces, receptacles, capsules, the bind
    primitive, and the interface/architecture/interception/resources
    meta-models.
``repro.cf``
    Component-framework infrastructure: rules, composites with
    controllers, bind constraints, ACLs.
``repro.osbase``
    Stratum 1: clock, timers, memory, buffer-management CF, cooperative
    threads with pluggable schedulers, NIC model.
``repro.netsim``
    The discrete-event network simulator.
``repro.router``
    Stratum 2: the Router CF and its component library.
``repro.appservices``
    Stratum 3: execution environments, capsule programs, media filters.
``repro.coordination``
    Stratum 4: signaling, RSVP-like reservation, Genesis spawning,
    distributed reconfiguration.
``repro.ixp``
    The IXP1200 model and placement meta-model.
``repro.baselines``
    Click-style and monolithic comparison routers.
``repro.analysis``
    Footprint accounting and benchmark statistics.
"""

__version__ = "1.0.0"

from repro.opencom import (  # noqa: F401 - curated re-exports
    Capsule,
    Component,
    Interface,
    Provided,
    Required,
)

__all__ = [
    "Capsule",
    "Component",
    "Interface",
    "Provided",
    "Required",
    "__version__",
]
