"""Deterministic fault injection over engine-time schedules.

The robustness story (docs/robustness.md) needs failures that are *real*
— packets actually lost, links actually cut, workers actually dead — yet
perfectly reproducible, so a fault scenario is a regression test, not a
flake generator.  Everything here is driven by two levers the simulator
already owns:

- **virtual time**: every fault fires at an exact engine time, scheduled
  on the same event heap as the traffic it perturbs;
- **seeded randomness**: probabilistic faults (signaling loss, delay,
  duplication) draw from RNGs derived from ``(seed, node name)``, never
  from global state, so a schedule is a pure function of its parameters.

Four fault classes, one per failure domain:

==================  ============================================================
fault               mechanism
==================  ============================================================
link partition      :meth:`~repro.netsim.link.Link.partition` — both directions
                    black-hole silently (in-flight packets included); heal
                    restores them
link loss           :meth:`~repro.netsim.link.Link.set_loss_rate` with a
                    re-derived seed, so the loss pattern from the fault onset
                    is reproducible regardless of prior traffic
signaling faults    a :attr:`~repro.coordination.signaling.SignalingAgent.
                    fault_hook` (duck-typed — netsim never imports upward)
                    that drops / delays / duplicates individual locally
                    originated messages under seeded Bernoulli draws
pool exhaustion     acquire-and-hold of a pool's free buffers (returned on
                    heal, so the acquired == released audit stays exact)
worker kill         ``datapath.inject_worker_crash`` — the poisoned worker
                    raises :class:`~repro.osbase.sharding.WorkerKilled` at its
                    next quantum
==================  ============================================================

Every injected fault is appended to :attr:`FaultInjector.log` as
``(virtual_time, description)``, so a scenario's exact fault sequence can
be asserted on (and diffed between reruns).
"""

from __future__ import annotations

import random
from typing import Any

from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.opencom.errors import OpenComError


class FaultError(OpenComError):
    """Invalid fault-injection request."""


class SignalingFaults:
    """A seeded drop/delay/duplicate process over one signaling agent.

    Installed as the agent's ``fault_hook``; for each locally originated
    transmission (first sends and retransmits alike) it draws from a
    per-agent RNG — ``Random(f"sigfault:{seed}:{node}")`` — and returns
    the transmission plan the agent's ``_transmit`` executes:

    - drop (probability *drop*): ``[]`` — the message vanishes;
    - delay (probability *delay*): ``delay_s`` — late, not lost;
    - duplicate (probability *duplicate*): ``[0.0, delay_s]`` — the
      original plus one delayed copy (receiver dedupe absorbs it);
    - otherwise ``None`` — untouched.

    *types*, when given, limits the process to those message types
    (acks, for example, can be faulted or spared independently).
    """

    def __init__(
        self,
        *,
        seed: int | str,
        node: str,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        delay_s: float = 0.05,
        types: tuple[str, ...] | None = None,
    ) -> None:
        for name, value in (("drop", drop), ("delay", delay), ("duplicate", duplicate)):
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be a probability, got {value}")
        if delay_s <= 0:
            raise FaultError(f"delay_s must be positive, got {delay_s}")
        self.drop = drop
        self.delay = delay
        self.duplicate = duplicate
        self.delay_s = delay_s
        self.types = tuple(types) if types is not None else None
        self.rng = random.Random(f"sigfault:{seed}:{node}")
        self.counters = {"dropped": 0, "delayed": 0, "duplicated": 0, "passed": 0}

    def __call__(self, message: dict) -> Any:
        if self.types is not None and message.get("type") not in self.types:
            return None
        draw = self.rng.random()
        if draw < self.drop:
            self.counters["dropped"] += 1
            return []
        if draw < self.drop + self.delay:
            self.counters["delayed"] += 1
            return self.delay_s
        if draw < self.drop + self.delay + self.duplicate:
            self.counters["duplicated"] += 1
            return [0.0, self.delay_s]
        self.counters["passed"] += 1
        return None


class FaultInjector:
    """Schedules faults onto an engine's event heap, deterministically.

    One injector per scenario: construct it over the scenario's engine
    and a seed, declare the schedule (each ``at`` is an *absolute*
    virtual time), then drive the engine as usual — faults land exactly
    when declared, and :attr:`log` records what actually fired.
    """

    def __init__(self, engine: Engine, *, seed: int | str = 0) -> None:
        self.engine = engine
        self.seed = seed
        #: ``(virtual_time, description)`` per injected fault, in firing order.
        self.log: list[tuple[float, str]] = []
        #: Pool → buffers held by an active exhaustion fault.
        self._held: dict[Any, list[Any]] = {}
        #: Installed signaling fault processes, by node name.
        self.signaling: dict[str, SignalingFaults] = {}

    def _record(self, description: str) -> None:
        self.log.append((self.engine.now, description))

    # -- link faults -----------------------------------------------------------------

    def partition(self, link: Link, *, at: float, heal_at: float | None = None) -> None:
        """Cut *link* at virtual time *at*; optionally heal it later."""
        if heal_at is not None and heal_at <= at:
            raise FaultError(f"heal_at {heal_at} must be after at {at}")
        ends = f"{link.endpoint_a[0].name}<->{link.endpoint_b[0].name}"

        def cut() -> None:
            link.partition()
            self._record(f"partition {ends}")

        self.engine.schedule_at(at, cut)
        if heal_at is not None:
            self.heal(link, at=heal_at)

    def heal(self, link: Link, *, at: float) -> None:
        """Restore a partitioned link at virtual time *at*."""
        ends = f"{link.endpoint_a[0].name}<->{link.endpoint_b[0].name}"

        def restore() -> None:
            link.heal()
            self._record(f"heal {ends}")

        self.engine.schedule_at(at, restore)

    def loss(
        self,
        link: Link,
        rate: float,
        *,
        at: float,
        until: float | None = None,
    ) -> None:
        """Impose a seeded loss regime on *link* from *at* (back to
        lossless at *until*, if given).  The loss RNGs are re-derived
        from the injector seed at onset, so the drop pattern is
        reproducible no matter what traffic preceded the fault."""
        if not 0.0 <= rate <= 1.0:
            raise FaultError(f"rate must be a probability, got {rate}")
        if until is not None and until <= at:
            raise FaultError(f"until {until} must be after at {at}")
        ends = f"{link.endpoint_a[0].name}<->{link.endpoint_b[0].name}"

        def impose() -> None:
            link.set_loss_rate(rate, seed=f"{self.seed}:loss:{ends}")
            self._record(f"loss {rate} on {ends}")

        self.engine.schedule_at(at, impose)
        if until is not None:

            def lift() -> None:
                link.set_loss_rate(0.0)
                self._record(f"loss lifted on {ends}")

            self.engine.schedule_at(until, lift)

    # -- signaling faults ---------------------------------------------------------------

    def fault_signaling(
        self,
        agent: Any,
        *,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        delay_s: float = 0.05,
        types: tuple[str, ...] | None = None,
    ) -> SignalingFaults:
        """Install a seeded drop/delay/duplicate process on a signaling
        agent (its ``fault_hook``), derived from this injector's seed and
        the agent's node name.  Returns the process (for its counters)."""
        if getattr(agent, "fault_hook", None) is not None:
            raise FaultError(
                f"{agent.node.name} already has a fault hook installed"
            )
        process = SignalingFaults(
            seed=self.seed,
            node=agent.node.name,
            drop=drop,
            delay=delay,
            duplicate=duplicate,
            delay_s=delay_s,
            types=types,
        )
        agent.fault_hook = process
        self.signaling[agent.node.name] = process
        self._record(
            f"signaling faults on {agent.node.name} "
            f"(drop={drop}, delay={delay}, duplicate={duplicate})"
        )
        return process

    def clear_signaling(self, agent: Any) -> None:
        """Remove this injector's fault process from *agent*."""
        if self.signaling.pop(agent.node.name, None) is not None:
            agent.fault_hook = None
            self._record(f"signaling faults cleared on {agent.node.name}")

    # -- pool faults ---------------------------------------------------------------------

    def exhaust_pool(self, pool: Any, *, at: float, heal_at: float | None = None,
                     leave: int = 0) -> None:
        """Acquire-and-hold all but *leave* of *pool*'s free buffers at
        virtual time *at* — datapath acquires then hit the pool's own
        exhaustion policy (drop-newest, backpressure, raise).  Healing
        releases every held buffer, so acquired == released still holds
        at audit time."""
        if leave < 0:
            raise FaultError(f"leave must be >= 0, got {leave}")
        if heal_at is not None and heal_at <= at:
            raise FaultError(f"heal_at {heal_at} must be after at {at}")

        def exhaust() -> None:
            held = self._held.setdefault(pool, [])
            grabbed = 0
            while pool.in_flight < pool.count - leave:
                buffer = pool.acquire(0)
                if buffer is None:
                    break
                held.append(buffer)
                grabbed += 1
            self._record(
                f"pool {getattr(pool, 'name', pool)!s} exhausted "
                f"({grabbed} buffers held, {leave} left free)"
            )

        self.engine.schedule_at(at, exhaust)
        if heal_at is not None:
            self.heal_pool(pool, at=heal_at)

    def heal_pool(self, pool: Any, *, at: float) -> None:
        """Release every buffer an exhaustion fault holds on *pool*."""

        def restore() -> None:
            held = self._held.pop(pool, [])
            for buffer in held:
                pool.release(buffer)
            self._record(
                f"pool {getattr(pool, 'name', pool)!s} healed "
                f"({len(held)} buffers returned)"
            )

        self.engine.schedule_at(at, restore)

    def release_holds(self) -> int:
        """Immediately release every buffer held by exhaustion faults
        (scenario teardown safety net); returns buffers returned."""
        returned = 0
        for pool, held in list(self._held.items()):
            for buffer in held:
                pool.release(buffer)
            returned += len(held)
            del self._held[pool]
        if returned:
            self._record(f"release_holds returned {returned} buffers")
        return returned

    # -- worker faults -------------------------------------------------------------------

    def kill_worker(self, datapath: Any, index: int, *, at: float) -> None:
        """Poison shard worker *index* of *datapath* at virtual time *at*
        (duck-typed ``inject_worker_crash`` — the crash itself lands at
        the worker's next quantum, contained per-thread)."""

        def kill() -> None:
            datapath.inject_worker_crash(index)
            self._record(f"kill worker {index} of {datapath.name}")

        self.engine.schedule_at(at, kill)
