"""Simulated network nodes.

A node owns a capsule (its software lives there), one NIC per attached
link port, an IPv4 address for control-plane addressing, and dispatch
hooks: a *packet handler* for the forwarding path and per-protocol
*control handlers* for packets addressed to the node itself (stratum-4
signaling, active-network capsules).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.netsim.packet import IPv4Header, Packet, format_ipv4, ipv4
from repro.opencom.capsule import Capsule
from repro.opencom.errors import OpenComError
from repro.osbase.buffers import release_dropped
from repro.osbase.nic import Nic

PacketHandler = Callable[[Packet, str], None]
ControlHandler = Callable[[Packet, str], None]


class NodeError(OpenComError):
    """Invalid node operation (unknown port, duplicate attachment, ...)."""


class Node:
    """One network node hosting a capsule of components."""

    def __init__(
        self,
        name: str,
        engine: Engine,
        *,
        address: str | int | None = None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.capsule = Capsule(f"node:{name}")
        self.address = ipv4(address) if address is not None else 0
        self._links: dict[str, Link] = {}
        self._nics: dict[str, Nic] = {}
        self._packet_handler: PacketHandler | None = None
        self._control_handlers: dict[int, ControlHandler] = {}
        self.counters = {
            "delivered_local": 0,
            "forwarded": 0,
            "no_handler_drops": 0,
            "delivery_drops": 0,
            "sent": 0,
            "send_failures": 0,
        }

    # -- wiring --------------------------------------------------------------------

    def attach_link(self, port: str, link: Link, *, nic: Nic | None = None) -> Nic:
        """Attach a link at *port*, creating (or adopting) the port's NIC."""
        if port in self._links:
            raise NodeError(f"node {self.name} already has a link on port {port!r}")
        self._links[port] = link
        if nic is None:
            nic = self.capsule.instantiate(Nic, f"nic:{port}")
        self._nics[port] = nic
        nic.rx_handler = lambda pkt, port=port: self._ingress(pkt, port)
        return nic

    def ports(self) -> list[str]:
        """Attached port names (sorted)."""
        return sorted(self._links)

    def link(self, port: str) -> Link:
        """The link attached at *port*."""
        try:
            return self._links[port]
        except KeyError:
            raise NodeError(f"node {self.name} has no port {port!r}") from None

    def nic(self, port: str) -> Nic:
        """The NIC at *port*."""
        try:
            return self._nics[port]
        except KeyError:
            raise NodeError(f"node {self.name} has no port {port!r}") from None

    def neighbor(self, port: str) -> "Node":
        """The node at the far end of *port*."""
        return self.link(port).peer_of(self)

    # -- dispatch --------------------------------------------------------------------

    def set_packet_handler(self, handler: PacketHandler | None) -> None:
        """Install the forwarding-path handler ``(packet, in_port)``."""
        self._packet_handler = handler

    def register_protocol(self, protocol: int, handler: ControlHandler) -> None:
        """Register a control handler for locally addressed packets with
        the given IP protocol number."""
        if protocol in self._control_handlers:
            raise NodeError(
                f"node {self.name} already handles protocol {protocol}"
            )
        self._control_handlers[protocol] = handler

    def unregister_protocol(self, protocol: int) -> None:
        """Remove a control-protocol handler."""
        self._control_handlers.pop(protocol, None)

    def deliver(self, port: str, packet: Packet) -> None:
        """Link side: a packet arrives at *port* (goes through the NIC).

        A refused frame is dropped *here*: the NIC counts and releases
        its own drops, but a backpressure refusal leaves the frame
        unconsumed, and a node has no retry path — so the node is the
        last holder and hands the buffer back.
        """
        nic = self.nic(port)
        refused_before = nic.counters["rx_backpressure"]
        if not nic.receive_frame(packet):
            self.counters["delivery_drops"] += 1
            if nic.counters["rx_backpressure"] > refused_before:
                release_dropped(packet)

    def _ingress(self, packet: Packet, port: str) -> None:
        packet.metadata["ingress_port"] = port
        packet.metadata["ingress_node"] = self.name
        if (
            isinstance(packet.net, IPv4Header)
            and packet.net.protocol in self._control_handlers
        ):
            # Registered control protocols see every packet of their
            # protocol number — the handler decides local vs transit
            # (signaling agents forward hop-by-hop themselves).
            self.counters["delivered_local"] += 1
            self._control_handlers[packet.net.protocol](packet, port)
            return
        if self._packet_handler is not None:
            self.counters["forwarded"] += 1
            self._packet_handler(packet, port)
            return
        self.counters["no_handler_drops"] += 1
        release_dropped(packet)

    # -- egress ----------------------------------------------------------------------

    def send(self, port: str, packet: Packet) -> bool:
        """Transmit a packet out of *port*; returns False on drop."""
        link = self.link(port)
        nic = self.nic(port)
        if not nic.transmit(packet):
            self.counters["send_failures"] += 1
            return False
        # Cut-through: drain the TX ring into the link, which applies
        # serialisation delay and backlog limits itself.
        ok = True
        while True:
            queued = nic.poll_tx()
            if queued is None:
                break
            if not link.send_from(self, queued):
                self.counters["send_failures"] += 1
                ok = False
            else:
                self.counters["sent"] += 1
        return ok

    def send_to_neighbor(self, neighbor_name: str, packet: Packet) -> bool:
        """Transmit toward the named adjacent node."""
        for port, link in self._links.items():
            if link.peer_of(self).name == neighbor_name:
                return self.send(port, packet)
        raise NodeError(
            f"node {self.name} has no link to {neighbor_name!r}"
        )

    def port_to(self, neighbor_name: str) -> str:
        """The local port facing the named adjacent node."""
        for port, link in self._links.items():
            if link.peer_of(self).name == neighbor_name:
                return port
        raise NodeError(f"node {self.name} has no link to {neighbor_name!r}")

    def describe(self) -> dict[str, Any]:
        """Introspective summary of the node."""
        return {
            "name": self.name,
            "address": format_ipv4(self.address) if self.address else None,
            "ports": {
                port: {
                    "peer": self.neighbor(port).name,
                    "nic": self.nic(port).stats(),
                }
                for port in self.ports()
            },
            "counters": dict(self.counters),
            "protocols": sorted(self._control_handlers),
            "components": sorted(self.capsule.components()),
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Node {self.name} ports={self.ports()}>"
